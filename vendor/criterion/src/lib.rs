//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, throughput annotation — with a simple wall-clock
//! measurement loop (fixed sample count, mean + min reported) instead of
//! criterion's statistical machinery. Good enough to keep `cargo bench`
//! runnable and the bench code compiling offline.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are grouped between measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (one setup per measurement).
    LargeInput,
    /// Setup re-runs before every single iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            elapsed: Vec::new(),
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.elapsed.push(start.elapsed());
            drop(out);
        }
    }

    /// Measures `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.elapsed.push(start.elapsed());
            drop(out);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.elapsed.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.elapsed.iter().sum();
        let mean = total / self.elapsed.len() as u32;
        let min = self.elapsed.iter().min().copied().unwrap_or_default();
        let rate = match throughput {
            Some(Throughput::Bytes(b)) if mean.as_nanos() > 0 => {
                let mibs = b as f64 / (1 << 20) as f64 / mean.as_secs_f64();
                format!("  {mibs:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                let eps = n as f64 / mean.as_secs_f64();
                format!("  {eps:10.0} elem/s")
            }
            _ => String::new(),
        };
        println!("{label:<40} mean {:>12?}  min {:>12?}{rate}", mean, min);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        b.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name), self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
