//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses: `rngs::SmallRng` (a
//! SplitMix64 generator — deterministic, fast, statistically fine for
//! simulation noise), `SeedableRng::seed_from_u64`, and an [`Rng`]
//! extension trait with `gen` / `gen_range` over the integer and float
//! types the codebase samples.
//!
//! Determinism note: a given seed produces the same stream on every
//! platform, which is all the simulator requires. The streams do NOT
//! match the real `rand` crate's.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end as u128 - self.start as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against FP rounding landing exactly on `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let inc = rng.gen_range(1u8..=255);
            assert!(inc >= 1);
        }
    }
}
