//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly, recovering
//! from poisoning instead of returning `Result`s.

use std::fmt;
use std::sync::PoisonError;

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
    }
}
