//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::TestRng;

/// Inclusive-exclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_excl: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.min < self.max_excl);
        self.min + rng.below((self.max_excl - self.min) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeSet`s; duplicates collapse, so the final
/// size can fall below the requested minimum (same as real proptest's
/// behaviour for narrow domains).
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates sets from up to `size` draws of `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing `BTreeMap`s; duplicate keys collapse.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.pick(rng);
        (0..len)
            .map(|_| (self.key.sample(rng), self.value.sample(rng)))
            .collect()
    }
}

/// Generates maps from up to `size` draws of `(key, value)`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            let v = vec(any::<u8>(), 2..7).sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = btree_set(0u64..1_000_000, 3..5).sample(&mut rng);
            assert!(s.len() <= 4);
            let m = btree_map(0u32..100, any::<bool>(), 1..4).sample(&mut rng);
            assert!(m.len() <= 3);
        }
    }
}
