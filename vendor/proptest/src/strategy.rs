//! The [`Strategy`] trait and the built-in value strategies: numeric
//! ranges, tuples, and char-class string patterns.

use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// Produces random values of an associated type from a [`TestRng`].
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// returns a finished value directly.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy for `any::<T>()`; see [`crate::arbitrary::any`].
pub struct Any<T> {
    pub(crate) _marker: std::marker::PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end as u128 - start as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `&str` strategies are char-class patterns of the form
/// `"[<class>]{m}"` or `"[<class>]{m,n}"`, e.g. `"[a-z0-9._]{1,8}"`.
/// The class supports ranges (`a-z`) and literal characters (including
/// a literal newline written as `\n` in Rust source).
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parses `[class]{m}` / `[class]{m,n}` into (alphabet, min, max).
fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bad(pattern: &str) -> ! {
        panic!("unsupported string strategy pattern: {pattern:?}")
    }
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad(pattern));
    let (class, reps) = rest.split_once(']').unwrap_or_else(|| bad(pattern));

    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "bad char range in {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");

    let reps = reps
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| bad(pattern));
    let (min, max) = match reps.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().unwrap_or_else(|_| bad(pattern)),
            n.trim().parse().unwrap_or_else(|_| bad(pattern)),
        ),
        None => {
            let n = reps.trim().parse().unwrap_or_else(|_| bad(pattern));
            (n, n)
        }
    };
    assert!(min <= max, "bad repetition in {pattern:?}");
    (alphabet, min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_class_parsing() {
        let (alpha, min, max) = parse_char_class("[a-cz.]{2,5}");
        assert_eq!(alpha, vec!['a', 'b', 'c', 'z', '.']);
        assert_eq!((min, max), (2, 5));

        let (alpha, min, max) = parse_char_class("[ -~\n]{0,10}");
        assert!(alpha.contains(&' ') && alpha.contains(&'~') && alpha.contains(&'\n'));
        assert_eq!((min, max), (0, 10));

        let (_, min, max) = parse_char_class("[x]{3}");
        assert_eq!((min, max), (3, 3));
    }

    #[test]
    fn signed_range_sampling() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..200 {
            let v = (-50i32..50).sample(&mut rng);
            assert!((-50..50).contains(&v));
        }
    }
}
