//! The [`Arbitrary`] trait behind `any::<T>()`.

use crate::strategy::Any;
use crate::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Bounded, finite values: arbitrary bit patterns would mostly be
        // astronomic magnitudes or NaNs, which no test here wants.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps Debug output readable.
        char::from(b' ' + rng.below(95) as u8)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn arrays_and_scalars() {
        let mut rng = TestRng::from_seed(3);
        let a: [u32; 8] = any::<[u32; 8]>().sample(&mut rng);
        assert_eq!(a.len(), 8);
        let _: bool = any::<bool>().sample(&mut rng);
        let f: f64 = any::<f64>().sample(&mut rng);
        assert!(f.is_finite());
        let c: char = any::<char>().sample(&mut rng);
        assert!(c.is_ascii() && !c.is_control());
    }
}
