//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors a small property-testing engine with the same call-site
//! surface the tests use: the `proptest!` macro, `prop_assert*!` /
//! `prop_assume!`, `any::<T>()`, numeric-range and char-class string
//! strategies, and `prop::collection::{vec, btree_set, btree_map}`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the failure message;
//!   inputs are not minimised.
//! - **Deterministic seeding.** The RNG seed derives from the test's
//!   module path and name, so every run explores the same cases. That
//!   determinism is a feature for this repo's reproducibility goals.
//! - **64 cases by default** (real proptest runs 256); override with
//!   `ProptestConfig::with_cases`.

use std::fmt;

pub mod arbitrary;
pub mod collection;
pub mod strategy;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Input rejected by `prop_assume!`; another case is drawn.
    Reject(Reason),
    /// Assertion failure; the whole test fails.
    Fail(Reason),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(reason: impl Into<Reason>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<Reason>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

/// Human-readable cause attached to a [`TestCaseError`].
#[derive(Debug, Clone)]
pub struct Reason(String);

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for Reason {
    fn from(s: String) -> Reason {
        Reason(s)
    }
}

impl From<&str> for Reason {
    fn from(s: &str) -> Reason {
        Reason(s.to_owned())
    }
}

/// Deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an explicit value.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed | 1, // never all-zero
        }
    }

    /// Seeds deterministically from a test's fully qualified name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a 64-bit over the name.
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::from_seed(hash)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Any, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig, Reason,
        TestCaseError,
    };

    /// Namespace mirror of real proptest's `prop::` re-exports.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`: {}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property tests. Mirrors real proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, s in "[a-z]{1,8}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(8).saturating_add(256),
                    "proptest {}: too many rejected cases",
                    stringify!($name)
                );
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = ($strat).sample(&mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(reason)) => {
                        panic!("proptest {} failed: {}", stringify!($name), reason)
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u32..50, y in 1u8..=3, f in -2.0f64..2.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn strings_match_class(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "bad len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn collections_and_tuples(
            v in prop::collection::vec((0u8..3, any::<bool>()), 1..6),
            set in prop::collection::btree_set(0u64..100, 1..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(set.len() < 10);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
