//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! a minimal API-compatible subset: [`Bytes`] is a cheaply cloneable,
//! immutable, reference-counted byte buffer. Only the surface the
//! workspace actually uses is implemented.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// concerns (the shim copies; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data: data.into() }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(data: Box<[u8]>) -> Bytes {
        Bytes { data: data.into() }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Bytes {
        Bytes::from(data.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Bytes {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
