//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented on top of
//! `std::thread::scope` (stabilised since the real crate's scoped
//! threads were written). Panics in spawned threads propagate out of
//! [`thread::scope`] as panics rather than an `Err`, which is
//! equivalent for callers that `.expect()` the result.

/// Scoped thread spawning, mirroring `crossbeam::thread`.
pub mod thread {
    /// Result type returned by [`scope`].
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the closure given to [`scope`]; spawned
    /// closures receive a copy so they can spawn further threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, like
        /// crossbeam's `|_|` convention.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this shim: panics from spawned threads
    /// resurface as panics when the scope joins.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = vec![0u64; 8];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u64 * 2;
                });
            }
        })
        .expect("scope failed");
        assert_eq!(data[7], 14);
    }
}
