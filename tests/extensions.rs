//! Integration tests for the §7 future-work extensions: runtime
//! profiles and incremental checkpointing, exercised through the full
//! prebaking pipeline.

use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_runtime::profile::RuntimeProfile;

fn medians(spec: FunctionSpec) -> (f64, f64, f64) {
    let mut out = Vec::new();
    for mode in StartMode::all_three() {
        let runner = TrialRunner::new(spec.clone(), mode).unwrap();
        let t = runner.startup_trial(1).unwrap();
        out.push(t.first_response_ms);
    }
    (out[0], out[1], out[2])
}

#[test]
fn prebaking_helps_every_runtime_profile() {
    for profile in RuntimeProfile::all() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small).with_runtime(profile);
        let (vanilla, nowarmup, warmup) = medians(spec);
        assert!(
            nowarmup < vanilla,
            "{}: nowarmup {nowarmup} !< vanilla {vanilla}",
            profile.label()
        );
        assert!(
            warmup < nowarmup,
            "{}: warmup {warmup} !< nowarmup {nowarmup}",
            profile.label()
        );
    }
}

#[test]
fn warm_bonus_ranks_by_jit_share() {
    // warm-vs-nowarm ratio: how much the snapshot's captured compilation
    // state buys. Must rank java > node > python.
    let ratio = |profile: RuntimeProfile| {
        let spec = FunctionSpec::synthetic(SyntheticSize::Medium).with_runtime(profile);
        let (_, nowarmup, warmup) = medians(spec);
        nowarmup / warmup
    };
    let java = ratio(RuntimeProfile::JavaLike);
    let node = ratio(RuntimeProfile::NodeLike);
    let python = ratio(RuntimeProfile::PythonLike);
    assert!(
        java > node && node > python,
        "warm bonus must rank java ({java:.2}x) > node ({node:.2}x) > python ({python:.2}x)"
    );
    assert!(python > 1.0, "even without a JIT, imports are captured");
}

#[test]
fn vanilla_bootstrap_ranks_by_profile() {
    // The fixed RTS share: java ≈70ms > node ≈50ms > python ≈35ms shows
    // up directly in vanilla cold starts of a tiny function.
    let startup = |profile: RuntimeProfile| {
        let spec = FunctionSpec::noop().with_runtime(profile);
        let runner = TrialRunner::new(spec, StartMode::Vanilla).unwrap();
        runner.startup_trial(1).unwrap().startup_ms
    };
    let java = startup(RuntimeProfile::JavaLike);
    let node = startup(RuntimeProfile::NodeLike);
    let python = startup(RuntimeProfile::PythonLike);
    assert!(java > node && node > python, "{java} > {node} > {python}");
}

#[test]
fn incremental_rebake_preserves_prebake_speed() {
    // A function rebaked via pre-dump + incremental dump restores just as
    // fast and as faithfully as a full dump.
    use prebake_core::env::{provision_machine, Deployment, RUNTIME_BIN};
    use prebake_criu::dump::{dump, pre_dump, DumpOptions};
    use prebake_criu::restore::{restore, RestoreOptions};
    use prebake_runtime::Replica;
    use prebake_sim::kernel::Kernel;
    use prebake_sim::proc::CapSet;

    let mut kernel = Kernel::new(9);
    let watchdog = provision_machine(&mut kernel).unwrap();
    let spec = FunctionSpec::synthetic(SyntheticSize::Small);
    let dep = Deployment::install(&mut kernel, spec, 8080).unwrap();

    // Boot + warm a replica manually.
    let pid = kernel.sys_clone(watchdog).unwrap();
    kernel.process_mut(pid).unwrap().caps = CapSet::empty();
    let config = dep.jlvm_config();
    kernel
        .sys_execve(pid, RUNTIME_BIN, &[RUNTIME_BIN.to_owned()])
        .unwrap();
    let handler = dep.spec.make_handler(&dep.app_dir);
    let mut replica = Replica::boot(&mut kernel, pid, config, handler).unwrap();
    replica
        .handle(&mut kernel, &dep.spec.sample_request())
        .unwrap();

    // Pre-dump while serving; serve once more; incremental dump.
    pre_dump(&mut kernel, watchdog, &DumpOptions::new(pid, "/pre")).unwrap();
    replica
        .handle(&mut kernel, &dep.spec.sample_request())
        .unwrap();
    let expected_state = replica.jvm().state().clone();
    let mut opts = DumpOptions::new(pid, "/final");
    opts.parent = Some("/pre".to_owned());
    let inc = dump(&mut kernel, watchdog, &opts).unwrap();
    assert!(
        inc.parent_pages > inc.pages_stored,
        "most pages defer to the pre-dump ({} parent vs {} stored)",
        inc.parent_pages,
        inc.pages_stored
    );

    // Restore and re-attach: the replica is warm and state-identical.
    let stats = restore(&mut kernel, watchdog, &RestoreOptions::new("/final")).unwrap();
    let handler = dep.spec.make_handler(&dep.app_dir);
    let mut restored = Replica::attach(&mut kernel, stats.pid, dep.jlvm_config(), handler).unwrap();
    assert_eq!(restored.jvm().state(), &expected_state);
    let t0 = kernel.now();
    restored
        .handle(&mut kernel, &dep.spec.sample_request())
        .unwrap();
    let ms = (kernel.now() - t0).as_millis_f64();
    assert!(ms < 5.0, "warm incremental restore serves in {ms}ms");
}
