//! Reproducibility guarantees: identical seeds must yield bit-identical
//! experiments, and different seeds must differ only in measurement
//! noise — the properties that make the statistical analysis meaningful.

use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::FunctionSpec;
use prebake_stats::summary::{median, std_dev};

#[test]
fn identical_seeds_identical_trials() {
    for mode in [StartMode::Vanilla, StartMode::PrebakeNoWarmup] {
        let runner_a = TrialRunner::new(FunctionSpec::noop(), mode).unwrap();
        let runner_b = TrialRunner::new(FunctionSpec::noop(), mode).unwrap();
        for seed in [0u64, 7, 123456] {
            let a = runner_a.startup_trial(seed).unwrap();
            let b = runner_b.startup_trial(seed).unwrap();
            assert_eq!(a.startup_ms, b.startup_ms, "mode {mode:?} seed {seed}");
            assert_eq!(a.first_response_ms, b.first_response_ms);
            assert_eq!(a.phases.appinit.as_nanos(), b.phases.appinit.as_nanos());
        }
    }
}

#[test]
fn different_seeds_jitter_within_noise_band() {
    let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
    let samples: Vec<f64> = (0..20)
        .map(|s| runner.startup_trial(s).unwrap().startup_ms)
        .collect();
    let m = median(&samples);
    let sd = std_dev(&samples);
    // Measurement noise is small (±1.5% per op) but strictly nonzero.
    assert!(sd > 0.0, "noise must produce variation");
    assert!(
        sd / m < 0.05,
        "relative spread {:.4} too large for measurement noise",
        sd / m
    );
    // No outliers beyond a few percent of the median.
    for &s in &samples {
        assert!((s - m).abs() / m < 0.10, "outlier {s} vs median {m}");
    }
}

#[test]
fn bake_is_deterministic() {
    let a = TrialRunner::new(FunctionSpec::markdown(), StartMode::PrebakeWarmup(1)).unwrap();
    let b = TrialRunner::new(FunctionSpec::markdown(), StartMode::PrebakeWarmup(1)).unwrap();
    assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
}

#[test]
fn function_specs_are_reproducible() {
    let a = FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small);
    let b = FunctionSpec::synthetic(prebake_functions::SyntheticSize::Small);
    assert_eq!(a.archive().encode(), b.archive().encode());
    assert_eq!(a.class_names(), b.class_names());
}
