//! Cross-crate state-fidelity tests: a restored replica must be
//! *observably identical* to the process that was dumped — memory,
//! descriptors, runtime state and behaviour.

use prebake_core::env::{provision_machine, Deployment};
use prebake_core::prebaker::{bake, SnapshotPolicy};
use prebake_core::starter::{PrebakeStarter, Starter, VanillaStarter};
use prebake_criu::{dump, restore, DumpOptions, RestoreOptions};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_runtime::jvm::Jlvm;
use prebake_runtime::Replica;
use prebake_sim::kernel::Kernel;

#[test]
fn dumped_and_restored_memory_observably_equal() {
    let mut kernel = Kernel::new(1);
    let watchdog = provision_machine(&mut kernel).unwrap();
    let dep = Deployment::install(&mut kernel, FunctionSpec::markdown(), 8080).unwrap();
    let mut started = VanillaStarter.start(&mut kernel, watchdog, &dep).unwrap();
    let req = dep.spec.sample_request();
    started.replica.handle(&mut kernel, &req).unwrap();
    let pid = started.replica.pid();

    let mut opts = DumpOptions::new(pid, "/ckpt");
    opts.leave_running = true;
    dump(&mut kernel, watchdog, &opts).unwrap();

    // Free the port so the twin can bind it, then restore. Memory
    // fidelity is checked by comparing two restores of the same image.
    kernel.sys_exit(pid, 0).unwrap();
    kernel.reap(pid).unwrap();

    let twin_a = restore(&mut kernel, watchdog, &RestoreOptions::new("/ckpt")).unwrap();
    // Second twin cannot bind the same port; compare memory only.
    let mem_a = kernel.process(twin_a.pid).unwrap().mem.clone();
    kernel.sys_exit(twin_a.pid, 0).unwrap();
    kernel.reap(twin_a.pid).unwrap();
    let twin_b = restore(&mut kernel, watchdog, &RestoreOptions::new("/ckpt")).unwrap();
    let mem_b = &kernel.process(twin_b.pid).unwrap().mem;

    assert!(
        mem_a.observably_equal(mem_b),
        "two restores from one image must be identical"
    );
    assert_eq!(twin_a.pages_installed, twin_b.pages_installed);
}

#[test]
fn restored_replica_serves_identical_responses() {
    let mut kernel = Kernel::new(2);
    let watchdog = provision_machine(&mut kernel).unwrap();
    let dep = Deployment::install(&mut kernel, FunctionSpec::markdown(), 8080).unwrap();
    let req = dep.spec.sample_request();

    // Reference response from a vanilla replica.
    let mut vanilla = VanillaStarter.start(&mut kernel, watchdog, &dep).unwrap();
    let reference = vanilla.replica.handle(&mut kernel, &req).unwrap();
    kernel.sys_exit(vanilla.replica.pid(), 0).unwrap();
    kernel.reap(vanilla.replica.pid()).unwrap();

    // Prebake (warmed) and restore.
    bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterWarmup(1),
        &dep.images_dir(),
    )
    .unwrap();
    let mut restored = PrebakeStarter::new()
        .start(&mut kernel, watchdog, &dep)
        .unwrap();
    let response = restored.replica.handle(&mut kernel, &req).unwrap();

    assert_eq!(reference.status, response.status);
    assert_eq!(reference.body, response.body, "byte-identical rendering");
}

#[test]
fn runtime_state_record_survives_restore() {
    let mut kernel = Kernel::new(3);
    let watchdog = provision_machine(&mut kernel).unwrap();
    let spec = FunctionSpec::synthetic(SyntheticSize::Small);
    let dep = Deployment::install(&mut kernel, spec, 8080).unwrap();

    // Boot, warm (loads all classes + JIT), record state, dump.
    let mut started = VanillaStarter.start(&mut kernel, watchdog, &dep).unwrap();
    started
        .replica
        .handle(&mut kernel, &dep.spec.sample_request())
        .unwrap();
    let expected_state = started.replica.jvm().state().clone();
    let pid = started.replica.pid();
    dump(&mut kernel, watchdog, &DumpOptions::new(pid, "/ckpt")).unwrap();

    let stats = restore(&mut kernel, watchdog, &RestoreOptions::new("/ckpt")).unwrap();
    let attached = Jlvm::attach(&mut kernel, stats.pid, dep.jlvm_config()).unwrap();
    assert_eq!(attached.state(), &expected_state);
    assert_eq!(
        attached.state().classes.len(),
        dep.spec.class_names().len(),
        "every class the warm-up loaded is present after restore"
    );
    assert!(attached.state().classes.iter().all(|c| c.jitted));
}

#[test]
fn warm_restored_replica_skips_all_loading() {
    let mut kernel = Kernel::new(4);
    let watchdog = provision_machine(&mut kernel).unwrap();
    let spec = FunctionSpec::synthetic(SyntheticSize::Small);
    let dep = Deployment::install(&mut kernel, spec, 8080).unwrap();
    bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterWarmup(1),
        &dep.images_dir(),
    )
    .unwrap();

    let stats = restore(
        &mut kernel,
        watchdog,
        &RestoreOptions::new(dep.images_dir()),
    )
    .unwrap();
    let handler = dep.spec.make_handler(&dep.app_dir);
    let mut replica = Replica::attach(&mut kernel, stats.pid, dep.jlvm_config(), handler).unwrap();

    // The first request on a warm restore does no loading, no JIT, no
    // lazy link: it must complete in single-digit milliseconds.
    let t0 = kernel.now();
    let resp = replica
        .handle(&mut kernel, &dep.spec.sample_request())
        .unwrap();
    let elapsed = (kernel.now() - t0).as_millis_f64();
    assert!(resp.is_success());
    assert!(
        elapsed < 5.0,
        "first request after warm restore took {elapsed}ms"
    );
}

#[test]
fn cold_restored_replica_still_pays_lazy_work() {
    let mut kernel = Kernel::new(5);
    let watchdog = provision_machine(&mut kernel).unwrap();
    let spec = FunctionSpec::synthetic(SyntheticSize::Small);
    let dep = Deployment::install(&mut kernel, spec, 8080).unwrap();
    bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterReady,
        &dep.images_dir(),
    )
    .unwrap();

    let stats = restore(
        &mut kernel,
        watchdog,
        &RestoreOptions::new(dep.images_dir()),
    )
    .unwrap();
    let handler = dep.spec.make_handler(&dep.app_dir);
    let mut replica = Replica::attach(&mut kernel, stats.pid, dep.jlvm_config(), handler).unwrap();

    let t0 = kernel.now();
    replica
        .handle(&mut kernel, &dep.spec.sample_request())
        .unwrap();
    let elapsed = (kernel.now() - t0).as_millis_f64();
    // lazy link (35ms) + parse/verify/JIT of 2.8MB (~84ms)
    assert!(
        (90.0..150.0).contains(&elapsed),
        "first request after cold restore took {elapsed}ms"
    );
}

#[test]
fn snapshot_images_are_checksummed_end_to_end() {
    use prebake_sim::fs::join_path;
    let mut kernel = Kernel::new(6);
    let watchdog = provision_machine(&mut kernel).unwrap();
    let dep = Deployment::install(&mut kernel, FunctionSpec::noop(), 8080).unwrap();
    bake(
        &mut kernel,
        watchdog,
        &dep,
        SnapshotPolicy::AfterReady,
        &dep.images_dir(),
    )
    .unwrap();

    // Corrupt one byte of pages.img; restore must refuse.
    let path = join_path(&dep.images_dir(), "pages.img");
    let (data, _) = kernel.fs_mut().read_file(&path).unwrap();
    let mut corrupted = data.to_vec();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0x40;
    kernel.fs_mut().write_file(&path, corrupted).unwrap();

    let err = restore(
        &mut kernel,
        watchdog,
        &RestoreOptions::new(dep.images_dir()),
    )
    .unwrap_err();
    assert_eq!(err, prebake_sim::Errno::Einval);
}
