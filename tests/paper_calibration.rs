//! Cross-crate calibration tests: the reproduced system must land on the
//! paper's headline numbers (within tolerance) for every experiment
//! family. These are small-rep versions of the bench harnesses; the full
//! 200-rep runs live in `crates/bench` and are recorded in
//! `EXPERIMENTS.md`.

use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_stats::summary::median;

const REPS: usize = 8;

fn median_startup(spec: FunctionSpec, mode: StartMode) -> f64 {
    let runner = TrialRunner::new(spec, mode).expect("build runner");
    let samples: Vec<f64> = runner
        .startup_samples(REPS, 1)
        .expect("trials")
        .iter()
        .map(|t| t.startup_ms)
        .collect();
    median(&samples)
}

fn median_first_response(spec: FunctionSpec, mode: StartMode) -> f64 {
    let runner = TrialRunner::new(spec, mode).expect("build runner");
    let samples: Vec<f64> = runner
        .startup_samples(REPS, 1)
        .expect("trials")
        .iter()
        .map(|t| t.first_response_ms)
        .collect();
    median(&samples)
}

fn assert_close(measured: f64, paper: f64, tolerance: f64, what: &str) {
    let ratio = measured / paper;
    assert!(
        ((1.0 - tolerance)..=(1.0 + tolerance)).contains(&ratio),
        "{what}: measured {measured:.1}ms vs paper {paper:.1}ms (ratio {ratio:.3})"
    );
}

// ------------------------------------------------------------- Figure 3

#[test]
fn fig3_noop_vanilla_and_prebake() {
    let v = median_startup(FunctionSpec::noop(), StartMode::Vanilla);
    let p = median_startup(FunctionSpec::noop(), StartMode::PrebakeNoWarmup);
    assert_close(v, 103.0, 0.12, "NOOP vanilla");
    assert_close(p, 62.0, 0.20, "NOOP prebake");
    let improvement = (v - p) / v;
    assert!(
        (0.30..0.50).contains(&improvement),
        "paper: 40% improvement, got {improvement:.2}"
    );
}

#[test]
fn fig3_markdown_vanilla_and_prebake() {
    let v = median_startup(FunctionSpec::markdown(), StartMode::Vanilla);
    let p = median_startup(FunctionSpec::markdown(), StartMode::PrebakeNoWarmup);
    assert_close(v, 100.0, 0.12, "Markdown vanilla");
    assert_close(p, 53.0, 0.20, "Markdown prebake");
    let improvement = (v - p) / v;
    assert!(
        (0.38..0.56).contains(&improvement),
        "paper: 47% improvement, got {improvement:.2}"
    );
}

#[test]
fn fig3_image_resizer_vanilla_and_prebake() {
    let v = median_startup(FunctionSpec::image_resizer(), StartMode::Vanilla);
    let p = median_startup(FunctionSpec::image_resizer(), StartMode::PrebakeNoWarmup);
    assert_close(v, 310.0, 0.12, "Image Resizer vanilla");
    assert_close(p, 87.0, 0.20, "Image Resizer prebake");
    let improvement = (v - p) / v;
    assert!(
        (0.62..0.80).contains(&improvement),
        "paper: 71% improvement, got {improvement:.2}"
    );
}

// ---------------------------------------------------------- snapshot sizes

#[test]
fn snapshot_sizes_match_section_4_2_1() {
    for (spec, paper_mb, what) in [
        (FunctionSpec::noop(), 13.0, "NOOP"),
        (FunctionSpec::markdown(), 14.0, "Markdown"),
        (FunctionSpec::image_resizer(), 99.2, "Image Resizer"),
    ] {
        let runner = TrialRunner::new(spec, StartMode::PrebakeNoWarmup).expect("runner");
        let measured_mb = runner.snapshot_bytes() as f64 / 1e6;
        let ratio = measured_mb / paper_mb;
        assert!(
            (0.80..=1.25).contains(&ratio),
            "{what} snapshot {measured_mb:.1}MB vs paper {paper_mb}MB"
        );
    }
}

// ------------------------------------------------- Figure 4 decomposition

#[test]
fn fig4_phase_structure() {
    let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).expect("runner");
    let t = runner.startup_trial(3).expect("trial");
    // clone+exec tiny, RTS ~70ms
    assert!(t.phases.clone.as_millis_f64() < 1.0);
    assert!(t.phases.exec.as_millis_f64() < 3.0);
    let rts = t.phases.rts.as_millis_f64();
    assert!((60.0..80.0).contains(&rts), "RTS {rts}ms, paper ~70ms");

    let runner =
        TrialRunner::new(FunctionSpec::noop(), StartMode::PrebakeNoWarmup).expect("runner");
    let t = runner.startup_trial(3).expect("trial");
    assert_eq!(t.phases.rts.as_millis_f64(), 0.0, "prebake RTS = 0");
    assert_eq!(t.phases.exec.as_millis_f64(), 0.0, "prebake EXEC = 0");
    // start-up almost totally dictated by APPINIT
    assert!(t.phases.appinit.as_millis_f64() / t.startup_ms > 0.9);
}

// --------------------------------------------------- Table 1 (small size)

#[test]
fn table1_small_synthetic_three_techniques() {
    let spec = FunctionSpec::synthetic(SyntheticSize::Small);
    let v = median_first_response(spec.clone(), StartMode::Vanilla);
    let nw = median_first_response(spec.clone(), StartMode::PrebakeNoWarmup);
    let w = median_first_response(spec, StartMode::PrebakeWarmup(1));
    assert_close(v, 219.8, 0.12, "small vanilla");
    assert_close(nw, 172.5, 0.12, "small pb-nowarmup");
    assert_close(w, 54.4, 0.20, "small pb-warmup");
    // Fig. 6 ratios
    let r_nw = v / nw * 100.0;
    let r_w = v / w * 100.0;
    assert!(
        (115.0..140.0).contains(&r_nw),
        "paper 127.45%, got {r_nw:.1}%"
    );
    assert!(
        (330.0..480.0).contains(&r_w),
        "paper 403.96%, got {r_w:.1}%"
    );
}

#[test]
fn table1_medium_synthetic_three_techniques() {
    let spec = FunctionSpec::synthetic(SyntheticSize::Medium);
    let v = median_first_response(spec.clone(), StartMode::Vanilla);
    let nw = median_first_response(spec.clone(), StartMode::PrebakeNoWarmup);
    let w = median_first_response(spec, StartMode::PrebakeWarmup(1));
    assert_close(v, 456.0, 0.12, "medium vanilla");
    assert_close(nw, 360.9, 0.12, "medium pb-nowarmup");
    assert_close(w, 63.7, 0.25, "medium pb-warmup");
}

#[test]
fn table1_big_synthetic_three_techniques() {
    let spec = FunctionSpec::synthetic(SyntheticSize::Big);
    let v = median_first_response(spec.clone(), StartMode::Vanilla);
    let nw = median_first_response(spec.clone(), StartMode::PrebakeNoWarmup);
    let w = median_first_response(spec, StartMode::PrebakeWarmup(1));
    assert_close(v, 1621.0, 0.12, "big vanilla");
    assert_close(nw, 1340.4, 0.12, "big pb-nowarmup");
    assert_close(w, 84.0, 0.25, "big pb-warmup");
    // The paper's headline: 1932.49% speed-up for warmed prebaking.
    let r_w = v / w * 100.0;
    assert!(
        (1500.0..2400.0).contains(&r_w),
        "paper 1932%, got {r_w:.0}%"
    );
}

// -------------------------------------------------------------- Figure 7

#[test]
fn fig7_service_times_coincide() {
    use prebake_sim::time::SimDuration;
    use prebake_stats::ecdf::Ecdf;
    for spec in [FunctionSpec::noop(), FunctionSpec::markdown()] {
        let vanilla = TrialRunner::new(spec.clone(), StartMode::Vanilla)
            .expect("runner")
            .service_trial(1, 60, SimDuration::from_millis(50))
            .expect("service");
        let prebake = TrialRunner::new(spec, StartMode::PrebakeNoWarmup)
            .expect("runner")
            .service_trial(2, 60, SimDuration::from_millis(50))
            .expect("service");
        let ks = Ecdf::new(&vanilla).ks_distance(&Ecdf::new(&prebake));
        assert!(ks < 0.25, "service ECDFs must coincide; KS = {ks}");
    }
}
