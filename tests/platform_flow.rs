//! Cross-crate platform integration: the full OpenFaaS-style flow with
//! mixed functions and traffic over one gateway.

use prebake_functions::FunctionSpec;
use prebake_platform::loadgen;
use prebake_platform::openfaas::{FaasGateway, ProviderConfig};
use prebake_platform::platform::PlatformConfig;
use prebake_runtime::http::Request;
use prebake_sim::time::{SimDuration, SimInstant};

fn gateway() -> FaasGateway {
    FaasGateway::new(PlatformConfig::default(), ProviderConfig::default())
}

#[test]
fn mixed_functions_share_one_platform() {
    let mut gw = gateway();
    for (spec, template) in [
        (FunctionSpec::noop(), "java11"),
        (FunctionSpec::markdown(), "java11-criu-warm1"),
    ] {
        let project = gw.new_project(spec, template).unwrap();
        let image = gw.build(&project).unwrap();
        gw.push(image);
    }
    gw.deploy("noop").unwrap();
    gw.deploy("markdown-render").unwrap();

    let md_body = prebake_functions::sample_markdown().into_bytes();
    let t0 = SimInstant::EPOCH;
    gw.invoke_at(t0, "noop", Request::empty()).unwrap();
    gw.invoke_at(t0, "markdown-render", Request::with_body(md_body.clone()))
        .unwrap();
    gw.invoke_at(t0 + SimDuration::from_secs(1), "noop", Request::empty())
        .unwrap();
    gw.invoke_at(
        t0 + SimDuration::from_secs(1),
        "markdown-render",
        Request::with_body(md_body),
    )
    .unwrap();
    gw.run().unwrap();

    let completed = gw.platform().completed();
    assert_eq!(completed.len(), 4);

    // First request per function is cold; second is warm.
    let mut cold_noop = Vec::new();
    let mut cold_md = Vec::new();
    for r in completed {
        match (r.function.as_str(), r.cold) {
            ("noop", cold) => cold_noop.push(cold),
            ("markdown-render", cold) => cold_md.push(cold),
            other => panic!("unexpected record {other:?}"),
        }
    }
    assert_eq!(cold_noop, vec![true, false]);
    assert_eq!(cold_md, vec![true, false]);

    // The prebaked markdown cold start beats the vanilla noop cold start
    // despite markdown being the heavier function.
    let latency = |function: &str, cold: bool| {
        completed
            .iter()
            .find(|r| r.function == function && r.cold == cold)
            .map(|r| r.latency_ms())
            .unwrap()
    };
    assert!(
        latency("markdown-render", true) < latency("noop", true),
        "prebaked markdown {} !< vanilla noop {}",
        latency("markdown-render", true),
        latency("noop", true)
    );
}

#[test]
fn constant_rate_trace_keeps_single_replica_busy() {
    let mut gw = gateway();
    let project = gw.new_project(FunctionSpec::noop(), "java11").unwrap();
    let image = gw.build(&project).unwrap();
    gw.push(image);
    gw.deploy("noop").unwrap();

    loadgen::constant_rate(
        gw.platform_mut(),
        "noop",
        50,
        SimInstant::EPOCH,
        SimDuration::from_millis(200),
        |_| Request::empty(),
    )
    .unwrap();
    gw.run().unwrap();

    assert_eq!(gw.platform().completed().len(), 50);
    let m = gw.platform().metrics().get("noop").unwrap();
    assert_eq!(m.replicas_started.get(), 1, "paced load needs one replica");
    assert_eq!(m.cold_starts.get(), 1);
}

#[test]
fn scale_to_zero_and_second_cold_start() {
    let mut gw = FaasGateway::new(
        PlatformConfig {
            idle_timeout: SimDuration::from_secs(5),
            ..PlatformConfig::default()
        },
        ProviderConfig::default(),
    );
    let project = gw.new_project(FunctionSpec::noop(), "java11-criu").unwrap();
    let image = gw.build(&project).unwrap();
    gw.push(image);
    gw.deploy("noop").unwrap();

    gw.invoke_at(SimInstant::EPOCH, "noop", Request::empty())
        .unwrap();
    gw.invoke_at(
        SimInstant::EPOCH + SimDuration::from_secs(120),
        "noop",
        Request::empty(),
    )
    .unwrap();
    gw.run().unwrap();

    let m = gw.platform().metrics().get("noop").unwrap();
    assert_eq!(m.cold_starts.get(), 2, "idle GC forces a second cold start");
    assert_eq!(m.replicas_started.get(), 2);
    assert_eq!(m.replicas_reaped.get(), 2);
    // Both cold starts are prebaked-fast.
    for r in gw.platform().completed() {
        assert!(
            r.latency_ms() < 90.0,
            "prebaked cold start {}ms",
            r.latency_ms()
        );
    }
}

#[test]
fn registry_versioning_through_gateway() {
    let mut gw = gateway();
    let project = gw.new_project(FunctionSpec::noop(), "java11").unwrap();
    let image = gw.build(&project).unwrap();
    assert_eq!(gw.push(image), 1);
    let project = gw.new_project(FunctionSpec::noop(), "java11-criu").unwrap();
    let image = gw.build(&project).unwrap();
    assert_eq!(gw.push(image), 2, "new build bumps the version");
    gw.deploy("noop").unwrap();
    assert!(gw.registry().pull("noop").unwrap().is_prebaked());
}
