#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): everything a PR must keep green.
# Runs the release build, the full test suite, formatting and lints.
set -u

fail=0

run() {
  echo "==> $*"
  "$@" 2>&1 | tail -n 40
  local status=${PIPESTATUS[0]}
  if [ "$status" -ne 0 ]; then
    echo "FAILED ($status): $*"
    fail=1
  fi
}

cd "$(dirname "$0")/.."

run cargo build --release
run cargo test -q
# Page-store invariants (DESIGN.md §9): dedup/CoW property tests and the
# shared-frame concurrency suite, run explicitly so a filtered `cargo
# test` invocation can never silently skip them.
run cargo test -q -p prebake-criu --test proptest_pagestore
run cargo test -q -p prebake-criu --test cow_concurrency
# Tracing invariants (DESIGN.md §10): the golden Chrome-trace exporter,
# tree well-formedness properties, and the bit-exact agreement between
# span-derived phases and the PhaseTracker fold.
run cargo test -q -p prebake-sim --test trace_golden
run cargo test -q -p prebake-sim --test proptest_trace
run cargo test -q -p prebake-core --test span_phases
# Extent-restore invariants (DESIGN.md §11): vectored vs page-granular
# bit-identity across all four restore modes plus legacy-image fallback,
# and a smoke run of the extent ablation, which asserts the >=20% eager
# p50 win and the fault-around major-fault collapse.
run cargo test -q -p prebake-criu --test proptest_roundtrip
run cargo run --release -q -p prebake-bench --bin ablation_extent_restore -- --quick
# Fleet-scheduler invariants (DESIGN.md §12): load-schedule property
# tests (monotonic arrivals, seed determinism, CSV round-trip), the
# measured-profile end-to-end suite, and a smoke run of the fleet
# ablation, which asserts a policy beats the vanilla-TTL baseline on
# both cold-start fraction and p99 latency.
run cargo test -q -p prebake-platform --test proptest_loadgen
run cargo test -q -p prebake-fleet
run cargo run --release -q -p prebake-bench --bin ablation_fleet -- --quick
# Registry-tier invariants (DESIGN.md §13): pull-through conservation
# property tests (fetched + deduped == manifest total, repeat pulls
# free, eviction exact), and a smoke run of the registry ablation,
# which asserts dedup+affinity beats naive full-pull on both cold p99
# and egress. The ablation runs twice and the outputs are compared
# byte-for-byte so any seed non-determinism in the registry path fails
# the gate.
run cargo test -q -p prebake-registry
run cargo run --release -q -p prebake-bench --bin ablation_registry -- --quick
run cp results/BENCH_registry.json results/BENCH_registry.run1.json
run cargo run --release -q -p prebake-bench --bin ablation_registry -- --quick
run cmp results/BENCH_registry.run1.json results/BENCH_registry.json
run rm -f results/BENCH_registry.run1.json
# Parallel-restore invariants (DESIGN.md §14): serial-vs-sharded
# bit-identity, repack/compaction round-trip property tests, the
# repacking trial builders, the parallel/ordered/compact platform
# templates, and a smoke run of the parallel-restore ablation, which
# asserts >=2 shards beat the committed vectored-eager baseline, the
# fault-order layout improves prefetch p95, and compaction shrinks the
# hot image. The ablation runs twice and the outputs are compared
# byte-for-byte so the sharded path stays seed-deterministic.
run cargo test -q -p prebake-criu restore::
run cargo test -q -p prebake-criu dump::
run cargo test -q -p prebake-core measure::
run cargo test -q -p prebake-platform builder::
run cargo run --release -q -p prebake-bench --bin ablation_restore_parallel -- --quick
run cp results/BENCH_parallel.json results/BENCH_parallel.run1.json
run cargo run --release -q -p prebake-bench --bin ablation_restore_parallel -- --quick
run cmp results/BENCH_parallel.run1.json results/BENCH_parallel.json
run rm -f results/BENCH_parallel.run1.json
# Observability invariants (DESIGN.md §15): histogram-merge and
# window-ring property tests, the dashboard / exemplar-trace golden
# renders, and a smoke run of the obs ablation, which asserts the SLO
# burn engine localizes the injected cold-start burst to the right
# tenant and window while tail sampling keeps every breaching trace at
# a >=10x span reduction. The ablation runs twice and the outputs are
# compared byte-for-byte so the telemetry path stays seed-deterministic.
run cargo test -q -p prebake-obs
run cargo test -q -p prebake-platform --test proptest_metrics
run cargo run --release -q -p prebake-bench --bin ablation_obs -- --quick
run cp results/BENCH_obs.json results/BENCH_obs.run1.json
run cargo run --release -q -p prebake-bench --bin ablation_obs -- --quick
run cmp results/BENCH_obs.run1.json results/BENCH_obs.json
run rm -f results/BENCH_obs.run1.json
# Sharded event-loop invariants (DESIGN.md §16): threading-invisibility
# and streaming-vs-eager property tests, and a smoke run of the scale
# ablation, which streams a 54k-arrival trace through 200 workers at 1
# and 4 shards, prints sim events/sec (visible in this log), and
# asserts the threaded drain is bit-identical to the serial one. The
# ablation runs twice and the outputs are compared byte-for-byte so
# the sharded scheduler stays seed-deterministic.
run cargo test -q -p prebake-fleet --test proptest_shards
run cargo run --release -q -p prebake-bench --bin ablation_scale -- --quick
run cp results/BENCH_scale.json results/BENCH_scale.run1.json
run cargo run --release -q -p prebake-bench --bin ablation_scale -- --quick
run cmp results/BENCH_scale.run1.json results/BENCH_scale.json
run rm -f results/BENCH_scale.run1.json
# Streaming-gateway invariants (DESIGN.md §17): admission-conservation
# and cache-TTL property tests plus the end-to-end gateway/SDK suite,
# and a smoke run of the gateway ablation, which asserts per-arm
# conservation (arrivals == admitted + shed + cache hits), the <10ms
# cached path, and the cold-TTFC ordering lazy < prefetch < eager. The
# ablation runs twice and the outputs are compared byte-for-byte so
# the gateway frontier stays seed-deterministic.
run cargo test -q -p prebake-gateway
run cargo run --release -q -p prebake-bench --bin ablation_gateway -- --quick
run cp results/BENCH_gateway.json results/BENCH_gateway.run1.json
run cargo run --release -q -p prebake-bench --bin ablation_gateway -- --quick
run cmp results/BENCH_gateway.run1.json results/BENCH_gateway.json
run rm -f results/BENCH_gateway.run1.json
# Bench regression gate: committed baselines must diff clean against
# themselves (guards the flatten/tolerance logic and catches accidental
# baseline edits that no longer parse).
run cargo run --release -q -p prebake-bench --bin benchdiff -- BENCH_fleet.json BENCH_fleet.json
run cargo run --release -q -p prebake-bench --bin benchdiff -- BENCH_parallel.json BENCH_parallel.json
run cargo run --release -q -p prebake-bench --bin benchdiff -- BENCH_obs.json BENCH_obs.json
run cargo run --release -q -p prebake-bench --bin benchdiff -- BENCH_scale.json BENCH_scale.json
run cargo run --release -q -p prebake-bench --bin benchdiff -- BENCH_gateway.json BENCH_gateway.json
run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings

if [ "$fail" -ne 0 ]; then
  echo "tier-1: FAILED"
  exit 1
fi
echo "tier-1: OK"
