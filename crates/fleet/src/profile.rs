//! Start-cost profiles: what each restore gear costs a function.
//!
//! The fleet scheduler does not boot real replicas — it schedules over
//! *profiles* measured once per (function, gear) with the single-machine
//! trial harness ([`TrialRunner`]), exactly the way a production control
//! plane would observe start-cost statistics and pick a restore strategy
//! per function. A profile records, per gear: ready latency, first- and
//! warm-request service times, and the memory footprint the gear charges
//! a worker (resident replica bytes plus cached snapshot-image bytes).

use std::collections::BTreeMap;

use prebake_core::measure::{StartMode, TrialRunner};
use prebake_functions::FunctionSpec;
use prebake_sim::error::SysResult;
use prebake_sim::time::SimDuration;
use prebake_stats::summary::median;

/// Bytes per page in the simulated address space.
const PAGE_SIZE: u64 = 4096;

/// A restore strategy the scheduler can start a replica with.
///
/// Each gear maps onto one of the single-machine [`StartMode`]s with one
/// warm-up request baked in (the paper's PB-Warmup configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gear {
    /// fork-exec + full boot; no snapshot.
    Vanilla,
    /// Eager snapshot restore (copy every stored page up front).
    Eager,
    /// Lazy restore: map empty, demand-fault on first touch.
    Lazy,
    /// Copy-on-write restore from the shared page store.
    Cow,
    /// Working-set prefetch restore (REAP-style).
    Prefetch,
}

impl Gear {
    /// Every gear, in scheduling-preference-neutral order.
    pub const ALL: [Gear; 5] = [
        Gear::Vanilla,
        Gear::Eager,
        Gear::Lazy,
        Gear::Cow,
        Gear::Prefetch,
    ];

    /// The single-machine start mode this gear measures with.
    pub fn start_mode(self) -> StartMode {
        match self {
            Gear::Vanilla => StartMode::Vanilla,
            Gear::Eager => StartMode::PrebakeWarmup(1),
            Gear::Lazy => StartMode::PrebakeLazy(1),
            Gear::Cow => StartMode::PrebakeCow(1),
            Gear::Prefetch => StartMode::PrebakePrefetch(1),
        }
    }

    /// The gear's ordinal in [`Gear::ALL`] — a dense index for
    /// pre-registered per-gear metric arrays.
    pub fn index(self) -> usize {
        match self {
            Gear::Vanilla => 0,
            Gear::Eager => 1,
            Gear::Lazy => 2,
            Gear::Cow => 3,
            Gear::Prefetch => 4,
        }
    }

    /// Short label used in reports and policy names.
    pub fn label(self) -> &'static str {
        match self {
            Gear::Vanilla => "vanilla",
            Gear::Eager => "eager",
            Gear::Lazy => "lazy",
            Gear::Cow => "cow",
            Gear::Prefetch => "prefetch",
        }
    }
}

/// What one gear costs one function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GearCost {
    /// Start command → ready to serve, milliseconds.
    pub cold_ms: f64,
    /// Service time of the first request on a fresh replica (lazy gears
    /// take their demand faults here), milliseconds.
    pub first_service_ms: f64,
    /// Steady-state service time of a warm replica, milliseconds.
    pub warm_service_ms: f64,
    /// Resident bytes one replica charges its worker.
    pub replica_mem_bytes: u64,
    /// Snapshot-image bytes cached once per worker holding the function
    /// (0 for vanilla; the shared-frame pool for CoW).
    pub image_bytes: u64,
}

impl GearCost {
    /// Start → first response: the latency a queued request pays when it
    /// has to wait for a cold start.
    pub fn cold_to_first_response_ms(&self) -> f64 {
        self.cold_ms + self.first_service_ms
    }
}

/// Per-function start-cost statistics across the measured gears.
#[derive(Debug, Clone)]
pub struct FunctionProfile {
    name: String,
    costs: BTreeMap<Gear, GearCost>,
}

impl FunctionProfile {
    /// Builds a profile from pre-computed costs (tests, what-if sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty — a function the scheduler cannot
    /// start at all is a configuration error.
    pub fn synthetic(name: &str, costs: &[(Gear, GearCost)]) -> FunctionProfile {
        assert!(!costs.is_empty(), "profile needs at least one gear");
        FunctionProfile {
            name: name.to_owned(),
            costs: costs.iter().copied().collect(),
        }
    }

    /// Measures `spec` under each gear with `reps` single-machine trials
    /// (medians are recorded), deterministic in `seed`.
    ///
    /// Memory accounting: eager-family gears keep the whole restored
    /// snapshot resident, so their replicas charge `snapshot_bytes`; the
    /// CoW gear keeps only broken (privately written) pages resident and
    /// charges the shared unique-frame pool once per worker as image
    /// bytes instead. Vanilla replicas are sized like an eager restore
    /// (the booted heap is the same memory) but cache no image.
    ///
    /// # Errors
    ///
    /// Propagates build/bake/trial errors.
    pub fn measure(
        spec: &FunctionSpec,
        gears: &[Gear],
        reps: usize,
        seed: u64,
    ) -> SysResult<FunctionProfile> {
        assert!(!gears.is_empty(), "profile needs at least one gear");
        let reps = reps.max(1);
        let mut costs = BTreeMap::new();
        // Vanilla trials report snapshot_bytes = 0; size their RSS like
        // an eager restore of the same function.
        let mut rss_proxy = 0u64;
        let mut measured = Vec::new();
        for &gear in gears {
            let runner = TrialRunner::new(spec.clone(), gear.start_mode())?;
            let trials = runner.startup_samples(reps, seed)?;
            let cold: Vec<f64> = trials.iter().map(|t| t.startup_ms).collect();
            let first: Vec<f64> = trials
                .iter()
                .map(|t| (t.first_response_ms - t.startup_ms).max(0.0))
                .collect();
            let service = runner.service_trial(seed, 6, SimDuration::from_millis(10))?;
            // Skip the first two responses: lazy gears still fault there.
            let warm: Vec<f64> = service.into_iter().skip(2).collect();
            let trial = trials[0];
            let (replica_mem, image) = match gear {
                Gear::Vanilla => (0, 0),
                Gear::Cow => (
                    trial.probes.cow_breaks * PAGE_SIZE,
                    trial.pages_unique as u64 * PAGE_SIZE,
                ),
                _ => (trial.snapshot_bytes, trial.snapshot_bytes),
            };
            rss_proxy = rss_proxy.max(trial.snapshot_bytes);
            measured.push((gear, cold, first, warm, replica_mem, image));
        }
        if rss_proxy == 0 {
            // Only vanilla was requested: bake once purely for sizing.
            let sizing = TrialRunner::new(spec.clone(), StartMode::PrebakeWarmup(1))?;
            rss_proxy = sizing.snapshot_bytes();
        }
        for (gear, cold, first, warm, replica_mem, image) in measured {
            costs.insert(
                gear,
                GearCost {
                    cold_ms: median(&cold),
                    first_service_ms: median(&first),
                    warm_service_ms: median(&warm),
                    replica_mem_bytes: if gear == Gear::Vanilla {
                        rss_proxy
                    } else {
                        replica_mem
                    },
                    image_bytes: image,
                },
            );
        }
        Ok(FunctionProfile {
            name: spec.name().to_owned(),
            costs,
        })
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cost of one gear, if measured.
    pub fn cost(&self, gear: Gear) -> Option<&GearCost> {
        self.costs.get(&gear)
    }

    /// Gears this profile covers, ascending.
    pub fn gears(&self) -> impl Iterator<Item = Gear> + '_ {
        self.costs.keys().copied()
    }

    /// The gear with the lowest start-to-first-response latency — what an
    /// adaptive start policy picks from observed stats. Ties break toward
    /// the lower-ordered gear, keeping selection deterministic.
    pub fn best_gear(&self) -> Gear {
        self.costs
            .iter()
            .min_by(|(ga, a), (gb, b)| {
                a.cold_to_first_response_ms()
                    .partial_cmp(&b.cold_to_first_response_ms())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ga.cmp(gb))
            })
            .map(|(&g, _)| g)
            .expect("profile is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_functions::SyntheticSize;

    fn cost(cold: f64, first: f64, warm: f64) -> GearCost {
        GearCost {
            cold_ms: cold,
            first_service_ms: first,
            warm_service_ms: warm,
            replica_mem_bytes: 10 << 20,
            image_bytes: 0,
        }
    }

    #[test]
    fn gear_modes_and_labels() {
        assert_eq!(Gear::Vanilla.start_mode(), StartMode::Vanilla);
        assert_eq!(Gear::Eager.start_mode(), StartMode::PrebakeWarmup(1));
        assert_eq!(Gear::Prefetch.start_mode(), StartMode::PrebakePrefetch(1));
        assert_eq!(Gear::Cow.label(), "cow");
        assert_eq!(Gear::ALL.len(), 5);
    }

    #[test]
    fn best_gear_minimises_cold_to_first_response() {
        let p = FunctionProfile::synthetic(
            "f",
            &[
                (Gear::Vanilla, cost(200.0, 30.0, 1.0)),
                (Gear::Eager, cost(50.0, 1.0, 1.0)),
                (Gear::Lazy, cost(10.0, 60.0, 1.0)),
            ],
        );
        assert_eq!(p.best_gear(), Gear::Eager);
        assert_eq!(p.gears().count(), 3);
        assert!((p.cost(Gear::Lazy).unwrap().cold_to_first_response_ms() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn best_gear_tie_breaks_deterministically() {
        let p = FunctionProfile::synthetic(
            "f",
            &[
                (Gear::Prefetch, cost(25.0, 5.0, 1.0)),
                (Gear::Cow, cost(25.0, 5.0, 1.0)),
            ],
        );
        assert_eq!(p.best_gear(), Gear::Cow, "lower-ordered gear wins ties");
    }

    #[test]
    #[should_panic(expected = "at least one gear")]
    fn empty_profile_panics() {
        FunctionProfile::synthetic("f", &[]);
    }

    #[test]
    fn measured_profile_orders_gears_sanely() {
        // One small function, two gears, few reps: the measured profile
        // must show prebake beating vanilla to first response and carry
        // real memory numbers.
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let p = FunctionProfile::measure(&spec, &[Gear::Vanilla, Gear::Eager], 2, 1).unwrap();
        let v = p.cost(Gear::Vanilla).unwrap();
        let e = p.cost(Gear::Eager).unwrap();
        assert!(
            e.cold_to_first_response_ms() < v.cold_to_first_response_ms(),
            "eager {} !< vanilla {}",
            e.cold_to_first_response_ms(),
            v.cold_to_first_response_ms()
        );
        assert!(e.replica_mem_bytes > 0);
        assert!(v.replica_mem_bytes > 0, "vanilla RSS sized from snapshot");
        assert_eq!(v.image_bytes, 0, "vanilla caches no image");
        assert!(e.image_bytes > 0);
        assert_eq!(p.best_gear(), Gear::Eager);
        assert_eq!(p.name(), spec.name());
    }

    #[test]
    fn cow_profile_charges_broken_pages_not_the_snapshot() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let p = FunctionProfile::measure(&spec, &[Gear::Eager, Gear::Cow], 2, 1).unwrap();
        let eager = p.cost(Gear::Eager).unwrap();
        let cow = p.cost(Gear::Cow).unwrap();
        assert!(
            cow.replica_mem_bytes < eager.replica_mem_bytes / 2,
            "CoW resident set ({}) must undercut the eager RSS ({})",
            cow.replica_mem_bytes,
            eager.replica_mem_bytes
        );
        assert!(cow.image_bytes > 0, "shared frame pool is charged");
        assert!(
            cow.image_bytes < eager.image_bytes,
            "dedup shrinks the CoW frame pool below the raw snapshot"
        );
    }
}
