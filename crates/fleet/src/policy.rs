//! The pluggable policy engine: keep-alive × start selection.
//!
//! Keep-alive decides *how long* an idle replica survives (and whether
//! expiry triggers a predictive pre-warm); start selection decides *which
//! restore gear* a cold start uses. The two axes compose freely — the
//! `ablation_fleet` bench sweeps their cross product against the
//! vanilla-TTL baseline the "How Low Can You Go?" keep-alive literature
//! measures real platforms with.

use prebake_platform::metrics::Histogram;
use prebake_sim::time::{SimDuration, SimInstant};

use crate::profile::{FunctionProfile, Gear};

/// How long idle replicas are kept warm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeepAlive {
    /// Evict any replica idle longer than the fixed TTL (the
    /// OpenWhisk-style baseline).
    FixedTtl(SimDuration),
    /// Fixed TTL, but when a placement fails for lack of memory the
    /// worker may evict its least-recently-used idle replicas early.
    LruPressure {
        /// Idle TTL before normal expiry.
        ttl: SimDuration,
    },
    /// Per-function adaptive TTL: keep an idle replica for the given
    /// quantile of the function's observed inter-arrival distribution,
    /// clamped to `[floor, cap]` (the histogram policy of Shahrad et
    /// al.'s serverless-in-the-wild scheduler).
    Histogram {
        /// Lower clamp for the adaptive TTL.
        floor: SimDuration,
        /// Upper clamp for the adaptive TTL.
        cap: SimDuration,
        /// Inter-arrival quantile to keep alive for (e.g. 0.99).
        quantile: f64,
        /// Re-start a replica just before the predicted next arrival when
        /// expiry left the function scaled to zero.
        prewarm: bool,
    },
}

impl KeepAlive {
    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            KeepAlive::FixedTtl(ttl) => format!("ttl{}s", ttl.as_millis() / 1000),
            KeepAlive::LruPressure { ttl } => {
                format!("lru-ttl{}s", ttl.as_millis() / 1000)
            }
            KeepAlive::Histogram { prewarm, .. } => {
                if *prewarm {
                    "hist-prewarm".to_owned()
                } else {
                    "hist".to_owned()
                }
            }
        }
    }

    /// Whether memory pressure may evict idle replicas before their TTL.
    pub fn evicts_under_pressure(&self) -> bool {
        matches!(self, KeepAlive::LruPressure { .. })
    }

    /// Whether expiry-to-zero schedules a predictive pre-warm.
    pub fn prewarms(&self) -> bool {
        matches!(self, KeepAlive::Histogram { prewarm: true, .. })
    }
}

/// Which gear cold starts use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartSelection {
    /// Always start with one gear.
    Fixed(Gear),
    /// Pick the gear with the lowest observed start-to-first-response
    /// latency from the function's profile.
    Adaptive,
}

impl StartSelection {
    /// Resolves the gear for one function.
    pub fn gear_for(&self, profile: &FunctionProfile) -> Gear {
        match self {
            StartSelection::Fixed(g) => *g,
            StartSelection::Adaptive => profile.best_gear(),
        }
    }

    /// Short label used in reports.
    pub fn label(&self) -> String {
        match self {
            StartSelection::Fixed(g) => g.label().to_owned(),
            StartSelection::Adaptive => "adaptive".to_owned(),
        }
    }
}

/// One point in the keep-alive × start-selection grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Policy {
    /// Idle-replica lifetime policy.
    pub keep_alive: KeepAlive,
    /// Cold-start gear policy.
    pub start: StartSelection,
}

impl Policy {
    /// The sweep's baseline: fixed TTL, vanilla starts.
    pub fn vanilla_baseline(ttl: SimDuration) -> Policy {
        Policy {
            keep_alive: KeepAlive::FixedTtl(ttl),
            start: StartSelection::Fixed(Gear::Vanilla),
        }
    }

    /// `keepalive×gear` label used in tables and JSON.
    pub fn label(&self) -> String {
        format!("{}x{}", self.keep_alive.label(), self.start.label())
    }
}

/// Observed inter-arrival statistics for one function: drives the
/// histogram keep-alive policy and the pre-warm predictor.
#[derive(Debug, Clone)]
pub struct ArrivalStats {
    gaps_ms: Histogram,
    last_arrival: Option<SimInstant>,
}

/// Log-spaced gap buckets, 1 ms .. ~17 min.
const GAP_BOUNDS_MS: [f64; 11] = [
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1_000.0,
    4_000.0,
    16_000.0,
    64_000.0,
    256_000.0,
    1_024_000.0,
];

impl Default for ArrivalStats {
    fn default() -> Self {
        ArrivalStats::new()
    }
}

impl ArrivalStats {
    /// Empty statistics.
    pub fn new() -> ArrivalStats {
        ArrivalStats {
            gaps_ms: Histogram::new(&GAP_BOUNDS_MS),
            last_arrival: None,
        }
    }

    /// Records one arrival at `now`.
    pub fn observe(&mut self, now: SimInstant) {
        if let Some(last) = self.last_arrival {
            self.gaps_ms
                .observe(now.saturating_duration_since(last).as_millis_f64());
        }
        self.last_arrival = Some(now);
    }

    /// Arrivals observed (gaps + 1, once anything arrived).
    pub fn arrivals(&self) -> u64 {
        match self.last_arrival {
            None => 0,
            Some(_) => self.gaps_ms.count() + 1,
        }
    }

    /// The idle TTL the policy grants a replica of this function.
    ///
    /// Fixed policies return their TTL; the histogram policy returns the
    /// configured inter-arrival quantile clamped to `[floor, cap]`
    /// (falling back to `cap` while fewer than two arrivals have been
    /// seen — new functions get the benefit of the doubt).
    pub fn keep_alive_for(&self, policy: &KeepAlive) -> SimDuration {
        match policy {
            KeepAlive::FixedTtl(ttl) | KeepAlive::LruPressure { ttl } => *ttl,
            KeepAlive::Histogram {
                floor,
                cap,
                quantile,
                ..
            } => {
                if self.gaps_ms.count() == 0 {
                    return *cap;
                }
                let q = self.gaps_ms.quantile(*quantile);
                if !q.is_finite() {
                    return *cap;
                }
                SimDuration::from_millis_f64(q).max(*floor).min(*cap)
            }
        }
    }

    /// Predicted instant of the next arrival: the last arrival plus the
    /// mean observed gap (the histogram tracks its sum and count exactly,
    /// so the mean has no bucket-resolution error). `None` until two
    /// arrivals have been seen.
    pub fn predicted_next_arrival(&self) -> Option<SimInstant> {
        let last = self.last_arrival?;
        if self.gaps_ms.count() == 0 {
            return None;
        }
        let gap = self.gaps_ms.mean();
        if !gap.is_finite() || gap <= 0.0 {
            return None;
        }
        Some(last + SimDuration::from_millis_f64(gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::GearCost;

    fn stats_with_gaps(gaps_ms: &[u64]) -> ArrivalStats {
        let mut s = ArrivalStats::new();
        let mut t = SimInstant::EPOCH;
        s.observe(t);
        for &g in gaps_ms {
            t += SimDuration::from_millis(g);
            s.observe(t);
        }
        s
    }

    #[test]
    fn labels_compose() {
        let p = Policy::vanilla_baseline(SimDuration::from_secs(60));
        assert_eq!(p.label(), "ttl60sxvanilla");
        let p = Policy {
            keep_alive: KeepAlive::Histogram {
                floor: SimDuration::from_secs(1),
                cap: SimDuration::from_secs(600),
                quantile: 0.99,
                prewarm: true,
            },
            start: StartSelection::Adaptive,
        };
        assert_eq!(p.label(), "hist-prewarmxadaptive");
        let p = Policy {
            keep_alive: KeepAlive::LruPressure {
                ttl: SimDuration::from_secs(30),
            },
            start: StartSelection::Fixed(Gear::Cow),
        };
        assert_eq!(p.label(), "lru-ttl30sxcow");
        assert!(p.keep_alive.evicts_under_pressure());
        assert!(!p.keep_alive.prewarms());
    }

    #[test]
    fn fixed_ttl_ignores_observations() {
        let stats = stats_with_gaps(&[10, 10, 10]);
        let ttl = SimDuration::from_secs(60);
        assert_eq!(stats.keep_alive_for(&KeepAlive::FixedTtl(ttl)), ttl);
        assert_eq!(stats.keep_alive_for(&KeepAlive::LruPressure { ttl }), ttl);
    }

    #[test]
    fn histogram_ttl_adapts_and_clamps() {
        let policy = KeepAlive::Histogram {
            floor: SimDuration::from_millis(500),
            cap: SimDuration::from_secs(120),
            quantile: 0.99,
            prewarm: false,
        };
        // No history yet: optimistic cap.
        assert_eq!(
            ArrivalStats::new().keep_alive_for(&policy),
            SimDuration::from_secs(120)
        );
        // Tight 10ms gaps adapt down, clamped at the floor.
        let fast = stats_with_gaps(&[10; 20]);
        assert_eq!(fast.keep_alive_for(&policy), SimDuration::from_millis(500));
        // Minute-scale gaps adapt up toward (bucketised) minutes.
        let slow = stats_with_gaps(&[60_000; 20]);
        let ttl = slow.keep_alive_for(&policy);
        assert!(
            ttl >= SimDuration::from_secs(60) && ttl <= SimDuration::from_secs(120),
            "adaptive ttl {ttl}"
        );
        // Gaps beyond every bucket clamp to the cap, not +Inf.
        let huge = stats_with_gaps(&[2_000_000; 4]);
        assert_eq!(huge.keep_alive_for(&policy), SimDuration::from_secs(120));
    }

    #[test]
    fn prediction_needs_two_arrivals() {
        assert!(ArrivalStats::new().predicted_next_arrival().is_none());
        let mut one = ArrivalStats::new();
        one.observe(SimInstant::EPOCH);
        assert!(one.predicted_next_arrival().is_none());
        assert_eq!(one.arrivals(), 1);

        let stats = stats_with_gaps(&[1000, 1000, 1000]);
        let predicted = stats.predicted_next_arrival().unwrap();
        // Last arrival was t=3s; the median bucketised gap predicts t+1s.
        assert_eq!(predicted, SimInstant::EPOCH + SimDuration::from_secs(4));
        assert_eq!(stats.arrivals(), 4);
    }

    #[test]
    fn start_selection_resolves_gears() {
        let cheap_lazy = FunctionProfile::synthetic(
            "f",
            &[
                (
                    Gear::Vanilla,
                    GearCost {
                        cold_ms: 200.0,
                        first_service_ms: 10.0,
                        warm_service_ms: 1.0,
                        replica_mem_bytes: 1,
                        image_bytes: 0,
                    },
                ),
                (
                    Gear::Prefetch,
                    GearCost {
                        cold_ms: 20.0,
                        first_service_ms: 5.0,
                        warm_service_ms: 1.0,
                        replica_mem_bytes: 1,
                        image_bytes: 1,
                    },
                ),
            ],
        );
        assert_eq!(
            StartSelection::Fixed(Gear::Vanilla).gear_for(&cheap_lazy),
            Gear::Vanilla
        );
        assert_eq!(
            StartSelection::Adaptive.gear_for(&cheap_lazy),
            Gear::Prefetch
        );
        assert_eq!(StartSelection::Adaptive.label(), "adaptive");
    }
}
