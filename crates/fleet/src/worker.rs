//! One worker node: replica slots, a memory budget, the charged
//! snapshot-image cache, and the node-local pull-through image cache.
//!
//! Memory accounting follows the dedup-aware image cache from
//! `prebake-criu`: a worker is charged for each resident replica
//! (`GearCost::replica_mem_bytes`) plus, once per `(function, gear)` it
//! hosts, the snapshot-image bytes of that gear
//! (`GearCost::image_bytes`). The charge is strictly node-local:
//! evicting the last replica of a `(function, gear)` on a node releases
//! *that node's* cached image bytes only — other nodes' charges (and
//! their [`NodeCache`] residency) are untouched. Cold starts contend
//! for a bounded set of concurrency slots, the same convoy model the
//! single-node platform uses.

use std::collections::BTreeMap;

use prebake_registry::NodeCache;
use prebake_sim::time::{SimDuration, SimInstant};

use crate::profile::Gear;

/// Lifecycle of a replica on a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Restore/boot in flight; ready at the given instant.
    Starting {
        /// When the replica becomes ready.
        ready_at: SimInstant,
    },
    /// Ready and free.
    Idle {
        /// When it last became idle.
        since: SimInstant,
    },
    /// Serving a request until the given instant.
    Busy {
        /// When the in-flight request completes.
        until: SimInstant,
    },
}

/// A warm (or warming) function replica.
#[derive(Debug, Clone)]
pub struct Replica {
    /// Function the replica serves.
    pub function: String,
    /// Gear it was started with.
    pub gear: Gear,
    /// Lifecycle state.
    pub state: ReplicaState,
    /// Resident bytes charged to the worker.
    pub mem_bytes: u64,
    /// When the start was issued (cold-detection anchor).
    pub started_at: SimInstant,
    /// When the start began executing (after slot queueing).
    pub start_began: SimInstant,
    /// Ready instant (valid once past `Starting`).
    pub ready_at: SimInstant,
    /// Last instant the replica finished serving (or became ready).
    pub last_used: SimInstant,
    /// Requests served so far (the first one pays the gear's
    /// first-service cost).
    pub served: u64,
    /// Time this replica's cold start spent pulling its image from the
    /// snapshot registry (zero without a registry tier, on node-cache
    /// hits, and for image-less gears).
    pub pull_wait: SimDuration,
    /// Registry bytes the pull fetched over the network.
    pub pull_bytes: u64,
}

/// One `(function, gear)` image's node-local charge: the bytes it pins
/// and the number of resident replicas pinning it.
#[derive(Debug, Clone, Copy)]
struct ImageCharge {
    bytes: u64,
    replicas: u32,
}

/// One worker node.
#[derive(Debug)]
pub struct Worker {
    /// Worker index in the fleet.
    pub id: usize,
    /// Memory budget in bytes.
    pub mem_budget: u64,
    /// Live replicas by id.
    pub replicas: BTreeMap<u64, Replica>,
    /// Node-local image charges, one per resident `(function, gear)`.
    image_charges: BTreeMap<(String, Gear), ImageCharge>,
    /// Busy-until times of in-flight cold starts (≤ concurrency).
    slots: Vec<SimInstant>,
    /// Highest memory-in-use observed.
    pub mem_high_water: u64,
    /// Node-local pull-through snapshot cache (registry tier).
    pub cache: NodeCache,
}

impl Worker {
    /// An empty worker.
    pub fn new(id: usize, mem_budget: u64) -> Worker {
        Worker {
            id,
            mem_budget,
            replicas: BTreeMap::new(),
            image_charges: BTreeMap::new(),
            slots: Vec::new(),
            mem_high_water: 0,
            cache: NodeCache::new(),
        }
    }

    /// Bytes currently charged: resident replicas + cached images.
    pub fn mem_in_use(&self) -> u64 {
        self.replicas.values().map(|r| r.mem_bytes).sum::<u64>()
            + self.image_charges.values().map(|c| c.bytes).sum::<u64>()
    }

    /// Extra bytes starting `function` with `gear` would charge (the
    /// image is charged only once per `(function, gear)` per node).
    pub fn charge_for(
        &self,
        function: &str,
        gear: Gear,
        replica_mem: u64,
        image_bytes: u64,
    ) -> u64 {
        let image = if self
            .image_charges
            .contains_key(&(function.to_owned(), gear))
        {
            0
        } else {
            image_bytes
        };
        replica_mem + image
    }

    /// Whether `extra` more bytes fit in the budget.
    pub fn fits(&self, extra: u64) -> bool {
        self.mem_in_use() + extra <= self.mem_budget
    }

    /// Live replicas (any state) of `function`.
    pub fn replicas_of(&self, function: &str) -> usize {
        self.replicas
            .values()
            .filter(|r| r.function == function)
            .count()
    }

    /// Adds a replica under `id`, charging its memory (and its
    /// `(function, gear)` image on this node's first use). Updates the
    /// high-water mark.
    pub fn add_replica(&mut self, id: u64, replica: Replica, image_bytes: u64) {
        let charge = self
            .image_charges
            .entry((replica.function.clone(), replica.gear))
            .or_insert(ImageCharge {
                bytes: image_bytes,
                replicas: 0,
            });
        charge.replicas += 1;
        self.replicas.insert(id, replica);
        self.mem_high_water = self.mem_high_water.max(self.mem_in_use());
    }

    /// Removes a replica, releasing its memory. The `(function, gear)`
    /// image charge is released with the node's last replica of that
    /// pair — and only on this node: a sibling node holding the same
    /// function keeps its own charge.
    pub fn remove_replica(&mut self, id: u64) -> Option<Replica> {
        let replica = self.replicas.remove(&id)?;
        let key = (replica.function.clone(), replica.gear);
        if let Some(charge) = self.image_charges.get_mut(&key) {
            charge.replicas = charge.replicas.saturating_sub(1);
            if charge.replicas == 0 {
                self.image_charges.remove(&key);
            }
        }
        Some(replica)
    }

    /// Ids of idle replicas, least-recently-used first (stable on ties by
    /// replica id, so eviction order is deterministic).
    pub fn idle_lru(&self) -> Vec<u64> {
        let mut idle: Vec<(SimInstant, u64)> = self
            .replicas
            .iter()
            .filter(|(_, r)| matches!(r.state, ReplicaState::Idle { .. }))
            .map(|(&id, r)| (r.last_used, id))
            .collect();
        idle.sort();
        idle.into_iter().map(|(_, id)| id).collect()
    }

    /// Idle replicas (least-recently-used first) whose removal would let
    /// a new replica of `function`/`gear` fit — accounting for the
    /// node-local image charge a `(function, gear)` releases with its
    /// last replica on *this* node, and for the new replica's own image
    /// becoming chargeable if this worker's copies of the same pair are
    /// all evicted. Returns `None` when even a full idle purge would
    /// not make room.
    pub fn pressure_victims(
        &self,
        function: &str,
        gear: Gear,
        replica_mem: u64,
        image_bytes: u64,
    ) -> Option<Vec<u64>> {
        let mut remaining: BTreeMap<(&str, Gear), usize> = BTreeMap::new();
        for r in self.replicas.values() {
            *remaining.entry((r.function.as_str(), r.gear)).or_insert(0) += 1;
        }
        let fits = |in_use: u64, remaining: &BTreeMap<(&str, Gear), usize>| {
            // The image rides free only while this node still holds
            // another replica of the same (function, gear); evicting the
            // last one releases the node's charge, and the newcomer pays
            // it afresh.
            let image = if remaining.get(&(function, gear)).copied().unwrap_or(0) > 0 {
                0
            } else {
                image_bytes
            };
            in_use + replica_mem + image <= self.mem_budget
        };
        let mut in_use = self.mem_in_use();
        let mut victims = Vec::new();
        if fits(in_use, &remaining) {
            return Some(victims);
        }
        for id in self.idle_lru() {
            let r = &self.replicas[&id];
            in_use -= r.mem_bytes;
            let count = remaining
                .get_mut(&(r.function.as_str(), r.gear))
                .expect("victim counted");
            *count -= 1;
            if *count == 0 {
                in_use -= self
                    .image_charges
                    .get(&(r.function.clone(), r.gear))
                    .map_or(0, |c| c.bytes);
            }
            victims.push(id);
            if fits(in_use, &remaining) {
                return Some(victims);
            }
        }
        None
    }

    /// Reserves a cold-start slot: starts immediately while fewer than
    /// `concurrency` starts are in flight, else queues behind the
    /// earliest-finishing one. Returns `(slot index, start instant)`.
    pub fn reserve_slot(&mut self, now: SimInstant, concurrency: usize) -> (usize, SimInstant) {
        let cap = concurrency.max(1);
        if self.slots.len() < cap {
            self.slots.push(now);
            return (self.slots.len() - 1, now);
        }
        let (idx, &busy_until) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.as_nanos())
            .expect("slots non-empty");
        (idx, busy_until.max(now))
    }

    /// Marks a reserved slot busy until `ready_at`.
    pub fn occupy_slot(&mut self, slot: usize, ready_at: SimInstant) {
        self.slots[slot] = ready_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(function: &str, mem: u64, last_used_ms: u64) -> Replica {
        let t = SimInstant::from_nanos(last_used_ms * 1_000_000);
        Replica {
            function: function.to_owned(),
            gear: Gear::Eager,
            state: ReplicaState::Idle { since: t },
            mem_bytes: mem,
            started_at: SimInstant::EPOCH,
            start_began: SimInstant::EPOCH,
            ready_at: t,
            last_used: t,
            served: 0,
            pull_wait: SimDuration::ZERO,
            pull_bytes: 0,
        }
    }

    #[test]
    fn memory_accounting_charges_image_once() {
        let mut w = Worker::new(0, 1000);
        assert_eq!(w.charge_for("f", Gear::Eager, 100, 300), 400);
        w.add_replica(1, replica("f", 100, 1), 300);
        assert_eq!(w.mem_in_use(), 400);
        // Second replica of the same function+gear: image already cached.
        assert_eq!(w.charge_for("f", Gear::Eager, 100, 300), 100);
        w.add_replica(2, replica("f", 100, 2), 300);
        assert_eq!(w.mem_in_use(), 500);
        assert_eq!(w.mem_high_water, 500);
        assert!(w.fits(500));
        assert!(!w.fits(501));
        assert_eq!(w.replicas_of("f"), 2);

        // Image charge survives the first removal, goes with the last.
        w.remove_replica(1).unwrap();
        assert_eq!(w.mem_in_use(), 400);
        w.remove_replica(2).unwrap();
        assert_eq!(w.mem_in_use(), 0);
        assert_eq!(
            w.charge_for("f", Gear::Eager, 100, 300),
            400,
            "image re-charged"
        );
        assert_eq!(w.mem_high_water, 500, "high water persists");
    }

    #[test]
    fn image_charges_are_per_gear_not_per_function() {
        // Regression: charges used to be keyed by function alone, so a
        // second gear of the same function rode the first gear's (wrong)
        // charge — and removing the first gear's last replica dropped
        // the charge out from under the survivor.
        let mut w = Worker::new(0, u64::MAX);
        w.add_replica(1, replica("f", 100, 1), 300); // eager, 300B image
        let mut cow = replica("f", 10, 2);
        cow.gear = Gear::Cow;
        assert_eq!(
            w.charge_for("f", Gear::Cow, 10, 120),
            130,
            "a different gear's image is a different artifact"
        );
        w.add_replica(2, cow, 120);
        assert_eq!(w.mem_in_use(), 100 + 300 + 10 + 120);

        // Dropping the eager replica releases the eager image only.
        w.remove_replica(1).unwrap();
        assert_eq!(w.mem_in_use(), 10 + 120, "cow image charge survives");
        w.remove_replica(2).unwrap();
        assert_eq!(w.mem_in_use(), 0);
    }

    #[test]
    fn last_replica_eviction_releases_only_that_nodes_image_bytes() {
        // Regression: the image charge is node-local, not cluster-wide.
        // Two nodes each hold a replica of `f`; reaping node 0's last
        // copy must release node 0's 300 image bytes and leave node 1's
        // accounting untouched.
        let mut node0 = Worker::new(0, 1000);
        let mut node1 = Worker::new(1, 1000);
        node0.add_replica(1, replica("f", 100, 1), 300);
        node1.add_replica(2, replica("f", 100, 1), 300);
        assert_eq!(node0.mem_in_use(), 400);
        assert_eq!(node1.mem_in_use(), 400);

        node0.remove_replica(1).unwrap();
        assert_eq!(node0.mem_in_use(), 0, "node 0 released its image bytes");
        assert_eq!(node1.mem_in_use(), 400, "node 1 still charged");
        assert_eq!(
            node1.charge_for("f", Gear::Eager, 100, 300),
            100,
            "node 1's image is still cached"
        );
        assert_eq!(
            node0.charge_for("f", Gear::Eager, 100, 300),
            400,
            "node 0 would pay the image afresh"
        );
    }

    #[test]
    fn idle_lru_orders_by_last_used() {
        let mut w = Worker::new(0, u64::MAX);
        w.add_replica(1, replica("a", 10, 30), 0);
        w.add_replica(2, replica("b", 10, 10), 0);
        let mut busy = replica("c", 10, 5);
        busy.state = ReplicaState::Busy {
            until: SimInstant::from_nanos(u64::MAX),
        };
        w.add_replica(3, busy, 0);
        assert_eq!(w.idle_lru(), vec![2, 1], "busy replicas are not victims");
    }

    #[test]
    fn pressure_victims_account_for_released_image_charges() {
        let mut w = Worker::new(0, 200);
        // Two replicas of `f` (10 bytes each) share a 100-byte image;
        // one replica of `g` (20 bytes) carries a 50-byte image.
        w.add_replica(1, replica("f", 10, 1), 100);
        w.add_replica(2, replica("f", 10, 2), 100);
        w.add_replica(3, replica("g", 20, 3), 50);
        assert_eq!(w.mem_in_use(), 190);

        // A 40+60 newcomer needs 100 free. Evicting replica 1 frees only
        // its 10 resident bytes; evicting replica 2 also releases `f`'s
        // 100-byte image — which is what makes the placement fit.
        assert_eq!(
            w.pressure_victims("h", Gear::Eager, 40, 60).unwrap(),
            vec![1, 2]
        );

        // Fits without eviction: no victims.
        assert!(w
            .pressure_victims("g", Gear::Eager, 5, 0)
            .unwrap()
            .is_empty());

        // Evicting every copy of the incoming function+gear re-charges
        // its own image: [1, 2] frees 120 but `f` then pays its 100
        // back, so the purge must continue into `g`.
        assert_eq!(
            w.pressure_victims("f", Gear::Eager, 50, 100).unwrap(),
            vec![1, 2, 3]
        );

        // The incoming function under a *different* gear gets no free
        // ride from `f`'s resident eager image: its own image is a
        // distinct artifact, so the same purge depth is required.
        assert_eq!(
            w.pressure_victims("f", Gear::Cow, 50, 100).unwrap(),
            vec![1, 2, 3]
        );

        // A replica bigger than the whole budget can never fit.
        assert!(w.pressure_victims("h", Gear::Eager, 500, 0).is_none());
    }

    #[test]
    fn slots_convoy_concurrent_starts() {
        let mut w = Worker::new(0, u64::MAX);
        let now = SimInstant::EPOCH;
        let (s0, t0) = w.reserve_slot(now, 2);
        w.occupy_slot(s0, now + prebake_sim::time::SimDuration::from_millis(100));
        let (s1, t1) = w.reserve_slot(now, 2);
        w.occupy_slot(s1, now + prebake_sim::time::SimDuration::from_millis(120));
        assert_eq!(t0, now);
        assert_eq!(t1, now);
        assert_ne!(s0, s1);
        // Third start queues behind the earliest-finishing slot.
        let (s2, t2) = w.reserve_slot(now, 2);
        assert_eq!(s2, s0);
        assert_eq!(
            t2,
            now + prebake_sim::time::SimDuration::from_millis(100),
            "start deferred to slot release"
        );
    }
}
