//! Fleet scheduler: multi-worker placement, keep-alive policies, and
//! trace-driven workloads over the prebake simulator.
//!
//! Where the rest of the workspace measures how fast *one* replica can
//! start, this crate asks the control-plane question: across a fleet of
//! workers with finite memory, which keep-alive policy and which restore
//! gear minimise cold starts and tail latency for a multi-tenant
//! workload? The pieces:
//!
//! - [`profile`] — per-function start-cost profiles measured with the
//!   single-machine trial harness, one [`GearCost`] per restore [`Gear`].
//! - [`policy`] — the pluggable policy engine: [`KeepAlive`] (fixed TTL,
//!   LRU-under-pressure, histogram-adaptive with predictive pre-warm)
//!   crossed with [`StartSelection`] (fixed gear or adaptive).
//! - [`worker`] — one node's replica pool, memory budget with
//!   dedup-aware image-cache charging, node-local pull-through snapshot
//!   cache, and cold-start concurrency slots.
//! - [`sim`] — the deterministic event-driven scheduler itself:
//!   admission control, per-function queues, deficit scale-up,
//!   least-loaded placement, expiry sweeps, and span-traced invocations.
//! - [`metrics`] — Prometheus-format fleet counters and latency
//!   histograms.
//!
//! With a [`RegistryConfig`], snapshot images live behind a shared
//! `prebake_registry::SnapshotRegistry` instead of being node-local:
//! cold starts pull their image through the placed node's cache (frames
//! any resident image already holds ride free), placement can prefer
//! the node that would fetch the fewest bytes, and the pre-warm engine
//! pre-pulls images to predicted nodes.
//!
//! Workloads come from `prebake_platform::loadgen::Schedule` — synthetic
//! (constant/Poisson/Pareto/empirical) or replayed from CSV traces. The
//! `ablation_fleet` bench sweeps policy × fleet size × memory budget on
//! the paper's Fig. 5 function mix; `ablation_registry` sweeps pull
//! modes × placement on a multi-node fleet.

#![warn(missing_docs)]

pub mod metrics;
pub mod policy;
pub mod profile;
pub mod sim;
pub mod worker;

pub use metrics::FleetMetrics;
pub use policy::{ArrivalStats, KeepAlive, Policy, StartSelection};
pub use prebake_gateway::{
    AdmissionStats, CacheConfig, GatewayConfig, GatewayMetrics, StreamConfig,
};
pub use profile::{FunctionProfile, Gear, GearCost};
pub use sim::{default_fleet_obs, FleetConfig, FleetError, FleetRequest, FleetSim, RegistryConfig};
pub use worker::{Replica, ReplicaState, Worker};
