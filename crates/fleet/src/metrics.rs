//! Fleet-level Prometheus metrics.
//!
//! Reuses the platform's [`Counter`]/[`Histogram`] primitives so fleet
//! series render in the same exposition format the gateway exports.

use prebake_platform::metrics::{render_histogram, Counter, Histogram};

use crate::profile::Gear;

/// Scheduler-level counters and latency distributions.
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    /// Requests admitted to the fleet.
    pub requests: Counter,
    /// Admitted requests that waited on a cold start.
    pub cold_starts: Counter,
    /// Arrivals shed by admission control (queue over capacity).
    pub shed: Counter,
    /// Idle replicas evicted early under memory pressure.
    pub evictions: Counter,
    /// Idle replicas expired by their keep-alive TTL.
    pub expirations: Counter,
    /// Replicas started predictively by the pre-warm policy.
    pub prewarm_starts: Counter,
    /// Replica starts of any kind.
    pub replicas_started: Counter,
    /// Bytes pulled from the snapshot registry over the network.
    pub registry_egress_bytes: Counter,
    /// Bytes satisfied node-locally instead of fetched (frame dedup +
    /// whole-image cache hits).
    pub registry_dedup_bytes: Counter,
    /// Image pulls fully satisfied by the node cache.
    pub pull_cache_hits: Counter,
    /// Images pushed to predicted nodes ahead of demand.
    pub prepulls: Counter,
    /// Arrival → dispatch queueing delay, ms.
    pub queue_delay: Histogram,
    /// Arrival → completion latency, ms.
    pub latency: Histogram,
    /// Arrival → completion latency split by serving gear, ms. One
    /// pre-registered slot per [`Gear::ALL`] entry (indexed by
    /// [`Gear::index`]), so the serve path never allocates or probes a
    /// map to find its histogram.
    pub latency_by_gear: [Histogram; Gear::ALL.len()],
    /// Arrival → completion latency of cold-served requests only, ms —
    /// the distribution scale runs read cold-start p99 from without
    /// retaining per-request rows.
    pub cold_latency: Histogram,
    /// Cold-start time spent waiting on registry pulls, ms.
    pub pull_wait: Histogram,
}

/// Latency buckets wide enough for cold starts behind deep queues.
/// Shared with the obs recorder so windowed series merge with fleet
/// aggregates without rebucketing.
pub const LATENCY_BOUNDS_MS: [f64; 12] = [
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 10_000.0,
];

impl Default for FleetMetrics {
    fn default() -> Self {
        FleetMetrics {
            requests: Counter::default(),
            cold_starts: Counter::default(),
            shed: Counter::default(),
            evictions: Counter::default(),
            expirations: Counter::default(),
            prewarm_starts: Counter::default(),
            replicas_started: Counter::default(),
            registry_egress_bytes: Counter::default(),
            registry_dedup_bytes: Counter::default(),
            pull_cache_hits: Counter::default(),
            prepulls: Counter::default(),
            queue_delay: Histogram::new(&LATENCY_BOUNDS_MS),
            latency: Histogram::new(&LATENCY_BOUNDS_MS),
            latency_by_gear: std::array::from_fn(|_| Histogram::new(&LATENCY_BOUNDS_MS)),
            cold_latency: Histogram::new(&LATENCY_BOUNDS_MS),
            pull_wait: Histogram::new(&LATENCY_BOUNDS_MS),
        }
    }
}

impl FleetMetrics {
    /// Records one served request: aggregate + per-gear latency, and the
    /// cold-only split when the request waited on a cold start. The gear
    /// slot is pre-registered, so this is allocation-free.
    pub fn observe_latency(&mut self, gear: Gear, latency_ms: f64, cold: bool) {
        self.latency.observe(latency_ms);
        self.latency_by_gear[gear.index()].observe(latency_ms);
        if cold {
            self.cold_latency.observe(latency_ms);
        }
    }

    /// Folds another metrics block into this one — the shard-merge path.
    /// Counters add; histograms merge bucket-wise (shared bounds).
    pub fn merge(&mut self, other: &FleetMetrics) {
        self.requests.add(other.requests.get());
        self.cold_starts.add(other.cold_starts.get());
        self.shed.add(other.shed.get());
        self.evictions.add(other.evictions.get());
        self.expirations.add(other.expirations.get());
        self.prewarm_starts.add(other.prewarm_starts.get());
        self.replicas_started.add(other.replicas_started.get());
        self.registry_egress_bytes
            .add(other.registry_egress_bytes.get());
        self.registry_dedup_bytes
            .add(other.registry_dedup_bytes.get());
        self.pull_cache_hits.add(other.pull_cache_hits.get());
        self.prepulls.add(other.prepulls.get());
        self.queue_delay.merge(&other.queue_delay);
        self.latency.merge(&other.latency);
        for (mine, theirs) in self.latency_by_gear.iter_mut().zip(&other.latency_by_gear) {
            mine.merge(theirs);
        }
        self.cold_latency.merge(&other.cold_latency);
        self.pull_wait.merge(&other.pull_wait);
    }

    /// Fraction of admitted requests that waited on a cold start.
    pub fn cold_fraction(&self) -> f64 {
        if self.requests.get() == 0 {
            0.0
        } else {
            self.cold_starts.get() as f64 / self.requests.get() as f64
        }
    }

    /// Renders the fleet series in the Prometheus text exposition format;
    /// `worker_high_water` adds one gauge row per worker.
    pub fn render(&self, worker_high_water: &[u64]) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("fleet_requests_total", self.requests.get()),
            ("fleet_cold_starts_total", self.cold_starts.get()),
            ("fleet_shed_total", self.shed.get()),
            ("fleet_evictions_total", self.evictions.get()),
            ("fleet_expirations_total", self.expirations.get()),
            ("fleet_prewarm_starts_total", self.prewarm_starts.get()),
            ("fleet_replicas_started_total", self.replicas_started.get()),
            (
                "fleet_registry_egress_bytes_total",
                self.registry_egress_bytes.get(),
            ),
            (
                "fleet_registry_dedup_bytes_total",
                self.registry_dedup_bytes.get(),
            ),
            ("fleet_pull_cache_hits_total", self.pull_cache_hits.get()),
            ("fleet_prepulls_total", self.prepulls.get()),
        ] {
            out.push_str(&format!("{name} {value}\n"));
        }
        render_histogram(&mut out, "fleet_queue_delay_ms", "", &self.queue_delay);
        render_histogram(&mut out, "fleet_latency_ms", "", &self.latency);
        for (gear, h) in Gear::ALL.iter().zip(&self.latency_by_gear) {
            if h.count() > 0 {
                let labels = format!("gear=\"{}\"", gear.label());
                render_histogram(&mut out, "fleet_gear_latency_ms", &labels, h);
            }
        }
        render_histogram(&mut out, "fleet_cold_latency_ms", "", &self.cold_latency);
        render_histogram(&mut out, "fleet_pull_wait_ms", "", &self.pull_wait);
        for (worker, hw) in worker_high_water.iter().enumerate() {
            out.push_str(&format!(
                "fleet_worker_mem_high_water_bytes{{worker=\"{worker}\"}} {hw}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_fraction_handles_empty() {
        let m = FleetMetrics::default();
        assert_eq!(m.cold_fraction(), 0.0);
    }

    #[test]
    fn observe_latency_feeds_gear_and_cold_splits() {
        let mut m = FleetMetrics::default();
        m.observe_latency(Gear::Cow, 12.0, true);
        m.observe_latency(Gear::Cow, 3.0, false);
        m.observe_latency(Gear::Vanilla, 700.0, true);
        assert_eq!(m.latency.count(), 3);
        assert_eq!(m.latency_by_gear[Gear::Cow.index()].count(), 2);
        assert_eq!(m.latency_by_gear[Gear::Vanilla.index()].count(), 1);
        assert_eq!(m.cold_latency.count(), 2);
        let text = m.render(&[]);
        assert!(text.contains("fleet_gear_latency_ms_count{gear=\"cow\"} 2"));
        assert!(text.contains("fleet_gear_latency_ms_count{gear=\"vanilla\"} 1"));
        assert!(!text.contains("gear=\"lazy\""), "empty gears stay silent");
        assert!(text.contains("fleet_cold_latency_ms_count 2"));
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = FleetMetrics::default();
        a.requests.add(2);
        a.observe_latency(Gear::Eager, 5.0, false);
        let mut b = FleetMetrics::default();
        b.requests.add(3);
        b.cold_starts.add(1);
        b.observe_latency(Gear::Eager, 50.0, true);
        b.queue_delay.observe(1.0);
        a.merge(&b);
        assert_eq!(a.requests.get(), 5);
        assert_eq!(a.cold_starts.get(), 1);
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency_by_gear[Gear::Eager.index()].count(), 2);
        assert_eq!(a.cold_latency.count(), 1);
        assert_eq!(a.queue_delay.count(), 1);
    }

    #[test]
    fn render_includes_every_series() {
        let mut m = FleetMetrics::default();
        m.requests.add(10);
        m.cold_starts.add(3);
        m.queue_delay.observe(2.0);
        m.latency.observe(120.0);
        m.registry_egress_bytes.add(7);
        let text = m.render(&[512, 1024]);
        assert!(text.contains("fleet_requests_total 10"));
        assert!(text.contains("fleet_cold_starts_total 3"));
        assert!(text.contains("fleet_latency_ms_count 1"));
        assert!(text.contains("fleet_queue_delay_ms_bucket{le=\"+Inf\"} 1"));
        // Byte counters carry the `_total` suffix (unit before suffix) and
        // the shared encoder renders integral bounds without `.0`.
        assert!(text.contains("fleet_registry_egress_bytes_total 7"));
        assert!(text.contains("fleet_registry_dedup_bytes_total 0"));
        assert!(text.contains("fleet_queue_delay_ms_bucket{le=\"2.5\"} 1"));
        assert!(text.contains("fleet_latency_ms_bucket{le=\"250\"} 1"));
        assert!(text.contains("fleet_worker_mem_high_water_bytes{worker=\"0\"} 512"));
        assert!(text.contains("fleet_worker_mem_high_water_bytes{worker=\"1\"} 1024"));
        assert!((m.cold_fraction() - 0.3).abs() < 1e-9);
        // Every line parses as `name{labels} value`.
        for line in text.lines() {
            let (_, value) = line.rsplit_once(' ').expect("space-separated sample");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
        }
    }
}
