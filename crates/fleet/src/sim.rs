//! The deterministic fleet scheduler.
//!
//! [`FleetSim`] runs an arrival [`Schedule`] against N workers over the
//! simulator's virtual clock: arrivals are admitted (or shed) into
//! per-function queues, dispatched to idle replicas, and trigger cold
//! starts placed least-loaded-first under each worker's memory budget.
//! The configured [`Policy`] decides which restore gear cold starts use
//! and how long idle replicas survive — including LRU eviction under
//! memory pressure and histogram-driven predictive pre-warm.
//!
//! With the optional snapshot-registry tier ([`RegistryConfig`]), cold
//! starts additionally pull their image through the placed node's
//! pull-through cache: frames another resident image already holds ride
//! free, the rest are charged network latency plus per-byte bandwidth
//! on the virtual clock, and placement can weigh "where is this image
//! already warm" ahead of load.
//!
//! # Sharded event loop
//!
//! The simulator is partitioned into [`FleetConfig::shards`] cells.
//! Each shard owns a contiguous block of workers, the functions homed
//! to it (round-robin by registration order), their queues and arrival
//! statistics, its own event queue, noise stream, tracer, and — when
//! the tiers are configured — a forked registry pull handle and a
//! private telemetry stack. Shards never share mutable state, so a run
//! drains them on real OS threads ([`FleetConfig::threads`]) and then
//! folds their outputs — metrics, completed requests, registry
//! accounting, windowed telemetry, and spans — back into the
//! coordinator in a byte-stable order (k-way merge by dispatch time,
//! lowest shard first on ties).
//!
//! Million-invocation traces stream through [`FleetSim::run_stream`]
//! without materialising a schedule: arrivals are pulled lazily from
//! the iterator and injected epoch-by-epoch
//! ([`FleetConfig::stream_epoch`] of virtual time per wave), and the
//! per-request log can be dropped ([`FleetConfig::retain_completed`])
//! so memory stays flat while the histograms keep the distributions.
//!
//! Everything is deterministic for a fixed seed and shard count: all
//! state lives in `BTreeMap`s, each shard's event queue breaks time
//! ties FIFO with arrivals ahead of same-instant events, the fold order
//! is fixed, and threading is an execution detail — a threaded run and
//! a serial run of the same configuration are identical. `shards <= 1`
//! reproduces the unsharded scheduler bit-for-bit.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use prebake_gateway::{
    first_chunk_at, AdmissionController, AdmissionOutcome, AdmissionStats, CacheInsert,
    CacheLookup, GatewayConfig, GatewayMetrics, ResultCache,
};
use prebake_obs::{Objective, ObsConfig, ObsStack, RecorderConfig, SamplerConfig, SeriesKey};
use prebake_platform::loadgen::{Arrival, LoadError, LoadResult, Schedule};
use prebake_registry::{ImageManifest, PullMode, RegistryCost, SnapshotRegistry};
use prebake_sim::event::EventQueue;
use prebake_sim::noise::Noise;
use prebake_sim::proc::Pid;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_sim::trace::{SpanId, TraceSpan, Tracer};

use crate::metrics::FleetMetrics;
use crate::policy::{ArrivalStats, Policy};
use crate::profile::{FunctionProfile, Gear};
use crate::worker::{Replica, ReplicaState, Worker};

/// Snapshot-registry tier configuration.
///
/// `None` in [`FleetConfig::registry`] models node-local images (the
/// pre-registry fleet): cold starts pay no pull time and no egress is
/// accounted. `Some` puts every snapshot image behind a shared
/// [`SnapshotRegistry`] that nodes pull through their local caches.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Network charging model for pulls.
    pub cost: RegistryCost,
    /// How node caches satisfy pulls.
    pub mode: PullMode,
    /// Weigh placement toward the node that would fetch the fewest
    /// bytes ("schedule where the image is warm").
    pub affinity_placement: bool,
    /// Pre-pull images to the node the pre-warm engine predicts, ahead
    /// of the predicted arrival (ignored under [`PullMode::Naive`],
    /// which never caches).
    pub prepull: bool,
    /// Fraction of auto-published synthetic-manifest frames drawn from
    /// the runtime-wide shared base (see [`ImageManifest::synthetic`]).
    pub shared_fraction: f64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            cost: RegistryCost::default(),
            mode: PullMode::DedupPullThrough,
            affinity_placement: true,
            prepull: true,
            shared_fraction: 0.5,
        }
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker nodes.
    pub workers: usize,
    /// Memory budget per worker, bytes (replicas + cached images).
    pub mem_budget_bytes: u64,
    /// Concurrent cold starts one worker drives before they convoy.
    pub cold_start_concurrency: usize,
    /// Per-function queue depth beyond which arrivals are shed.
    pub queue_cap: usize,
    /// Replica ceiling per function across the fleet.
    pub max_replicas_per_function: usize,
    /// Keep-alive × start-selection policy.
    pub policy: Policy,
    /// Seed for the service/start jitter stream.
    pub seed: u64,
    /// Relative jitter applied to profiled costs (0 disables).
    pub noise_sigma: f64,
    /// Record scheduler span trees per completed invocation.
    pub span_tracing: bool,
    /// Snapshot-registry tier; `None` keeps images node-local and free.
    pub registry: Option<RegistryConfig>,
    /// Telemetry stack (windowed recorder + SLO engine + tail sampler);
    /// `None` keeps the pre-obs scalar counters only. See
    /// [`default_fleet_obs`] for the standard fleet objectives.
    pub obs: Option<ObsConfig>,
    /// Event-loop shards. Each shard owns a contiguous block of workers
    /// and the functions homed to it; clamped to the worker count.
    /// `1` (the default) reproduces the unsharded scheduler exactly.
    /// Shard counts are part of the model: different counts partition
    /// placement domains differently and produce different (each
    /// deterministic) schedules.
    pub shards: usize,
    /// Drain shards on OS threads when `shards > 1`. Purely an
    /// execution detail: threaded and serial drains of the same
    /// configuration produce identical results.
    pub threads: bool,
    /// Virtual-time width of one [`FleetSim::run_stream`] injection
    /// epoch. Only a batching granularity — results never depend on it.
    pub stream_epoch: SimDuration,
    /// Keep the per-request [`FleetRequest`] log. Disable for
    /// million-invocation runs: histograms (including the cold-only
    /// latency split) still capture the distributions while memory
    /// stays flat.
    pub retain_completed: bool,
    /// Streaming gateway frontier (admission control, TTL result cache,
    /// chunked-response TTFC accounting) ahead of the per-function
    /// queues. `None` (the default) is the pre-gateway fleet: arrivals
    /// go straight to the scheduler and every committed baseline stays
    /// byte-identical. Each shard scales the per-worker admission caps
    /// by its cell's worker count.
    pub gateway: Option<GatewayConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 4,
            mem_budget_bytes: 1 << 30,
            cold_start_concurrency: 4,
            queue_cap: 256,
            max_replicas_per_function: 16,
            policy: Policy::vanilla_baseline(SimDuration::from_secs(60)),
            seed: 1,
            noise_sigma: 0.02,
            span_tracing: false,
            registry: None,
            obs: None,
            shards: 1,
            threads: true,
            stream_epoch: SimDuration::from_secs(1),
            retain_completed: true,
            gateway: None,
        }
    }
}

/// The standard fleet telemetry shape: 60 s windows over the fleet's
/// latency bounds, a cold-start-latency SLO ("90% of requests complete
/// under 250 ms per window") and a cold-fraction SLO ("cold fraction
/// under 10%"), and tail sampling that keeps `keep_fraction` of boring
/// traces (SLO-breaching traces are always kept in full).
pub fn default_fleet_obs(keep_fraction: f64, seed: u64) -> ObsConfig {
    ObsConfig {
        recorder: RecorderConfig {
            width: SimDuration::from_secs(60),
            // Heavy-tailed traces stretch past two simulated hours, and
            // whole-run SLO evaluation needs every window retained — a
            // ring sized for "a day of 60s windows" keeps rollover a
            // production-memory concern, not a correctness hazard here.
            capacity: 1440,
            bounds: crate::metrics::LATENCY_BOUNDS_MS.to_vec(),
        },
        objectives: vec![
            Objective::latency("fleet-latency", "fleet_latency_ms", 250.0, 0.9)
                .burn_windows(1, 6, 6.0),
            Objective::ratio(
                "fleet-cold-fraction",
                "fleet_cold_starts_total",
                "fleet_requests_total",
                0.9,
            )
            .burn_windows(1, 6, 6.0),
        ],
        sampler: Some(SamplerConfig {
            keep_fraction,
            seed,
        }),
    }
}

/// Why the fleet rejected an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// An arrival names a function no profile was registered for.
    UnknownFunction(String),
    /// A streaming workload source yielded an error mid-run.
    Load(LoadError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownFunction(name) => {
                write!(f, "no profile registered for function {name:?}")
            }
            FleetError::Load(err) => write!(f, "workload stream failed: {err}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<LoadError> for FleetError {
    fn from(err: LoadError) -> FleetError {
        FleetError::Load(err)
    }
}

/// One completed invocation, as observed at the fleet gateway.
#[derive(Debug, Clone)]
pub struct FleetRequest {
    /// Admission order (shard-strided: unique fleet-wide, and exactly
    /// the admission sequence when `shards == 1`).
    pub id: u64,
    /// Function served.
    pub function: String,
    /// Worker that served it (fleet-global id).
    pub worker: usize,
    /// Arrival at the gateway.
    pub arrived: SimInstant,
    /// Dispatch to a ready replica.
    pub dispatched: SimInstant,
    /// Response completion.
    pub completed: SimInstant,
    /// Whether the request waited on a cold start.
    pub cold: bool,
}

impl FleetRequest {
    /// End-to-end latency, ms.
    pub fn latency_ms(&self) -> f64 {
        (self.completed - self.arrived).as_millis_f64()
    }

    /// Arrival → dispatch queueing delay, ms.
    pub fn queue_delay_ms(&self) -> f64 {
        (self.dispatched - self.arrived).as_millis_f64()
    }
}

#[derive(Debug)]
struct Pending {
    id: u64,
    arrived: SimInstant,
}

#[derive(Debug)]
enum Event {
    ReplicaReady {
        worker: usize,
        replica: u64,
    },
    ServeDone {
        worker: usize,
        replica: u64,
    },
    /// A gateway-admitted invocation completed: insert its result into
    /// the cache and promote the admission-queue head into the freed
    /// slot. Scheduled after the same-instant `ServeDone`, so the
    /// promoted arrival sees the replica already idle.
    GatewayDone {
        function: String,
    },
    ExpireCheck,
    Prewarm {
        function: String,
    },
    Prepull {
        function: String,
    },
}

/// Registry image id of one `(function, gear)` snapshot.
fn image_id(function: &str, gear: Gear) -> String {
    format!("{function}@{}", gear.label())
}

/// A gateway-queued arrival awaiting an admission slot.
#[derive(Debug, Clone)]
struct Deferred {
    arrived: SimInstant,
    function: String,
}

/// One shard's gateway frontier: the admission controller, result cache
/// and `gateway_*` metrics for the functions homed here. Functions
/// complete in their home cell, so admission slots released by
/// completions always belong to the shard that admitted them.
struct GatewayFrontier {
    config: GatewayConfig,
    admission: AdmissionController<Deferred>,
    cache: ResultCache<()>,
    metrics: GatewayMetrics,
}

impl GatewayFrontier {
    fn new(config: &GatewayConfig, worker_count: usize) -> GatewayFrontier {
        let workers = worker_count.max(1);
        GatewayFrontier {
            admission: AdmissionController::new(
                config.inflight_per_worker.saturating_mul(workers),
                config.queue_per_worker.saturating_mul(workers),
            ),
            cache: ResultCache::new(config.cache.clone()),
            metrics: GatewayMetrics::default(),
            config: config.clone(),
        }
    }
}

/// One cell of the sharded fleet: a contiguous worker block, the
/// functions homed here, and a private event loop. Shards share nothing
/// mutable, so they drain independently (optionally on OS threads) and
/// fold back deterministically.
struct Shard {
    /// This shard's index — the id-striding offset.
    index: u64,
    /// Total shards — the id-striding factor.
    shard_count: u64,
    /// Fleet-global id of this shard's first worker. Workers are local
    /// (`0..workers.len()`) internally; the base is added at every
    /// externally visible site (request records, telemetry labels).
    worker_base: usize,
    config: FleetConfig,
    profiles: BTreeMap<String, FunctionProfile>,
    workers: Vec<Worker>,
    queues: BTreeMap<String, VecDeque<Pending>>,
    stats: BTreeMap<String, ArrivalStats>,
    /// Pending arrivals, time-sorted, submission order on ties. Kept
    /// outside the event queue so a same-instant arrival always beats a
    /// same-instant scheduler event — the unsharded scheduler's tie
    /// order, where every arrival was enqueued before any event.
    arrivals: VecDeque<(SimInstant, String)>,
    events: EventQueue<Event>,
    /// Forked registry pull handle, leased at run start and absorbed
    /// back at fold (late fork so publishes land before the fork).
    registry: Option<SnapshotRegistry>,
    /// Private telemetry stack, leased at run start, absorbed at fold.
    obs: Option<ObsStack>,
    now: SimInstant,
    noise: Noise,
    metrics: FleetMetrics,
    completed: Vec<FleetRequest>,
    tracer: Tracer,
    /// Streaming-gateway frontier; `None` routes arrivals straight to
    /// the per-function queues (the pre-gateway scheduler, bit-exact).
    gateway: Option<GatewayFrontier>,
    next_request: u64,
    next_replica: u64,
    events_processed: u64,
}

impl Shard {
    fn new(
        index: usize,
        shard_count: usize,
        worker_base: usize,
        worker_count: usize,
        config: &FleetConfig,
    ) -> Shard {
        let mut tracer = Tracer::new();
        tracer.set_enabled(config.span_tracing);
        Shard {
            index: index as u64,
            shard_count: shard_count as u64,
            worker_base,
            // Offsetting the seed per shard keeps the jitter streams
            // independent; shard 0 draws the exact unsharded stream.
            noise: Noise::new(config.seed + index as u64, config.noise_sigma),
            workers: (0..worker_count)
                .map(|id| Worker::new(id, config.mem_budget_bytes))
                .collect(),
            config: config.clone(),
            profiles: BTreeMap::new(),
            queues: BTreeMap::new(),
            stats: BTreeMap::new(),
            arrivals: VecDeque::new(),
            events: EventQueue::new(),
            registry: None,
            obs: None,
            now: SimInstant::EPOCH,
            metrics: FleetMetrics::default(),
            completed: Vec::new(),
            tracer,
            gateway: config
                .gateway
                .as_ref()
                .map(|gc| GatewayFrontier::new(gc, worker_count)),
            next_request: 1,
            next_replica: 1,
            events_processed: 0,
        }
    }

    fn register(&mut self, profile: FunctionProfile) {
        let name = profile.name().to_owned();
        self.queues.entry(name.clone()).or_default();
        self.stats.entry(name.clone()).or_default();
        self.profiles.insert(name, profile);
    }

    /// Queues one arrival, keeping the pending list time-sorted with
    /// submission order on ties.
    fn inject(&mut self, at: SimInstant, function: &str) {
        let at = at.max(self.now);
        let idx = self.arrivals.partition_point(|&(t, _)| t <= at);
        self.arrivals.insert(idx, (at, function.to_owned()));
    }

    /// Fleet-global id of a local worker index.
    fn global_worker(&self, local: usize) -> usize {
        self.worker_base + local
    }

    /// Drains arrivals and events in virtual-time order until both are
    /// empty, or until the next item would land at or past `bound`.
    /// Same-instant ties: arrival before event, then FIFO.
    fn drain(&mut self, bound: Option<SimInstant>) {
        loop {
            let next_arrival = self.arrivals.front().map(|&(t, _)| t);
            let next_event = self.events.peek_time();
            let (t, is_arrival) = match (next_arrival, next_event) {
                (Some(a), Some(e)) if a <= e => (a, true),
                (Some(_), Some(e)) => (e, false),
                (Some(a), None) => (a, true),
                (None, Some(e)) => (e, false),
                (None, None) => return,
            };
            if bound.is_some_and(|b| t >= b) {
                return;
            }
            self.now = self.now.max(t);
            self.events_processed += 1;
            if is_arrival {
                let (_, function) = self.arrivals.pop_front().expect("peeked non-empty");
                self.on_arrival(&function);
            } else {
                let (_, event) = self.events.pop().expect("peeked non-empty");
                self.handle(event);
            }
        }
    }

    /// Window-records one counter increment when the obs stack is on.
    fn obs_inc(&mut self, at: SimInstant, key: SeriesKey, n: u64) {
        if let Some(obs) = self.obs.as_mut() {
            obs.recorder.inc(at, key, n);
        }
    }

    /// Window-records one histogram observation when the obs stack is
    /// on, optionally linked to a retained trace as a bucket exemplar.
    fn obs_observe(&mut self, at: SimInstant, key: SeriesKey, value_ms: f64, trace: Option<u64>) {
        if let Some(obs) = self.obs.as_mut() {
            obs.recorder.observe_exemplar(at, key, value_ms, trace);
        }
    }

    /// Live replicas (any state) of `function` within this shard —
    /// which is fleet-wide for homed functions, since every replica of
    /// a function lives in its home cell.
    fn replica_count(&self, function: &str) -> usize {
        self.workers.iter().map(|w| w.replicas_of(function)).sum()
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::ReplicaReady { worker, replica } => self.on_ready(worker, replica),
            Event::ServeDone { worker, replica } => self.on_serve_done(worker, replica),
            Event::GatewayDone { function } => self.on_gateway_done(&function),
            Event::ExpireCheck => self.on_expire_check(),
            Event::Prewarm { function } => self.on_prewarm(&function),
            Event::Prepull { function } => self.on_prepull(&function),
        }
    }

    fn on_arrival(&mut self, function: &str) {
        self.stats
            .get_mut(function)
            .expect("registered")
            .observe(self.now);
        if self.gateway.is_some() {
            self.gateway_arrival(function);
        } else if !self.backend_arrival(function, self.now) {
            // Pre-gateway shed accounting: the scheduler queue cap is the
            // only admission boundary.
            self.metrics.shed.inc();
            let (now, key) = (
                self.now,
                SeriesKey::new("fleet_shed_total").tenant(function),
            );
            self.obs_inc(now, key, 1);
        }
    }

    /// Admits one arrival into `function`'s scheduler queue. Returns
    /// `false` when the queue cap refuses it (the caller accounts the
    /// shed — fleet-side without a gateway, reclassified gateway-side
    /// with one).
    fn backend_arrival(&mut self, function: &str, arrived: SimInstant) -> bool {
        let queue = self.queues.get_mut(function).expect("registered");
        if queue.len() >= self.config.queue_cap {
            return false;
        }
        // Stride ids by shard so they are unique fleet-wide; one shard
        // degenerates to the sequential admission order.
        let id = (self.next_request - 1) * self.shard_count + self.index + 1;
        self.next_request += 1;
        self.metrics.requests.inc();
        let (now, key) = (
            self.now,
            SeriesKey::new("fleet_requests_total").tenant(function),
        );
        self.obs_inc(now, key, 1);
        let queue = self.queues.get_mut(function).expect("registered");
        queue.push_back(Pending { id, arrived });
        self.dispatch(function);
        self.scale_up(function);
        true
    }

    /// The gateway frontier: result cache, then bounded admission, then
    /// the scheduler. A hit is answered at the edge without touching the
    /// backend (no fleet request id budget beyond the trace id, no
    /// scheduler queue, no replica).
    fn gateway_arrival(&mut self, function: &str) {
        enum Decision {
            Cached { completed: SimInstant },
            Admit { arrived: SimInstant },
            Queued,
            Shed,
        }
        let now = self.now;
        let (decision, depth, cache_event) = {
            let gw = self.gateway.as_mut().expect("gateway on");
            gw.metrics.arrivals.inc();
            let depth = gw.admission.queue_depth();
            gw.metrics.queue_depth.observe(depth as f64);
            // Fleet invocations carry no request body, so idempotency is
            // per function and the function name is the whole cache key.
            let mut cache_event = None;
            match gw.cache.lookup(function, function, now) {
                CacheLookup::Hit { .. } => {
                    gw.metrics.cache_hits.inc();
                    let serve = SimDuration::from_millis_f64(gw.config.cache.serve_ms.max(0.0));
                    let completed = now + serve;
                    gw.metrics.observe_cached((completed - now).as_millis_f64());
                    gw.metrics.chunks.add(gw.config.stream.chunks.max(1) as u64);
                    (Decision::Cached { completed }, depth, Some("hits"))
                }
                lookup => {
                    match lookup {
                        CacheLookup::Stale { .. } => {
                            gw.metrics.cache_stale.inc();
                            cache_event = Some("stale");
                        }
                        CacheLookup::Miss => {
                            gw.metrics.cache_misses.inc();
                            cache_event = Some("misses");
                        }
                        CacheLookup::Bypass | CacheLookup::Hit { .. } => {}
                    }
                    let deferred = Deferred {
                        arrived: now,
                        function: function.to_owned(),
                    };
                    let decision = match gw.admission.offer(deferred) {
                        AdmissionOutcome::Admitted(d) => Decision::Admit { arrived: d.arrived },
                        AdmissionOutcome::Queued { .. } => Decision::Queued,
                        AdmissionOutcome::Shed(_) => {
                            gw.metrics.shed_backpressure.inc();
                            Decision::Shed
                        }
                    };
                    (decision, depth, cache_event)
                }
            }
        };
        self.obs_inc(
            now,
            SeriesKey::new("gateway_arrivals_total").tenant(function),
            1,
        );
        self.obs_observe(
            now,
            SeriesKey::new("gateway_queue_depth"),
            depth as f64,
            None,
        );
        if let Some(kind) = cache_event {
            let key = SeriesKey::new(match kind {
                "hits" => "gateway_cache_hits_total",
                "stale" => "gateway_cache_stale_total",
                _ => "gateway_cache_misses_total",
            })
            .tenant(function);
            self.obs_inc(now, key, 1);
        }
        match decision {
            Decision::Cached { completed } => {
                self.obs_observe(
                    completed,
                    SeriesKey::new("gateway_cached_serve_ms").tenant(function),
                    (completed - now).as_millis_f64(),
                    None,
                );
                self.emit_cached_span(function, now, completed);
            }
            Decision::Admit { arrived } => self.gateway_admit(function, arrived, false),
            Decision::Queued => {}
            Decision::Shed => {
                self.obs_inc(
                    now,
                    SeriesKey::new("gateway_shed_total").tenant(function),
                    1,
                );
            }
        }
    }

    /// Pushes a gateway-admitted arrival at the backend; a queue-cap
    /// refusal reclassifies the admit as a downstream shed and, if the
    /// arrival had been promoted from the admission queue, retries with
    /// the next queued arrival (the aborted promotion freed its slot).
    fn gateway_admit(&mut self, function: &str, arrived: SimInstant, promoted: bool) {
        let mut next = Some((function.to_owned(), arrived, promoted));
        while let Some((function, arrived, promoted)) = next.take() {
            if self.backend_arrival(&function, arrived) {
                let gw = self.gateway.as_mut().expect("gateway on");
                gw.metrics.admitted.inc();
                if promoted {
                    gw.metrics.deferred.inc();
                }
                return;
            }
            let now = self.now;
            let gw = self.gateway.as_mut().expect("gateway on");
            gw.admission.abort();
            gw.metrics.shed_downstream.inc();
            next = gw
                .admission
                .promote()
                .map(|d| (d.function, d.arrived, true));
            self.obs_inc(
                now,
                SeriesKey::new("gateway_shed_total").tenant(&function),
                1,
            );
        }
    }

    /// A gateway-admitted invocation of `function` completed: cache its
    /// result and promote the admission-queue head into the freed slot.
    fn on_gateway_done(&mut self, function: &str) {
        let now = self.now;
        let promoted = {
            let gw = self.gateway.as_mut().expect("gateway on");
            match gw.cache.insert(function, function, (), now) {
                CacheInsert::Stored { evicted } => {
                    gw.metrics.cache_insertions.inc();
                    if evicted {
                        gw.metrics.cache_evictions.inc();
                    }
                }
                CacheInsert::Bypass => {}
            }
            gw.admission.release()
        };
        if let Some(d) = promoted {
            self.gateway_admit(&d.function, d.arrived, true);
        }
    }

    /// Emits the one-span tree of a cache hit served at the edge (the
    /// tail sampler treats it like any other non-breaching invocation).
    /// Consumes a strided request id either way so the id sequence does
    /// not depend on tracing configuration.
    fn emit_cached_span(&mut self, function: &str, arrived: SimInstant, completed: SimInstant) {
        let id = (self.next_request - 1) * self.shard_count + self.index + 1;
        self.next_request += 1;
        if !self.tracer.enabled() {
            return;
        }
        if let Some(obs) = self.obs.as_mut() {
            if !obs.keep_trace(id, false, 1) {
                return;
            }
        }
        // The frontier is not a worker; pid 0 marks gateway-side spans.
        let pid = Pid(0);
        let root = self.tracer.begin("gateway_cached", pid, arrived);
        self.tracer.attr(root, "function", function.to_owned());
        self.tracer.attr(root, "id", id.to_string());
        self.tracer.end(root, completed);
    }

    fn on_ready(&mut self, worker: usize, replica: u64) {
        let Some(r) = self.workers[worker].replicas.get_mut(&replica) else {
            return;
        };
        r.state = ReplicaState::Idle { since: self.now };
        r.last_used = self.now;
        let function = r.function.clone();
        self.dispatch(&function);
        self.schedule_expiry(&function);
    }

    fn on_serve_done(&mut self, worker: usize, replica: u64) {
        let Some(r) = self.workers[worker].replicas.get_mut(&replica) else {
            return;
        };
        r.state = ReplicaState::Idle { since: self.now };
        r.last_used = self.now;
        let function = r.function.clone();
        self.dispatch(&function);
        // A placement deferred for lack of memory retries when load moves.
        self.scale_up(&function);
        self.schedule_expiry(&function);
    }

    /// Schedules the expire check that may reap an idle replica of
    /// `function` at the end of its current TTL.
    fn schedule_expiry(&mut self, function: &str) {
        let ttl = self.stats[function].keep_alive_for(&self.config.policy.keep_alive);
        self.events.schedule(self.now + ttl, Event::ExpireCheck);
    }

    /// Serves queued requests of `function` on idle ready replicas,
    /// lowest (worker, replica) id first.
    fn dispatch(&mut self, function: &str) {
        loop {
            if self
                .queues
                .get(function)
                .is_none_or(std::collections::VecDeque::is_empty)
            {
                return;
            }
            let mut found = None;
            'workers: for w in &self.workers {
                for (&rid, r) in &w.replicas {
                    if r.function == function && matches!(r.state, ReplicaState::Idle { .. }) {
                        found = Some((w.id, rid));
                        break 'workers;
                    }
                }
            }
            let Some((wid, rid)) = found else { return };
            let pending = self
                .queues
                .get_mut(function)
                .expect("registered")
                .pop_front()
                .expect("non-empty");
            self.serve(wid, rid, pending);
        }
    }

    fn serve(&mut self, worker: usize, replica: u64, pending: Pending) {
        let global_worker = self.global_worker(worker);
        let profile = &self.profiles[&self.workers[worker].replicas[&replica].function.clone()];
        let r = self.workers[worker]
            .replicas
            .get_mut(&replica)
            .expect("exists");
        let cost = profile.cost(r.gear).expect("gear was profiled");
        let base_ms = if r.served == 0 {
            cost.first_service_ms
        } else {
            cost.warm_service_ms
        };
        let service = self
            .noise
            .jitter(SimDuration::from_millis_f64(base_ms))
            .max(SimDuration::from_nanos(1));
        let done = self.now + service;
        r.served += 1;
        r.state = ReplicaState::Busy { until: done };
        r.last_used = done;
        let cold = r.started_at >= pending.arrived;
        let record = FleetRequest {
            id: pending.id,
            function: r.function.clone(),
            worker: global_worker,
            arrived: pending.arrived,
            dispatched: self.now,
            completed: done,
            cold,
        };
        let (start_began, ready_at, pull_wait, gear) =
            (r.start_began, r.ready_at, r.pull_wait, r.gear);

        self.metrics.queue_delay.observe(record.queue_delay_ms());
        self.metrics
            .observe_latency(gear, record.latency_ms(), cold);
        if cold {
            self.metrics.cold_starts.inc();
        }
        // With the gateway on, the response streams as chunks across the
        // service window: charge the first chunk analytically (no extra
        // events) and hand the completion back to the admission ledger.
        let first_chunk = self
            .gateway
            .as_ref()
            .map(|gw| first_chunk_at(record.dispatched, done, gw.config.stream.chunks));
        let kept = self.emit_spans(&record, start_began, ready_at, pull_wait, first_chunk);
        let at = record.completed;
        if let Some(fc) = first_chunk {
            let ttfc_ms = (fc - record.arrived).as_millis_f64();
            {
                let gw = self.gateway.as_mut().expect("gateway on");
                gw.metrics.observe_ttfc(gear.label(), ttfc_ms, cold);
                gw.metrics.chunks.add(gw.config.stream.chunks.max(1) as u64);
            }
            self.obs_observe(
                fc,
                SeriesKey::new("gateway_ttfc_ms")
                    .tenant(&record.function)
                    .gear(gear.label()),
                ttfc_ms,
                kept,
            );
            self.events.schedule(
                done,
                Event::GatewayDone {
                    function: record.function.clone(),
                },
            );
        }
        self.obs_observe(
            at,
            SeriesKey::new("fleet_queue_delay_ms").tenant(&record.function),
            record.queue_delay_ms(),
            None,
        );
        // The latency exemplar links the bucket to the retained trace,
        // when tail sampling kept this invocation's tree.
        self.obs_observe(
            at,
            SeriesKey::new("fleet_latency_ms")
                .tenant(&record.function)
                .node(record.worker as u32),
            record.latency_ms(),
            kept,
        );
        if cold {
            let key = SeriesKey::new("fleet_cold_starts_total")
                .tenant(&record.function)
                .node(record.worker as u32)
                .gear(gear.label());
            self.obs_inc(at, key, 1);
        }
        if self.config.retain_completed {
            self.completed.push(record);
        }
        self.events
            .schedule(done, Event::ServeDone { worker, replica });
    }

    /// Emits the invocation's span tree retroactively (the tracer is
    /// clock-agnostic, so recorded instants replay exactly). Building the
    /// whole tree at completion keeps concurrent invocations from
    /// interleaving on the tracer's span stack.
    ///
    /// With an obs stack configured the tail sampler decides here,
    /// post-completion, whether the tree is recorded at all: trees whose
    /// latency breached a configured SLO threshold are always kept, the
    /// rest only with the sampler's seeded probability. Returns the
    /// trace id when the tree was kept, for exemplar linking.
    fn emit_spans(
        &mut self,
        record: &FleetRequest,
        start_began: SimInstant,
        ready_at: SimInstant,
        pull_wait: SimDuration,
        first_chunk: Option<SimInstant>,
    ) -> Option<u64> {
        if !self.tracer.enabled() {
            return None;
        }
        if let Some(obs) = self.obs.as_mut() {
            let breach = obs.latency_breach("fleet_latency_ms", record.latency_ms());
            let tree_spans = 5
                + u64::from(record.cold && pull_wait > SimDuration::ZERO)
                + u64::from(first_chunk.is_some());
            if !obs.keep_trace(record.id, breach, tree_spans) {
                return None;
            }
        }
        let pid = Pid(record.worker as u32 + 1);
        let root = self.tracer.begin("sched_invocation", pid, record.arrived);
        self.tracer.attr(root, "function", record.function.clone());
        self.tracer.attr(root, "id", record.id.to_string());
        let enqueue = self.tracer.begin("sched_enqueue", pid, record.arrived);
        self.tracer.end(enqueue, record.dispatched);
        let place = self.tracer.begin("sched_place", pid, record.dispatched);
        self.tracer.attr(place, "worker", record.worker.to_string());
        self.tracer.end(place, record.dispatched);
        if record.cold {
            let start = self.tracer.begin("sched_start", pid, start_began);
            if pull_wait > SimDuration::ZERO {
                // The registry fetch serializes ahead of the restore.
                let pull = self.tracer.begin("registry_pull", pid, start_began);
                self.tracer.end(pull, start_began + pull_wait);
            }
            self.tracer.end(start, ready_at);
        } else {
            let reuse = self.tracer.begin("sched_reuse", pid, record.dispatched);
            self.tracer.end(reuse, record.dispatched);
        }
        let serve = self.tracer.begin("sched_serve", pid, record.dispatched);
        self.tracer.end(serve, record.completed);
        if let Some(fc) = first_chunk {
            // First chunk → completion: the client is already reading
            // while the replica finishes.
            let stream = self.tracer.begin("gateway_stream", pid, fc);
            self.tracer.end(stream, record.completed);
        }
        self.tracer.end(root, record.completed);
        Some(record.id)
    }

    /// Starts replicas to cover the queue deficit, bounded by the
    /// per-function ceiling and worker memory.
    fn scale_up(&mut self, function: &str) {
        let queued = self.queues.get(function).map_or(0, VecDeque::len);
        if queued == 0 {
            return;
        }
        let mut live = 0;
        let mut pipeline = 0; // starting or idle: capacity the queue will get
        for w in &self.workers {
            for r in w.replicas.values() {
                if r.function == function {
                    live += 1;
                    if !matches!(r.state, ReplicaState::Busy { .. }) {
                        pipeline += 1;
                    }
                }
            }
        }
        let deficit = queued.saturating_sub(pipeline);
        let headroom = self.config.max_replicas_per_function.saturating_sub(live);
        for _ in 0..deficit.min(headroom) {
            if !self.start_replica(function, false) {
                break; // no memory anywhere: wait for expiry/eviction
            }
        }
    }

    /// Picks a gear and a worker, then starts a replica. Returns `false`
    /// when no worker can fit it (even after pressure eviction).
    fn start_replica(&mut self, function: &str, prewarm: bool) -> bool {
        let profile = &self.profiles[function];
        let mut gear = self.config.policy.start.gear_for(profile);
        if profile.cost(gear).is_none() {
            // The fixed gear was never profiled for this function: fall
            // back to the best measured one rather than refusing service.
            gear = profile.best_gear();
        }
        // A gear whose footprint exceeds even an empty worker would leave
        // the function unservable; fall back to the fastest gear that
        // fits the budget at all.
        let budget = self.config.mem_budget_bytes;
        let feasible = |g| {
            profile
                .cost(g)
                .is_some_and(|c| c.replica_mem_bytes + c.image_bytes <= budget)
        };
        if !feasible(gear) {
            let Some(fallback) = profile.gears().filter(|&g| feasible(g)).min_by(|&a, &b| {
                let (ca, cb) = (profile.cost(a), profile.cost(b));
                ca.expect("measured")
                    .cold_to_first_response_ms()
                    .partial_cmp(&cb.expect("measured").cold_to_first_response_ms())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            }) else {
                return false; // nothing fits: stays queued until config changes
            };
            gear = fallback;
        }
        let cost = *profile.cost(gear).expect("best gear is measured");
        let Some(worker) = self.place(function, gear, cost.replica_mem_bytes, cost.image_bytes)
        else {
            return false;
        };
        let (slot, start_at) =
            self.workers[worker].reserve_slot(self.now, self.config.cold_start_concurrency);
        let startup = self
            .noise
            .jitter(SimDuration::from_millis_f64(cost.cold_ms))
            .max(SimDuration::from_nanos(1));
        // The image must land on the node before the restore can begin:
        // the pull serializes ahead of the gear's startup cost.
        let (pull_wait, pull_bytes) =
            match self.pull_image(worker, function, gear, cost.image_bytes) {
                Some((wait, bytes)) => {
                    self.metrics.pull_wait.observe(wait.as_millis_f64());
                    let (at, key) = (
                        self.now,
                        SeriesKey::new("fleet_pull_wait_ms")
                            .tenant(function)
                            .node(self.global_worker(worker) as u32),
                    );
                    self.obs_observe(at, key, wait.as_millis_f64(), None);
                    (wait, bytes)
                }
                None => (SimDuration::ZERO, 0),
            };
        let ready_at = start_at + pull_wait + startup;
        let rid = self.next_replica;
        self.next_replica += 1;
        self.workers[worker].add_replica(
            rid,
            Replica {
                function: function.to_owned(),
                gear,
                state: ReplicaState::Starting { ready_at },
                mem_bytes: cost.replica_mem_bytes,
                started_at: self.now,
                start_began: start_at,
                ready_at,
                last_used: ready_at,
                served: 0,
                pull_wait,
                pull_bytes,
            },
            cost.image_bytes,
        );
        self.workers[worker].occupy_slot(slot, ready_at);
        self.metrics.replicas_started.inc();
        if prewarm {
            self.metrics.prewarm_starts.inc();
        }
        let at = self.now;
        let key = SeriesKey::new("fleet_replicas_started_total")
            .tenant(function)
            .node(self.global_worker(worker) as u32)
            .gear(gear.label());
        self.obs_inc(at, key, 1);
        if prewarm {
            let key = SeriesKey::new("fleet_prewarm_starts_total").tenant(function);
            self.obs_inc(at, key, 1);
        }
        self.events.schedule(
            ready_at,
            Event::ReplicaReady {
                worker,
                replica: rid,
            },
        );
        true
    }

    /// Pulls the `(function, gear)` image through `worker`'s node cache,
    /// charging the transfer and the fleet egress/dedup counters.
    /// Returns `(wait, bytes fetched)`, or `None` without a registry
    /// tier or for image-less gears.
    fn pull_image(
        &mut self,
        worker: usize,
        function: &str,
        gear: Gear,
        image_bytes: u64,
    ) -> Option<(SimDuration, u64)> {
        if image_bytes == 0 {
            return None;
        }
        let (Some(reg), Some(rc)) = (self.registry.as_mut(), self.config.registry.as_ref()) else {
            return None;
        };
        let id = image_id(function, gear);
        let receipt = reg
            .pull(&id, &mut self.workers[worker].cache, rc.mode)
            .expect("image published at registration");
        self.metrics
            .registry_egress_bytes
            .add(receipt.stats.bytes_fetched);
        self.metrics
            .registry_dedup_bytes
            .add(receipt.stats.bytes_deduped);
        if receipt.stats.cache_hit {
            self.metrics.pull_cache_hits.inc();
        }
        let at = self.now;
        let node = self.global_worker(worker) as u32;
        if receipt.stats.bytes_fetched > 0 {
            let key = SeriesKey::new("fleet_registry_egress_bytes_total")
                .tenant(function)
                .node(node);
            self.obs_inc(at, key, receipt.stats.bytes_fetched);
        }
        if receipt.stats.bytes_deduped > 0 {
            let key = SeriesKey::new("fleet_registry_dedup_bytes_total")
                .tenant(function)
                .node(node);
            self.obs_inc(at, key, receipt.stats.bytes_deduped);
        }
        if receipt.stats.cache_hit {
            let key = SeriesKey::new("fleet_pull_cache_hits_total")
                .tenant(function)
                .node(node);
            self.obs_inc(at, key, 1);
        }
        Some((receipt.wait, receipt.stats.bytes_fetched))
    }

    /// Chooses the worker for a new replica: among this cell's workers
    /// with memory headroom, the least loaded (fewest replicas, then
    /// least memory, then lowest id). With the registry tier's affinity
    /// placement the primary key becomes the bytes the node would still
    /// have to pull — "schedule where the image is warm". Under an
    /// LRU-pressure policy a full cell may evict idle replicas — oldest
    /// first, lowest worker id first — to make room.
    fn place(
        &mut self,
        function: &str,
        gear: Gear,
        replica_mem: u64,
        image_bytes: u64,
    ) -> Option<usize> {
        let missing = |w: &Worker| -> u64 {
            match (&self.registry, &self.config.registry) {
                (Some(reg), Some(rc)) if rc.affinity_placement && image_bytes > 0 => reg
                    .manifest(&image_id(function, gear))
                    .map_or(image_bytes, |m| w.cache.missing_bytes(m, rc.mode)),
                _ => 0,
            }
        };
        let fit = self
            .workers
            .iter()
            .filter(|w| w.fits(w.charge_for(function, gear, replica_mem, image_bytes)))
            .map(|w| (missing(w), w.replicas.len(), w.mem_in_use(), w.id))
            .min()
            .map(|(_, _, _, id)| id);
        if fit.is_some() {
            return fit;
        }
        if !self.config.policy.keep_alive.evicts_under_pressure() {
            return None;
        }
        for wid in 0..self.workers.len() {
            let Some(victims) =
                self.workers[wid].pressure_victims(function, gear, replica_mem, image_bytes)
            else {
                continue; // even a full idle purge wouldn't fit
            };
            for rid in victims {
                let victim = self.workers[wid]
                    .remove_replica(rid)
                    .expect("victim exists");
                self.metrics.evictions.inc();
                let (at, key) = (
                    self.now,
                    SeriesKey::new("fleet_evictions_total")
                        .tenant(&victim.function)
                        .node(self.global_worker(wid) as u32),
                );
                self.obs_inc(at, key, 1);
            }
            return Some(wid);
        }
        None
    }

    /// Reaps idle replicas past their policy TTL; under a pre-warming
    /// policy, a function reaped to zero schedules a predictive start
    /// ahead of its predicted next arrival.
    fn on_expire_check(&mut self) {
        let mut reaped_functions = Vec::new();
        let mut next_expiry: Option<SimInstant> = None;
        for wid in 0..self.workers.len() {
            let victims: Vec<u64> = {
                let w = &self.workers[wid];
                w.replicas
                    .iter()
                    .filter(|(_, r)| {
                        matches!(r.state, ReplicaState::Idle { .. })
                            && self.now.saturating_duration_since(r.last_used)
                                >= self.stats[&r.function]
                                    .keep_alive_for(&self.config.policy.keep_alive)
                    })
                    .map(|(&id, _)| id)
                    .collect()
            };
            for rid in victims {
                let replica = self.workers[wid].remove_replica(rid).expect("exists");
                self.metrics.expirations.inc();
                let (at, key) = (
                    self.now,
                    SeriesKey::new("fleet_expirations_total")
                        .tenant(&replica.function)
                        .node(self.global_worker(wid) as u32),
                );
                self.obs_inc(at, key, 1);
                reaped_functions.push(replica.function);
            }
            // Re-arm the sweep for survivors whose TTL may have grown.
            for r in self.workers[wid].replicas.values() {
                if matches!(r.state, ReplicaState::Idle { .. }) {
                    let ttl =
                        self.stats[&r.function].keep_alive_for(&self.config.policy.keep_alive);
                    let expiry = r.last_used + ttl;
                    if expiry > self.now {
                        next_expiry =
                            Some(next_expiry.map_or(expiry, |e: SimInstant| e.min(expiry)));
                    }
                }
            }
        }
        if let Some(t) = next_expiry {
            self.events.schedule(t, Event::ExpireCheck);
        }
        // Reaping freed memory: retry functions whose placements had been
        // deferred for lack of it.
        let waiting: Vec<String> = self
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(f, _)| f.clone())
            .collect();
        for function in waiting {
            self.dispatch(&function);
            self.scale_up(&function);
        }
        if !self.config.policy.keep_alive.prewarms() {
            return;
        }
        reaped_functions.sort();
        reaped_functions.dedup();
        for function in reaped_functions {
            if self.replica_count(&function) > 0 {
                continue;
            }
            let Some(predicted) = self.stats[&function].predicted_next_arrival() else {
                continue;
            };
            let profile = &self.profiles[&function];
            let gear = {
                let g = self.config.policy.start.gear_for(profile);
                if profile.cost(g).is_some() {
                    g
                } else {
                    profile.best_gear()
                }
            };
            let cost = *profile.cost(gear).expect("measured");
            // Fire early enough that the replica is ready at (or just
            // before) the predicted arrival: 2x the full cold-path time
            // — restore plus, worst case, pulling the whole image from
            // the registry — absorbs start jitter and slot queueing.
            let pull_ns = match (&self.registry, &self.config.registry) {
                (Some(reg), Some(_)) if cost.image_bytes > 0 => reg
                    .manifest(&image_id(&function, gear))
                    .map_or(0, |m| reg.cost().pull_time(m.total_bytes()).as_nanos()),
                _ => 0,
            };
            let cold_ns = SimDuration::from_millis_f64(cost.cold_ms).as_nanos();
            let fire_at = SimInstant::from_nanos(
                predicted
                    .as_nanos()
                    .saturating_sub((cold_ns + pull_ns).saturating_mul(2)),
            );
            if fire_at <= self.now {
                continue; // prediction already in the past: stay at zero
            }
            // The pre-pull shares the prewarm's fire time; FIFO ordering
            // lands the image on the predicted node first, so the start
            // that follows hits the node cache.
            if self.prepull_enabled() && cost.image_bytes > 0 {
                self.events.schedule(
                    fire_at,
                    Event::Prepull {
                        function: function.clone(),
                    },
                );
            }
            self.events.schedule(
                fire_at,
                Event::Prewarm {
                    function: function.clone(),
                },
            );
        }
    }

    /// Whether the registry tier pre-pulls images for predicted starts.
    fn prepull_enabled(&self) -> bool {
        self.config
            .registry
            .as_ref()
            .is_some_and(|rc| rc.prepull && rc.mode != PullMode::Naive)
    }

    /// Pushes a function's image to the node affinity placement would
    /// pick, ahead of the predicted arrival, so the start that follows
    /// hits the node cache instead of the wire. No memory is reserved —
    /// only the node's pull-through cache is populated.
    fn on_prepull(&mut self, function: &str) {
        if self.replica_count(function) > 0 {
            return; // a live replica means the image already landed
        }
        let profile = &self.profiles[function];
        let gear = {
            let g = self.config.policy.start.gear_for(profile);
            if profile.cost(g).is_some() {
                g
            } else {
                profile.best_gear()
            }
        };
        let image_bytes = profile.cost(gear).expect("measured").image_bytes;
        if image_bytes == 0 || !self.prepull_enabled() {
            return;
        }
        let mode = self.config.registry.as_ref().expect("prepull enabled").mode;
        let id = image_id(function, gear);
        let target = {
            let manifest = self
                .registry
                .as_ref()
                .expect("prepull enabled")
                .manifest(&id);
            self.workers
                .iter()
                .map(|w| {
                    let missing = manifest.map_or(image_bytes, |m| w.cache.missing_bytes(m, mode));
                    (missing, w.replicas.len(), w.mem_in_use(), w.id)
                })
                .min()
                .map(|(_, _, _, id)| id)
                .expect("at least one worker")
        };
        if self
            .pull_image(target, function, gear, image_bytes)
            .is_some()
        {
            self.metrics.prepulls.inc();
        }
    }

    /// Fires a predictive start if the function is still scaled to zero.
    fn on_prewarm(&mut self, function: &str) {
        if self.replica_count(function) > 0 {
            return;
        }
        if self.start_replica(function, true) {
            self.schedule_expiry(function);
        }
    }
}

/// The fleet scheduler: a coordinator over one or more event-loop
/// shards (see the module docs for the sharding model).
pub struct FleetSim {
    config: FleetConfig,
    /// Every registered profile — the validation surface; shards hold
    /// the working copies of the functions homed to them.
    profiles: BTreeMap<String, FunctionProfile>,
    /// Function → owning shard, round-robin by registration order.
    home: BTreeMap<String, usize>,
    registered: usize,
    shards: Vec<Shard>,
    registry: Option<SnapshotRegistry>,
    obs: Option<ObsStack>,
    now: SimInstant,
    metrics: FleetMetrics,
    /// Folded `gateway_*` metrics; `Some` iff the gateway frontier is
    /// configured.
    gateway_metrics: Option<GatewayMetrics>,
    completed: Vec<FleetRequest>,
    spans: Vec<TraceSpan>,
    next_span_id: u64,
    events_processed: u64,
}

impl fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetSim")
            .field("now", &self.now)
            .field("shards", &self.shards.len())
            .field(
                "workers",
                &self.shards.iter().map(|s| s.workers.len()).sum::<usize>(),
            )
            .field("functions", &self.profiles.len())
            .field("completed", &self.completed.len())
            .finish()
    }
}

impl FleetSim {
    /// Creates an empty fleet. The shard count is clamped to the worker
    /// count; each shard owns a contiguous block of workers.
    pub fn new(config: FleetConfig) -> FleetSim {
        let worker_count = config.workers.max(1);
        let shard_count = config.shards.max(1).min(worker_count);
        let shards = (0..shard_count)
            .map(|i| {
                let base = i * worker_count / shard_count;
                let end = (i + 1) * worker_count / shard_count;
                Shard::new(i, shard_count, base, end - base, &config)
            })
            .collect();
        FleetSim {
            registry: config
                .registry
                .as_ref()
                .map(|rc| SnapshotRegistry::new(rc.cost)),
            obs: config.obs.clone().map(ObsStack::new),
            gateway_metrics: config.gateway.as_ref().map(|_| GatewayMetrics::default()),
            shards,
            config,
            profiles: BTreeMap::new(),
            home: BTreeMap::new(),
            registered: 0,
            now: SimInstant::EPOCH,
            metrics: FleetMetrics::default(),
            completed: Vec::new(),
            spans: Vec::new(),
            next_span_id: 0,
            events_processed: 0,
        }
    }

    /// Registers a function's start-cost profile, making it routable.
    /// The function is homed to a shard round-robin by registration
    /// order; all of its replicas will live in that cell.
    ///
    /// With a registry tier configured, every gear with an image is
    /// auto-published as a synthetic manifest shaped by
    /// [`RegistryConfig::shared_fraction`]; [`FleetSim::publish_manifest`]
    /// replaces one with a real (dump-derived) manifest afterwards.
    pub fn register(&mut self, profile: FunctionProfile) {
        let name = profile.name().to_owned();
        if let (Some(reg), Some(rc)) = (self.registry.as_mut(), self.config.registry.as_ref()) {
            for gear in profile.gears() {
                let image_bytes = profile.cost(gear).expect("listed gear").image_bytes;
                if image_bytes == 0 {
                    continue;
                }
                let id = image_id(&name, gear);
                if reg.manifest(&id).is_none() {
                    reg.publish(ImageManifest::synthetic(
                        &id,
                        image_bytes,
                        rc.shared_fraction,
                        self.config.seed,
                    ));
                }
            }
        }
        let shard = match self.home.get(&name) {
            Some(&s) => s, // re-registration replaces the profile in place
            None => {
                let s = self.registered % self.shards.len();
                self.registered += 1;
                self.home.insert(name.clone(), s);
                s
            }
        };
        self.shards[shard].register(profile.clone());
        self.profiles.insert(name, profile);
    }

    /// Registry image id of one `(function, gear)` snapshot.
    pub fn image_id(function: &str, gear: Gear) -> String {
        image_id(function, gear)
    }

    /// Publishes a real manifest for `(function, gear)` — e.g. derived
    /// from a dumped image set via [`ImageManifest::from_image_set`] —
    /// replacing the synthetic one auto-published at registration.
    /// No-op without a registry tier.
    pub fn publish_manifest(&mut self, function: &str, gear: Gear, manifest: &ImageManifest) {
        if let Some(reg) = self.registry.as_mut() {
            reg.publish(ImageManifest::new(
                image_id(function, gear),
                manifest.frame_hashes().iter().copied(),
                manifest.metadata_bytes(),
            ));
        }
    }

    /// The snapshot registry, when the tier is configured. Pull
    /// accounting is folded in at the end of each run.
    pub fn registry(&self) -> Option<&SnapshotRegistry> {
        self.registry.as_ref()
    }

    /// The telemetry stack, when configured. Shard recordings are
    /// folded in at the end of each run.
    pub fn obs(&self) -> Option<&ObsStack> {
        self.obs.as_ref()
    }

    /// Mutable telemetry stack (e.g. to bridge platform metrics in).
    pub fn obs_mut(&mut self) -> Option<&mut ObsStack> {
        self.obs.as_mut()
    }

    /// Schedules one arrival on its function's home shard.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownFunction`] if no profile is registered.
    pub fn submit(&mut self, at: SimInstant, function: &str) -> Result<(), FleetError> {
        let Some(&home) = self.home.get(function) else {
            return Err(FleetError::UnknownFunction(function.to_owned()));
        };
        self.shards[home].inject(at, function);
        Ok(())
    }

    /// Submits every arrival of `schedule`, then runs to quiescence.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownFunction`] if the schedule names an
    /// unregistered function (checked before anything runs).
    pub fn run(&mut self, schedule: &Schedule) -> Result<(), FleetError> {
        for arrival in schedule.arrivals() {
            if !self.profiles.contains_key(&arrival.function) {
                return Err(FleetError::UnknownFunction(arrival.function.clone()));
            }
        }
        self.lease();
        for arrival in schedule.arrivals() {
            self.submit(arrival.at, &arrival.function)?;
        }
        self.drive(None);
        self.fold();
        Ok(())
    }

    /// Runs a lazily-produced arrival stream to quiescence without ever
    /// materialising the whole schedule: arrivals are injected in
    /// epochs of [`FleetConfig::stream_epoch`] virtual time and the
    /// shards drain up to each epoch boundary before the next wave.
    /// The stream must be time-sorted (as [`ArrivalGen`] and
    /// [`MergedArrivals`] produce); results are identical to
    /// [`FleetSim::run`] on the equivalent materialised schedule.
    ///
    /// [`ArrivalGen`]: prebake_platform::loadgen::ArrivalGen
    /// [`MergedArrivals`]: prebake_platform::loadgen::MergedArrivals
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownFunction`] for an unregistered function and
    /// [`FleetError::Load`] for a stream-side failure. Validation is
    /// necessarily lazy — arrivals already injected stay processed, and
    /// everything drained so far is folded in before the error returns.
    pub fn run_stream<I>(&mut self, stream: I) -> Result<(), FleetError>
    where
        I: IntoIterator<Item = LoadResult<Arrival>>,
    {
        self.lease();
        let result = self.pump(&mut stream.into_iter());
        if result.is_ok() {
            self.drive(None);
        }
        self.fold();
        result
    }

    /// The epoch loop of [`FleetSim::run_stream`]: pull one lookahead
    /// arrival, inject every arrival strictly inside its epoch window,
    /// drain up to the boundary, repeat.
    fn pump(
        &mut self,
        stream: &mut impl Iterator<Item = LoadResult<Arrival>>,
    ) -> Result<(), FleetError> {
        let mut pending: Option<Arrival> = None;
        loop {
            let Some(head) = pending
                .take()
                .map_or_else(|| stream.next().transpose(), |a| Ok(Some(a)))?
            else {
                return Ok(());
            };
            let epoch_end = SimInstant::from_nanos(
                head.at
                    .as_nanos()
                    .saturating_add(self.config.stream_epoch.as_nanos()),
            );
            self.submit(head.at, &head.function)?;
            for arrival in stream.by_ref() {
                let arrival = arrival?;
                if arrival.at < epoch_end {
                    self.submit(arrival.at, &arrival.function)?;
                } else {
                    pending = Some(arrival);
                    break;
                }
            }
            self.drive(Some(epoch_end));
        }
    }

    /// Hands each shard its per-run leases: a fork of the registry's
    /// manifest store (late, so post-construction publishes are seen)
    /// and a fresh telemetry stack. Both are absorbed back at fold.
    fn lease(&mut self) {
        for shard in &mut self.shards {
            if shard.registry.is_none() {
                shard.registry = self.registry.as_ref().map(SnapshotRegistry::fork);
            }
            if shard.obs.is_none() {
                shard.obs = self.config.obs.clone().map(ObsStack::new);
            }
        }
    }

    /// Drains every shard to quiescence (or up to `bound`). With more
    /// than one shard and [`FleetConfig::threads`] on, shards drain on
    /// OS threads; shards share nothing mutable, so the serial fallback
    /// is bit-identical.
    fn drive(&mut self, bound: Option<SimInstant>) {
        if self.shards.len() > 1 && self.config.threads {
            crossbeam::thread::scope(|scope| {
                for shard in &mut self.shards {
                    scope.spawn(move |_| shard.drain(bound));
                }
            })
            .expect("shard drain panicked");
        } else {
            for shard in &mut self.shards {
                shard.drain(bound);
            }
        }
    }

    /// Folds shard outputs into the coordinator in byte-stable order:
    /// virtual time advances to the max shard clock; metrics merge in
    /// shard order; completed requests k-way merge by dispatch time
    /// (lowest shard wins ties); registry accounting and telemetry
    /// absorb in shard order; spans renumber into one id space.
    fn fold(&mut self) {
        self.now = self
            .shards
            .iter()
            .map(|s| s.now)
            .fold(self.now, SimInstant::max);
        for shard in &mut self.shards {
            let metrics = std::mem::take(&mut shard.metrics);
            self.metrics.merge(&metrics);
            self.events_processed += std::mem::take(&mut shard.events_processed);
            if let (Some(total), Some(gw)) = (self.gateway_metrics.as_mut(), shard.gateway.as_mut())
            {
                let taken = std::mem::take(&mut gw.metrics);
                total.merge(&taken);
            }
        }
        if self.shards.len() == 1 {
            self.completed.append(&mut self.shards[0].completed);
        } else {
            let mut batches: Vec<VecDeque<FleetRequest>> = self
                .shards
                .iter_mut()
                .map(|s| std::mem::take(&mut s.completed).into())
                .collect();
            loop {
                let mut best: Option<(usize, SimInstant)> = None;
                for (i, batch) in batches.iter().enumerate() {
                    if let Some(r) = batch.front() {
                        if best.is_none_or(|(_, t)| r.dispatched < t) {
                            best = Some((i, r.dispatched));
                        }
                    }
                }
                let Some((i, _)) = best else { break };
                self.completed
                    .push(batches[i].pop_front().expect("fronted"));
            }
        }
        if let Some(parent) = self.registry.as_mut() {
            for shard in &mut self.shards {
                if let Some(fork) = shard.registry.take() {
                    parent.absorb(&fork);
                }
            }
        }
        if let Some(parent) = self.obs.as_mut() {
            for shard in &mut self.shards {
                if let Some(stack) = shard.obs.take() {
                    parent.absorb(&stack);
                }
            }
        }
        let single = self.shards.len() == 1;
        for shard in &mut self.shards {
            let now = shard.now;
            let taken = shard.tracer.take(now);
            if single {
                // One shard: the tracer's own ids are already the
                // global sequence — byte-identical to the unsharded
                // scheduler.
                self.spans.extend(taken);
            } else {
                let mut remap: BTreeMap<u64, SpanId> = BTreeMap::new();
                for span in &taken {
                    self.next_span_id += 1;
                    remap.insert(span.id.as_u64(), SpanId::from_raw(self.next_span_id));
                }
                for mut span in taken {
                    span.id = remap[&span.id.as_u64()];
                    span.parent = span.parent.map(|p| remap[&p.as_u64()]);
                    self.spans.push(span);
                }
            }
        }
    }

    /// Current virtual time (max over shard clocks after a run).
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Completed invocations in completion-scheduling order (dispatch
    /// time across shards, lowest shard first on ties). Empty when
    /// [`FleetConfig::retain_completed`] is off.
    pub fn completed(&self) -> &[FleetRequest] {
        &self.completed
    }

    /// Fleet metrics.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Folded gateway metrics; `None` unless [`FleetConfig::gateway`]
    /// is configured.
    pub fn gateway_metrics(&self) -> Option<&GatewayMetrics> {
        self.gateway_metrics.as_ref()
    }

    /// Summed admission accounting across every shard's gateway
    /// frontier (live — includes arrivals still parked in admission
    /// queues). Zeroes without a gateway.
    pub fn gateway_admission(&self) -> AdmissionStats {
        let mut total = AdmissionStats::default();
        for shard in &self.shards {
            if let Some(gw) = &shard.gateway {
                total.merge(gw.admission.stats());
            }
        }
        total
    }

    /// Arrivals currently parked in admission queues, fleet-wide.
    pub fn gateway_queue_depth(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.gateway.as_ref())
            .map(|gw| gw.admission.queue_depth())
            .sum()
    }

    /// The gateway conservation identity, fleet-wide: every shard's
    /// admission ledger balances (`offered == admitted + shed + queued`)
    /// and the folded counters balance against cache hits. Trivially
    /// `true` without a gateway.
    pub fn gateway_conserved(&self) -> bool {
        let ledgers = self
            .shards
            .iter()
            .filter_map(|s| s.gateway.as_ref())
            .all(|gw| gw.admission.conserved());
        let Some(gm) = &self.gateway_metrics else {
            return ledgers;
        };
        ledgers
            && gm.arrivals.get()
                == gm.cache_hits.get()
                    + gm.admitted.get()
                    + gm.shed()
                    + self.gateway_queue_depth() as u64
    }

    /// Events handled across all shards and runs — arrivals plus
    /// scheduler events. The numerator of the events/sec throughput the
    /// scale ablation reports.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Per-worker memory high-water marks, bytes, in fleet-global
    /// worker order.
    pub fn worker_high_water(&self) -> Vec<u64> {
        self.shards
            .iter()
            .flat_map(|s| s.workers.iter().map(|w| w.mem_high_water))
            .collect()
    }

    /// Live replicas (any state) of `function` across the fleet.
    pub fn replica_count(&self, function: &str) -> usize {
        self.shards.iter().map(|s| s.replica_count(function)).sum()
    }

    /// Renders every fleet metric in the Prometheus exposition format,
    /// with the `gateway_*` series appended when the frontier is on.
    pub fn render_metrics(&self) -> String {
        let mut out = self.metrics.render(&self.worker_high_water());
        if let Some(gm) = &self.gateway_metrics {
            out.push_str(&gm.render());
        }
        out
    }

    /// Drains recorded scheduler span trees (empty unless
    /// [`FleetConfig::span_tracing`] is on). One tree per completed
    /// invocation: `sched_invocation` → `sched_enqueue`, `sched_place`,
    /// `sched_start`/`sched_reuse`, `sched_serve`. A cold start that
    /// fetched image bytes from the registry tier nests a
    /// `registry_pull` span inside its `sched_start`.
    pub fn take_spans(&mut self) -> Vec<TraceSpan> {
        std::mem::take(&mut self.spans)
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{KeepAlive, StartSelection};
    use crate::profile::{Gear, GearCost};

    fn profile(name: &str) -> FunctionProfile {
        FunctionProfile::synthetic(
            name,
            &[
                (
                    Gear::Vanilla,
                    GearCost {
                        cold_ms: 200.0,
                        first_service_ms: 10.0,
                        warm_service_ms: 2.0,
                        replica_mem_bytes: 100 << 20,
                        image_bytes: 0,
                    },
                ),
                (
                    Gear::Prefetch,
                    GearCost {
                        cold_ms: 30.0,
                        first_service_ms: 4.0,
                        warm_service_ms: 2.0,
                        replica_mem_bytes: 100 << 20,
                        image_bytes: 40 << 20,
                    },
                ),
            ],
        )
    }

    fn sim(config: FleetConfig) -> FleetSim {
        let mut s = FleetSim::new(config);
        s.register(profile("fn-a"));
        s
    }

    #[test]
    fn unknown_function_is_rejected_before_running() {
        let mut s = sim(FleetConfig::default());
        assert_eq!(
            s.submit(SimInstant::EPOCH, "ghost").unwrap_err(),
            FleetError::UnknownFunction("ghost".to_owned())
        );
        let schedule = Schedule::burst("ghost", 1, SimInstant::EPOCH).unwrap();
        assert!(s.run(&schedule).is_err());
        assert!(s.completed().is_empty());
    }

    #[test]
    fn single_arrival_cold_starts_and_completes() {
        let mut s = sim(FleetConfig::default());
        let schedule = Schedule::burst("fn-a", 1, SimInstant::EPOCH).unwrap();
        s.run(&schedule).unwrap();
        assert_eq!(s.completed().len(), 1);
        let r = &s.completed()[0];
        assert!(r.cold);
        // Vanilla baseline: ~200ms cold + ~10ms first service.
        assert!(
            (180.0..260.0).contains(&r.latency_ms()),
            "latency {}ms",
            r.latency_ms()
        );
        assert_eq!(s.metrics().cold_starts.get(), 1);
        assert_eq!(s.metrics().replicas_started.get(), 1);
    }

    #[test]
    fn warm_replica_reused_within_ttl() {
        let mut s = sim(FleetConfig::default());
        let schedule =
            Schedule::constant("fn-a", 3, SimInstant::EPOCH, SimDuration::from_secs(1)).unwrap();
        s.run(&schedule).unwrap();
        assert_eq!(s.completed().len(), 3);
        assert_eq!(s.metrics().cold_starts.get(), 1, "only the first is cold");
        assert_eq!(s.metrics().replicas_started.get(), 1);
        assert!(!s.completed()[2].cold);
        assert!(s.completed()[2].latency_ms() < 10.0);
    }

    #[test]
    fn ttl_expiry_forces_a_second_cold_start() {
        let config = FleetConfig {
            policy: Policy::vanilla_baseline(SimDuration::from_secs(5)),
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let schedule =
            Schedule::constant("fn-a", 2, SimInstant::EPOCH, SimDuration::from_secs(60)).unwrap();
        s.run(&schedule).unwrap();
        assert_eq!(s.completed().len(), 2);
        assert_eq!(s.metrics().cold_starts.get(), 2, "ttl expired in the gap");
        assert!(s.metrics().expirations.get() >= 1);
        assert_eq!(s.replica_count("fn-a"), 0, "everything expired at the end");
    }

    #[test]
    fn burst_fans_out_and_respects_replica_ceiling() {
        let config = FleetConfig {
            max_replicas_per_function: 3,
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let schedule = Schedule::burst("fn-a", 10, SimInstant::EPOCH).unwrap();
        s.run(&schedule).unwrap();
        assert_eq!(s.completed().len(), 10);
        assert_eq!(s.metrics().replicas_started.get(), 3, "ceiling respected");
    }

    #[test]
    fn admission_control_sheds_over_capacity() {
        let config = FleetConfig {
            queue_cap: 4,
            max_replicas_per_function: 1,
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let schedule = Schedule::burst("fn-a", 20, SimInstant::EPOCH).unwrap();
        s.run(&schedule).unwrap();
        // 1 dispatched immediately is impossible (replica cold), so the
        // queue holds 4 and the rest shed.
        assert_eq!(s.metrics().shed.get(), 16);
        assert_eq!(s.completed().len(), 4);
        assert_eq!(s.metrics().requests.get(), 4);
    }

    #[test]
    fn memory_budget_caps_fleet_and_high_water_is_tracked() {
        // Each replica is 100MB; budget of 250MB per worker holds 2.
        let config = FleetConfig {
            workers: 2,
            mem_budget_bytes: 250 << 20,
            max_replicas_per_function: 16,
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let schedule = Schedule::burst("fn-a", 12, SimInstant::EPOCH).unwrap();
        s.run(&schedule).unwrap();
        assert_eq!(s.completed().len(), 12, "all served eventually");
        assert_eq!(
            s.metrics().replicas_started.get(),
            4,
            "2 workers x 2 replicas fit the budget"
        );
        for hw in s.worker_high_water() {
            assert!(hw <= 250 << 20, "budget respected, high water {hw}");
            assert!(hw >= 100 << 20, "high water recorded");
        }
    }

    #[test]
    fn lru_pressure_evicts_idle_replicas_for_new_functions() {
        let config = FleetConfig {
            workers: 1,
            mem_budget_bytes: 150 << 20,
            policy: Policy {
                keep_alive: KeepAlive::LruPressure {
                    ttl: SimDuration::from_secs(3600),
                },
                start: StartSelection::Fixed(Gear::Vanilla),
            },
            ..FleetConfig::default()
        };
        let mut s = FleetSim::new(config);
        s.register(profile("fn-a"));
        s.register(profile("fn-b"));
        // fn-a warms up first; fn-b arrives later and needs the memory.
        let schedule = Schedule::burst("fn-a", 1, SimInstant::EPOCH)
            .unwrap()
            .merge(
                Schedule::burst("fn-b", 1, SimInstant::EPOCH + SimDuration::from_secs(10)).unwrap(),
            );
        s.run(&schedule).unwrap();
        assert_eq!(s.completed().len(), 2, "eviction made room for fn-b");
        assert_eq!(s.metrics().evictions.get(), 1);

        // The same pressure with a fixed-TTL policy deadlocks fn-b out of
        // memory instead (no eviction, ttl never fires within the run).
        let config = FleetConfig {
            workers: 1,
            mem_budget_bytes: 150 << 20,
            policy: Policy::vanilla_baseline(SimDuration::from_secs(3600)),
            ..FleetConfig::default()
        };
        let mut stuck = FleetSim::new(config);
        stuck.register(profile("fn-a"));
        stuck.register(profile("fn-b"));
        let schedule = Schedule::burst("fn-a", 1, SimInstant::EPOCH)
            .unwrap()
            .merge(
                Schedule::burst("fn-b", 1, SimInstant::EPOCH + SimDuration::from_secs(10)).unwrap(),
            );
        stuck.run(&schedule).unwrap();
        assert_eq!(stuck.metrics().evictions.get(), 0);
        assert_eq!(
            stuck.completed().len(),
            2,
            "fn-b is served once fn-a expires"
        );
        let fn_b = stuck.completed().iter().find(|r| r.function == "fn-b");
        assert!(
            fn_b.unwrap().queue_delay_ms() > 1000.0,
            "without eviction fn-b waited for the TTL"
        );
    }

    #[test]
    fn histogram_prewarm_converts_cold_starts_to_warm() {
        // Periodic arrivals every 20s; fixed 5s TTL always expires the
        // replica in the gap, so every arrival is cold.
        let arrivals =
            Schedule::constant("fn-a", 10, SimInstant::EPOCH, SimDuration::from_secs(20)).unwrap();
        let fixed = FleetConfig {
            policy: Policy {
                keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(5)),
                start: StartSelection::Fixed(Gear::Vanilla),
            },
            ..FleetConfig::default()
        };
        let mut baseline = sim(fixed);
        baseline.run(&arrivals).unwrap();
        assert_eq!(baseline.metrics().cold_starts.get(), 10);

        // The histogram policy learns the 20s cadence: its adaptive TTL
        // clamps at the same 5s cap, but pre-warm starts a replica just
        // before each predicted arrival.
        let prewarm = FleetConfig {
            policy: Policy {
                keep_alive: KeepAlive::Histogram {
                    floor: SimDuration::from_secs(1),
                    cap: SimDuration::from_secs(5),
                    quantile: 0.99,
                    prewarm: true,
                },
                start: StartSelection::Fixed(Gear::Vanilla),
            },
            ..FleetConfig::default()
        };
        let mut smart = sim(prewarm);
        smart.run(&arrivals).unwrap();
        assert!(
            smart.metrics().cold_starts.get() <= 4,
            "prewarm absorbs the periodic colds, got {}",
            smart.metrics().cold_starts.get()
        );
        assert!(smart.metrics().prewarm_starts.get() >= 6);
        // Both policies pay the very first cold start; compare the tail
        // after the histogram has one gap of history.
        let tail_max = |s: &FleetSim| {
            s.completed()
                .iter()
                .filter(|r| r.id > 2)
                .map(FleetRequest::latency_ms)
                .fold(0.0f64, f64::max)
        };
        let (p_fixed, p_smart) = (tail_max(&baseline), tail_max(&smart));
        assert!(
            p_smart < p_fixed / 2.0,
            "prewarm cuts steady-state worst-case latency: {p_smart} vs {p_fixed}"
        );
    }

    #[test]
    fn adaptive_start_picks_the_cheap_gear() {
        let config = FleetConfig {
            policy: Policy {
                keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(5)),
                start: StartSelection::Adaptive,
            },
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let schedule = Schedule::burst("fn-a", 1, SimInstant::EPOCH).unwrap();
        s.run(&schedule).unwrap();
        let r = &s.completed()[0];
        // Prefetch profile: ~30ms cold + ~4ms first service.
        assert!(
            r.latency_ms() < 60.0,
            "adaptive start used prefetch, latency {}ms",
            r.latency_ms()
        );
    }

    #[test]
    fn unprofiled_fixed_gear_falls_back_to_best() {
        let config = FleetConfig {
            policy: Policy {
                keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(5)),
                start: StartSelection::Fixed(Gear::Cow), // not in the profile
            },
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        s.run(&Schedule::burst("fn-a", 1, SimInstant::EPOCH).unwrap())
            .unwrap();
        assert_eq!(s.completed().len(), 1, "fallback keeps the function up");
    }

    #[test]
    fn infeasible_fixed_gear_falls_back_to_a_fitting_one() {
        // Prefetch charges 140MB (replica + image) but the budget is
        // 110MB; vanilla (100MB, no image) is the only gear that fits.
        let config = FleetConfig {
            workers: 1,
            mem_budget_bytes: 110 << 20,
            policy: Policy {
                keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(5)),
                start: StartSelection::Fixed(Gear::Prefetch),
            },
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        s.run(&Schedule::burst("fn-a", 1, SimInstant::EPOCH).unwrap())
            .unwrap();
        assert_eq!(s.completed().len(), 1, "request is served, not stranded");
        assert!(
            s.completed()[0].latency_ms() > 100.0,
            "fallback paid vanilla's boot, latency {}ms",
            s.completed()[0].latency_ms()
        );
    }

    #[test]
    fn registry_pulls_delay_cold_starts_and_account_egress() {
        let run = |registry: Option<RegistryConfig>| {
            let config = FleetConfig {
                policy: Policy {
                    keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(60)),
                    start: StartSelection::Fixed(Gear::Prefetch),
                },
                registry,
                ..FleetConfig::default()
            };
            let mut s = sim(config);
            s.run(&Schedule::burst("fn-a", 1, SimInstant::EPOCH).unwrap())
                .unwrap();
            s
        };
        let local = run(None);
        let remote = run(Some(RegistryConfig::default()));
        assert_eq!(local.metrics().registry_egress_bytes.get(), 0);
        assert!(local.registry().is_none());

        // 40 MB over a 12ms + 10 Gbit/s link adds ~45 ms to the cold path.
        let delta = remote.completed()[0].latency_ms() - local.completed()[0].latency_ms();
        assert!(
            delta > 30.0,
            "pull time reached the critical path: {delta}ms"
        );
        assert_eq!(remote.metrics().registry_egress_bytes.get(), 40 << 20);
        assert_eq!(remote.registry().unwrap().egress_bytes(), 40 << 20);
        assert_eq!(remote.registry().unwrap().pulls(), 1);
        assert_eq!(remote.metrics().pull_wait.count(), 1);
    }

    #[test]
    fn dedup_pull_through_saves_cross_function_egress() {
        // fn-a and fn-b each carry a 40 MB prefetch image; half the
        // frames are the shared runtime base.
        let run = |mode: PullMode| {
            let config = FleetConfig {
                workers: 1,
                policy: Policy {
                    keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(60)),
                    start: StartSelection::Fixed(Gear::Prefetch),
                },
                registry: Some(RegistryConfig {
                    mode,
                    ..RegistryConfig::default()
                }),
                ..FleetConfig::default()
            };
            let mut s = FleetSim::new(config);
            s.register(profile("fn-a"));
            s.register(profile("fn-b"));
            let schedule = Schedule::burst("fn-a", 1, SimInstant::EPOCH)
                .unwrap()
                .merge(
                    Schedule::burst("fn-b", 1, SimInstant::EPOCH + SimDuration::from_secs(1))
                        .unwrap(),
                );
            s.run(&schedule).unwrap();
            s.metrics().registry_egress_bytes.get()
        };
        // One 40 MB pull each; dedup ships fn-b's unique half only.
        assert_eq!(run(PullMode::Naive), 80 << 20);
        assert_eq!(run(PullMode::PullThrough), 80 << 20);
        assert_eq!(run(PullMode::DedupPullThrough), 60 << 20);
    }

    #[test]
    fn pull_through_cache_absorbs_repeat_cold_starts() {
        // Two arrivals 60s apart with a 5s TTL: the replica expires in
        // the gap, so both starts are cold — but the image stays in the
        // node cache, so only naive mode re-fetches it.
        let run = |mode: PullMode| {
            let config = FleetConfig {
                workers: 1,
                policy: Policy {
                    keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(5)),
                    start: StartSelection::Fixed(Gear::Prefetch),
                },
                registry: Some(RegistryConfig {
                    mode,
                    prepull: false,
                    ..RegistryConfig::default()
                }),
                ..FleetConfig::default()
            };
            let mut s = sim(config);
            let schedule =
                Schedule::constant("fn-a", 2, SimInstant::EPOCH, SimDuration::from_secs(60))
                    .unwrap();
            s.run(&schedule).unwrap();
            assert_eq!(s.metrics().cold_starts.get(), 2);
            s
        };
        let naive = run(PullMode::Naive);
        assert_eq!(naive.metrics().registry_egress_bytes.get(), 80 << 20);
        assert_eq!(naive.metrics().pull_cache_hits.get(), 0);

        let cached = run(PullMode::PullThrough);
        assert_eq!(cached.metrics().registry_egress_bytes.get(), 40 << 20);
        assert_eq!(cached.metrics().pull_cache_hits.get(), 1);
        assert_eq!(cached.registry().unwrap().cache_hits(), 1);
        // The second cold start restores straight from the node cache.
        let second = &cached.completed()[1];
        assert!(
            second.latency_ms() < naive.completed()[1].latency_ms() - 30.0,
            "cache hit skips the wire: {} vs {}",
            second.latency_ms(),
            naive.completed()[1].latency_ms()
        );
    }

    #[test]
    fn affinity_placement_prefers_the_warm_node() {
        // fn-a lands on worker 0. Without affinity a 2-burst of fn-b
        // spreads least-loaded-first: replica one to empty worker 1
        // (full 40 MB pull), replica two ties back to worker 0 (20 MB,
        // the unique half — worker 0 holds fn-a's shared base). With
        // affinity both placements see worker 0 as the cheaper fetch
        // (20 MB missing vs 40, then 0 missing) and pack there.
        let run = |affinity: bool| {
            let config = FleetConfig {
                workers: 2,
                policy: Policy {
                    keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(60)),
                    start: StartSelection::Fixed(Gear::Prefetch),
                },
                registry: Some(RegistryConfig {
                    affinity_placement: affinity,
                    ..RegistryConfig::default()
                }),
                ..FleetConfig::default()
            };
            let mut s = FleetSim::new(config);
            s.register(profile("fn-a"));
            s.register(profile("fn-b"));
            let schedule = Schedule::burst("fn-a", 1, SimInstant::EPOCH)
                .unwrap()
                .merge(
                    Schedule::burst("fn-b", 2, SimInstant::EPOCH + SimDuration::from_secs(1))
                        .unwrap(),
                );
            s.run(&schedule).unwrap();
            s
        };
        let spread = run(false);
        assert_eq!(spread.metrics().registry_egress_bytes.get(), 100 << 20);
        assert_eq!(spread.metrics().pull_cache_hits.get(), 0);
        let packed = run(true);
        assert_eq!(
            packed.metrics().registry_egress_bytes.get(),
            60 << 20,
            "40 MB for fn-a, then only fn-b's unique half"
        );
        assert_eq!(
            packed.metrics().pull_cache_hits.get(),
            1,
            "the second fn-b pull is already resident"
        );
    }

    #[test]
    fn prepull_lands_the_image_before_the_predicted_start() {
        // The 20s cadence with a 5s TTL expires the replica every gap;
        // the histogram engine pre-warms, and the registry tier
        // pre-pulls to the predicted node first, so predictive starts
        // never wait on the wire.
        let config = FleetConfig {
            policy: Policy {
                keep_alive: KeepAlive::Histogram {
                    floor: SimDuration::from_secs(1),
                    cap: SimDuration::from_secs(5),
                    quantile: 0.99,
                    prewarm: true,
                },
                start: StartSelection::Fixed(Gear::Prefetch),
            },
            registry: Some(RegistryConfig::default()),
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let arrivals =
            Schedule::constant("fn-a", 10, SimInstant::EPOCH, SimDuration::from_secs(20)).unwrap();
        s.run(&arrivals).unwrap();
        assert!(
            s.metrics().prepulls.get() >= 6,
            "predicted nodes pre-pulled"
        );
        assert!(s.metrics().pull_cache_hits.get() >= 6);
        // Only the very first pull crossed the wire.
        assert_eq!(s.metrics().registry_egress_bytes.get(), 40 << 20);
    }

    #[test]
    fn registry_pull_span_nests_inside_sched_start() {
        let config = FleetConfig {
            span_tracing: true,
            policy: Policy {
                keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(60)),
                start: StartSelection::Fixed(Gear::Prefetch),
            },
            registry: Some(RegistryConfig::default()),
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        s.run(&Schedule::burst("fn-a", 1, SimInstant::EPOCH).unwrap())
            .unwrap();
        let spans = s.take_spans();
        let root = spans
            .iter()
            .find(|sp| sp.name == "sched_invocation")
            .unwrap();
        let children: Vec<&str> = spans
            .iter()
            .filter(|sp| sp.parent == Some(root.id))
            .map(|sp| sp.name)
            .collect();
        assert_eq!(
            children,
            vec!["sched_enqueue", "sched_place", "sched_start", "sched_serve"],
            "the pull nests below sched_start, not the root"
        );
        let start = spans.iter().find(|sp| sp.name == "sched_start").unwrap();
        let pull = spans.iter().find(|sp| sp.name == "registry_pull").unwrap();
        assert_eq!(pull.parent, Some(start.id));
        assert_eq!(pull.start, start.start, "the fetch leads the restore");
        assert!(pull.end < start.end);
        // 40 MB at 12ms + 10 Gbit/s: ~45.5ms on the wire.
        let pull_ms = (pull.end - pull.start).as_millis_f64();
        assert!((40.0..55.0).contains(&pull_ms), "pull span {pull_ms}ms");
    }

    #[test]
    fn registry_runs_are_bit_identical_for_a_fixed_seed() {
        let run = || {
            let config = FleetConfig {
                workers: 3,
                policy: Policy {
                    keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(10)),
                    start: StartSelection::Adaptive,
                },
                registry: Some(RegistryConfig::default()),
                ..FleetConfig::default()
            };
            let mut s = FleetSim::new(config);
            s.register(profile("fn-a"));
            s.register(profile("fn-b"));
            let schedule = Schedule::poisson(
                "fn-a",
                40,
                SimInstant::EPOCH,
                SimDuration::from_millis(800),
                3,
            )
            .unwrap()
            .merge(
                Schedule::poisson(
                    "fn-b",
                    40,
                    SimInstant::EPOCH,
                    SimDuration::from_millis(800),
                    4,
                )
                .unwrap(),
            );
            s.run(&schedule).unwrap();
            (
                s.render_metrics(),
                s.registry().unwrap().egress_bytes(),
                s.registry().unwrap().dedup_bytes(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn runs_are_bit_identical_for_a_fixed_seed() {
        let run = |seed: u64| {
            let config = FleetConfig {
                seed,
                ..FleetConfig::default()
            };
            let mut s = sim(config);
            let schedule = Schedule::poisson(
                "fn-a",
                50,
                SimInstant::EPOCH,
                SimDuration::from_millis(500),
                seed,
            )
            .unwrap();
            s.run(&schedule).unwrap();
            (
                s.completed()
                    .iter()
                    .map(|r| (r.id, r.worker, r.completed.as_nanos(), r.cold))
                    .collect::<Vec<_>>(),
                s.render_metrics(),
            )
        };
        let (a1, m1) = run(7);
        let (a2, m2) = run(7);
        assert_eq!(a1, a2);
        assert_eq!(m1, m2);
        let (b, _) = run(8);
        assert_ne!(
            a1, b,
            "different seeds shift jitter (latency schedule differs)"
        );
    }

    #[test]
    fn span_trees_cover_the_invocation_lifecycle() {
        let config = FleetConfig {
            span_tracing: true,
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let schedule =
            Schedule::constant("fn-a", 2, SimInstant::EPOCH, SimDuration::from_secs(1)).unwrap();
        s.run(&schedule).unwrap();
        let spans = s.take_spans();
        let roots: Vec<_> = spans
            .iter()
            .filter(|sp| sp.name == "sched_invocation")
            .collect();
        assert_eq!(roots.len(), 2, "one tree per invocation");
        // Cold invocation: enqueue + place + start + serve under the root.
        let cold_root = roots[0];
        let children: Vec<&str> = spans
            .iter()
            .filter(|sp| sp.parent == Some(cold_root.id))
            .map(|sp| sp.name)
            .collect();
        assert_eq!(
            children,
            vec!["sched_enqueue", "sched_place", "sched_start", "sched_serve"]
        );
        // Warm invocation reuses instead of starting.
        let warm_children: Vec<&str> = spans
            .iter()
            .filter(|sp| sp.parent == Some(roots[1].id))
            .map(|sp| sp.name)
            .collect();
        assert!(warm_children.contains(&"sched_reuse"));
        assert!(!warm_children.contains(&"sched_start"));
        // Root brackets the whole latency window.
        assert_eq!(cold_root.start, s.completed()[0].arrived);
        assert_eq!(cold_root.end, s.completed()[0].completed);
        assert!(s.take_spans().is_empty(), "take drains");

        // Off by default.
        let mut quiet = sim(FleetConfig::default());
        quiet
            .run(&Schedule::burst("fn-a", 1, SimInstant::EPOCH).unwrap())
            .unwrap();
        assert!(quiet.take_spans().is_empty());
    }

    #[test]
    fn obs_stack_records_windowed_series_and_slo_breaches() {
        let config = FleetConfig {
            obs: Some(default_fleet_obs(1.0, 1)),
            span_tracing: true,
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        // 10 arrivals over 150s: the first window sees the cold start,
        // later windows only warm serves.
        let schedule =
            Schedule::constant("fn-a", 10, SimInstant::EPOCH, SimDuration::from_secs(15)).unwrap();
        s.run(&schedule).unwrap();
        let obs = s.obs().expect("configured");
        let rec = &obs.recorder;
        assert_eq!(rec.counter_total("fleet_requests_total"), 10);
        assert_eq!(rec.counter_total("fleet_cold_starts_total"), 1);
        assert_eq!(rec.counter_total("fleet_replicas_started_total"), 1);
        assert_eq!(
            rec.tenants_of("fleet_requests_total")
                .into_iter()
                .collect::<Vec<_>>(),
            vec!["fn-a".to_owned()]
        );
        // The cold start landed in window 0 specifically.
        let w0 = rec.window_containing(SimInstant::EPOCH).expect("window 0");
        assert_eq!(w0.counter_metric("fleet_cold_starts_total"), 1);
        let merged = rec
            .merged_histogram("fleet_latency_ms", None)
            .expect("latency observed");
        assert_eq!(merged.count(), 10);
        // The vanilla ~210ms cold start breaches the 250ms objective...
        // no, it doesn't: 210 < 250, so fleet-latency holds. But the cold
        // fraction objective (10% budget) sees 1/10 = exactly budget.
        let report = obs.report();
        let lat = report.status("fleet-latency").expect("status");
        assert!(lat.burn <= 1.0, "no latency breach at ~210ms: {}", lat.burn);
        let cold = report.status("fleet-cold-fraction").expect("status");
        assert_eq!((cold.bad, cold.total), (1, 10));
        // Prometheus render includes ring meta and the SLO gauges.
        let text = obs.render();
        assert!(text.contains("fleet_requests_total{tenant=\"fn-a\"} 10"));
        assert!(text.contains("slo_burn_rate{objective=\"fleet-cold-fraction\"}"));
        // keep_fraction 1.0: every tree retained, so spans survive.
        assert_eq!(obs.sampling.trees_kept, 10);
        assert_eq!(obs.sampling.trees_dropped, 0);
        assert_eq!(s.take_spans().len(), 10 * 5);
    }

    #[test]
    fn tail_sampling_drops_uninteresting_trees_but_keeps_breaches() {
        // 250ms SLO threshold with a ~210ms vanilla cold start: warm
        // serves (~2ms) are uninteresting; with keep_fraction 0 only
        // breaching trees would survive. Tighten the objective to 100ms
        // so the cold start itself breaches.
        let mut obs_config = default_fleet_obs(0.0, 1);
        obs_config.objectives[0] =
            Objective::latency("fleet-latency", "fleet_latency_ms", 100.0, 0.9);
        let config = FleetConfig {
            obs: Some(obs_config),
            span_tracing: true,
            ..FleetConfig::default()
        };
        let mut s = sim(config);
        let schedule =
            Schedule::constant("fn-a", 20, SimInstant::EPOCH, SimDuration::from_secs(1)).unwrap();
        s.run(&schedule).unwrap();
        let obs = s.obs().expect("configured");
        assert_eq!(obs.sampling.trees_kept, 1, "only the cold breach");
        assert_eq!(obs.sampling.interesting_kept, 1);
        assert_eq!(obs.sampling.trees_dropped, 19);
        let spans = s.take_spans();
        let roots: Vec<_> = spans
            .iter()
            .filter(|sp| sp.name == "sched_invocation")
            .collect();
        assert_eq!(roots.len(), 1);
        // The kept tree is complete: all 5 spans present.
        assert_eq!(spans.len(), 5);
        // The breach's latency exemplar links back to its trace id.
        let obs = s.obs().expect("configured");
        let exemplars = obs.recorder.exemplars();
        let cold_id: u64 = roots[0]
            .attrs
            .iter()
            .find(|(k, _)| *k == "id")
            .and_then(|(_, v)| v.parse().ok())
            .expect("root id attr");
        assert!(
            exemplars
                .iter()
                .any(|(_, k, _, ex)| { k.metric == "fleet_latency_ms" && ex.trace_id == cold_id }),
            "exemplar links bucket to the retained trace"
        );
    }

    #[test]
    fn obs_runs_are_bit_reproducible() {
        let run = || {
            let config = FleetConfig {
                obs: Some(default_fleet_obs(0.1, 7)),
                span_tracing: true,
                seed: 3,
                ..FleetConfig::default()
            };
            let mut s = sim(config);
            let schedule = Schedule::poisson(
                "fn-a",
                80,
                SimInstant::EPOCH,
                SimDuration::from_millis(400),
                3,
            )
            .unwrap();
            s.run(&schedule).unwrap();
            let spans = s.take_spans();
            let obs = s.obs().expect("configured");
            (
                obs.render(),
                obs.sampling,
                prebake_obs::chrome_trace_with_exemplars(&spans, &obs.recorder),
            )
        };
        let (r1, s1, t1) = run();
        let (r2, s2, t2) = run();
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
        assert!(s1.trees_dropped > 0, "sampling actually dropped trees");
    }

    /// A two-tenant fleet for shard tests: `fn-a` homes to shard 0 and
    /// `fn-b` to shard 1 at two shards (registration order).
    fn two_tenant_sim(config: FleetConfig) -> FleetSim {
        let mut s = FleetSim::new(config);
        s.register(profile("fn-a"));
        s.register(profile("fn-b"));
        s
    }

    fn two_tenant_workload() -> Schedule {
        let a = Schedule::poisson(
            "fn-a",
            60,
            SimInstant::EPOCH,
            SimDuration::from_millis(400),
            11,
        )
        .unwrap();
        let b = Schedule::constant("fn-b", 60, SimInstant::EPOCH, SimDuration::from_millis(700))
            .unwrap();
        a.merge(b)
    }

    fn shard_config(shards: usize, threads: bool) -> FleetConfig {
        FleetConfig {
            workers: 4,
            shards,
            threads,
            policy: Policy {
                keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(5)),
                start: StartSelection::Adaptive,
            },
            registry: Some(RegistryConfig::default()),
            seed: 5,
            ..FleetConfig::default()
        }
    }

    /// One completed request reduced to (id, function, worker, cold).
    type RequestRow = (u64, String, usize, bool);

    /// Fingerprint of everything a run produces that must not depend on
    /// whether shards drained on threads or serially.
    fn fingerprint(s: &mut FleetSim) -> (String, Vec<RequestRow>, u64, u64, u64) {
        (
            s.render_metrics(),
            s.completed()
                .iter()
                .map(|r| (r.id, r.function.clone(), r.worker, r.cold))
                .collect(),
            s.registry().map_or(0, SnapshotRegistry::egress_bytes),
            s.events_processed(),
            s.now().as_nanos(),
        )
    }

    #[test]
    fn threaded_and_serial_drains_are_identical() {
        let schedule = two_tenant_workload();
        for shards in [2, 4] {
            let mut threaded = two_tenant_sim(shard_config(shards, true));
            threaded.run(&schedule.clone()).unwrap();
            let mut serial = two_tenant_sim(shard_config(shards, false));
            serial.run(&schedule.clone()).unwrap();
            assert_eq!(
                fingerprint(&mut threaded),
                fingerprint(&mut serial),
                "threads changed results at {shards} shards"
            );
        }
    }

    #[test]
    fn shards_partition_workers_and_stride_request_ids() {
        let mut s = two_tenant_sim(shard_config(2, true));
        s.run(&two_tenant_workload()).unwrap();
        assert_eq!(s.completed().len(), 120);
        let mut seen = std::collections::BTreeSet::new();
        for r in s.completed() {
            assert!(seen.insert(r.id), "duplicate request id {}", r.id);
            // fn-a is homed to shard 0 (workers 0-1, even ids); fn-b to
            // shard 1 (workers 2-3, odd ids).
            if r.function == "fn-a" {
                assert!(r.worker < 2, "fn-a served off its home cell");
                assert_eq!(r.id % 2, 1, "shard 0 ids stride 1,3,5,…");
            } else {
                assert!((2..4).contains(&r.worker), "fn-b served off its home cell");
                assert_eq!(r.id % 2, 0, "shard 1 ids stride 2,4,6,…");
            }
        }
        // Both cells did real work and the fold summed their counters.
        assert_eq!(s.metrics().requests.get(), 120);
        assert!(s.events_processed() > 240, "arrivals plus scheduler events");
    }

    #[test]
    fn run_stream_matches_run_exactly() {
        for shards in [1, 2] {
            let schedule = two_tenant_workload();
            let mut eager = two_tenant_sim(shard_config(shards, true));
            eager.run(&schedule).unwrap();
            let mut streamed = two_tenant_sim(shard_config(shards, true));
            streamed
                .run_stream(schedule.arrivals().iter().cloned().map(Ok))
                .unwrap();
            assert_eq!(
                fingerprint(&mut eager),
                fingerprint(&mut streamed),
                "streaming changed results at {shards} shards"
            );
            assert_eq!(eager.take_spans(), streamed.take_spans());
        }
    }

    #[test]
    fn run_stream_surfaces_stream_errors_after_folding() {
        let mut s = two_tenant_sim(shard_config(2, true));
        let stream = [
            Ok(Arrival {
                at: SimInstant::EPOCH,
                function: "fn-a".to_owned(),
            }),
            // Beyond the first epoch window, so the first arrival drains
            // before the stream fails.
            Ok(Arrival {
                at: SimInstant::EPOCH + SimDuration::from_secs(10),
                function: "fn-a".to_owned(),
            }),
            Err(LoadError::Overflow),
        ];
        assert_eq!(
            s.run_stream(stream).unwrap_err(),
            FleetError::Load(LoadError::Overflow)
        );
        // The epoch drained before the failure was folded in.
        assert_eq!(s.metrics().requests.get(), 1);

        let mut s = two_tenant_sim(shard_config(2, true));
        let ghost = [Ok(Arrival {
            at: SimInstant::EPOCH,
            function: "ghost".to_owned(),
        })];
        assert_eq!(
            s.run_stream(ghost).unwrap_err(),
            FleetError::UnknownFunction("ghost".to_owned())
        );
    }

    #[test]
    fn retain_completed_off_keeps_distributions_but_drops_rows() {
        let schedule = two_tenant_workload();
        let mut full = two_tenant_sim(shard_config(2, true));
        full.run(&schedule.clone()).unwrap();
        let mut lean = two_tenant_sim(FleetConfig {
            retain_completed: false,
            ..shard_config(2, true)
        });
        lean.run(&schedule).unwrap();
        assert!(lean.completed().is_empty(), "rows dropped");
        assert_eq!(full.render_metrics(), lean.render_metrics());
        assert_eq!(
            lean.metrics().cold_latency.count(),
            lean.metrics().cold_starts.get(),
            "cold p99 still readable from the histogram"
        );
    }

    #[test]
    fn sharded_spans_renumber_into_one_id_space() {
        let mut s = two_tenant_sim(FleetConfig {
            span_tracing: true,
            ..shard_config(2, true)
        });
        s.run(&two_tenant_workload()).unwrap();
        let spans = s.take_spans();
        let roots = spans
            .iter()
            .filter(|s| s.name == "sched_invocation")
            .count();
        assert_eq!(roots, 120, "one tree per completed invocation");
        let mut ids = std::collections::BTreeSet::new();
        for span in &spans {
            assert!(ids.insert(span.id.as_u64()), "duplicate span id");
        }
        for span in &spans {
            if let Some(parent) = span.parent {
                assert!(ids.contains(&parent.as_u64()), "dangling parent pointer");
            }
        }
    }
}
