//! Property tests for the sharded fleet event loop: for arbitrary
//! multi-tenant workloads, threading must be invisible (a threaded
//! drain equals a serial drain of the same shard count, bit for bit)
//! and the streaming runner must equal the eager runner on the
//! materialised schedule.

use proptest::prelude::*;

use prebake_fleet::policy::{KeepAlive, Policy, StartSelection};
use prebake_fleet::profile::{FunctionProfile, Gear, GearCost};
use prebake_fleet::sim::{FleetConfig, FleetSim, RegistryConfig};
use prebake_platform::loadgen::Schedule;
use prebake_sim::time::{SimDuration, SimInstant};

fn profile(name: &str, mem_mb: u64, image_mb: u64) -> FunctionProfile {
    FunctionProfile::synthetic(
        name,
        &[
            (
                Gear::Vanilla,
                GearCost {
                    cold_ms: 180.0,
                    first_service_ms: 10.0,
                    warm_service_ms: 2.0,
                    replica_mem_bytes: mem_mb << 20,
                    image_bytes: 0,
                },
            ),
            (
                Gear::Prefetch,
                GearCost {
                    cold_ms: 25.0,
                    first_service_ms: 4.0,
                    warm_service_ms: 2.0,
                    replica_mem_bytes: mem_mb << 20,
                    image_bytes: image_mb << 20,
                },
            ),
        ],
    )
}

fn build(
    shards: usize,
    threads: bool,
    seed: u64,
    tenants: usize,
    stream_epoch: SimDuration,
) -> FleetSim {
    let mut sim = FleetSim::new(FleetConfig {
        workers: 8,
        shards,
        threads,
        seed,
        stream_epoch,
        policy: Policy {
            keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(3)),
            start: StartSelection::Adaptive,
        },
        registry: Some(RegistryConfig::default()),
        ..FleetConfig::default()
    });
    for t in 0..tenants {
        sim.register(profile(
            &format!("fn-{t}"),
            40 + 20 * t as u64,
            10 + 10 * t as u64,
        ));
    }
    sim
}

/// An arbitrary multi-tenant schedule: each tenant contributes a
/// Poisson stream with its own mean and phase.
fn workload(tenants: usize, arrivals: usize, seed: u64) -> Schedule {
    let mut merged: Option<Schedule> = None;
    for t in 0..tenants {
        let s = Schedule::poisson(
            &format!("fn-{t}"),
            arrivals,
            SimInstant::EPOCH + SimDuration::from_millis(37 * t as u64),
            SimDuration::from_millis(150 + 90 * t as u64),
            seed ^ (t as u64).wrapping_mul(0x9e37_79b9),
        )
        .unwrap();
        merged = Some(match merged {
            None => s,
            Some(m) => m.merge(s),
        });
    }
    merged.expect("at least one tenant")
}

/// One completed request, reduced to its identity-relevant fields:
/// (id, function, worker, cold, completion nanos).
type RequestRow = (u64, String, usize, bool, u64);

/// Everything a run produces that the execution strategy must not
/// change.
fn fingerprint(sim: &mut FleetSim) -> (String, Vec<RequestRow>, u64, u64, u64) {
    (
        sim.render_metrics(),
        sim.completed()
            .iter()
            .map(|r| {
                (
                    r.id,
                    r.function.clone(),
                    r.worker,
                    r.cold,
                    r.completed.as_nanos(),
                )
            })
            .collect(),
        sim.registry().map_or(0, |r| r.egress_bytes()),
        sim.events_processed(),
        sim.now().as_nanos(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Threaded and serial drains of the same shard count are
    /// bit-identical for arbitrary workloads and shard counts.
    #[test]
    fn threading_is_invisible(
        shard_idx in 0usize..4,
        tenants in 1usize..5,
        arrivals in 1usize..40,
        seed in 0u64..1000,
    ) {
        let shards = [1usize, 2, 4, 8][shard_idx];
        let schedule = workload(tenants, arrivals, seed);
        let epoch = SimDuration::from_secs(1);
        let mut threaded = build(shards, true, seed, tenants, epoch);
        threaded.run(&schedule).unwrap();
        let mut serial = build(shards, false, seed, tenants, epoch);
        serial.run(&schedule).unwrap();
        prop_assert_eq!(fingerprint(&mut threaded), fingerprint(&mut serial));
    }

    /// The lazy streaming runner equals the eager runner on the
    /// materialised schedule, for any epoch width.
    #[test]
    fn streaming_equals_eager(
        shard_idx in 0usize..3,
        tenants in 1usize..4,
        arrivals in 1usize..30,
        seed in 0u64..1000,
        epoch_idx in 0usize..4,
    ) {
        let shards = [1usize, 2, 4][shard_idx];
        let epoch_ms = [1u64, 100, 1_000, 60_000][epoch_idx];
        let schedule = workload(tenants, arrivals, seed);
        let mut eager = build(shards, true, seed, tenants, SimDuration::from_secs(1));
        eager.run(&schedule).unwrap();
        let mut streamed = build(shards, true, seed, tenants, SimDuration::from_millis(epoch_ms));
        streamed
            .run_stream(schedule.arrivals().iter().cloned().map(Ok))
            .unwrap();
        prop_assert_eq!(fingerprint(&mut eager), fingerprint(&mut streamed));
    }
}
