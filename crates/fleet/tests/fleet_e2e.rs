//! End-to-end: measure real profiles with the single-machine trial
//! harness, replay a CSV trace through the fleet, and check that a
//! prebake-gear policy beats the vanilla baseline — plus the gateway
//! frontier: admission conservation, result-cache short-circuiting,
//! and byte-identical reruns with the frontier enabled.

use prebake_fleet::{
    CacheConfig, FleetConfig, FleetSim, FunctionProfile, GatewayConfig, Gear, KeepAlive, Policy,
    StartSelection,
};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_platform::loadgen::Schedule;
use prebake_sim::time::{SimDuration, SimInstant};

fn measured_mix() -> Vec<FunctionProfile> {
    [SyntheticSize::Small, SyntheticSize::Medium]
        .into_iter()
        .map(|size| {
            let spec = FunctionSpec::synthetic(size);
            FunctionProfile::measure(&spec, &[Gear::Vanilla, Gear::Prefetch], 2, 1)
                .expect("profiling succeeds")
        })
        .collect()
}

fn trace(profiles: &[FunctionProfile]) -> Schedule {
    let mut schedule = Schedule::default();
    for (i, p) in profiles.iter().enumerate() {
        schedule = schedule.merge(
            Schedule::pareto(p.name(), 40, SimInstant::EPOCH, 2_000.0, 1.5, 11 + i as u64)
                .expect("valid pareto args"),
        );
    }
    // Round-trip through CSV: the fleet consumes the replayed trace the
    // way an operator would feed a recorded production workload back in.
    Schedule::from_csv(&schedule.to_csv()).expect("csv roundtrip")
}

fn run(policy: Policy, profiles: &[FunctionProfile], schedule: &Schedule) -> (f64, f64) {
    let mut sim = FleetSim::new(FleetConfig {
        workers: 2,
        mem_budget_bytes: 2 << 30,
        policy,
        ..FleetConfig::default()
    });
    for p in profiles {
        sim.register(p.clone());
    }
    sim.run(schedule).expect("all functions registered");
    let mut latencies: Vec<f64> = sim.completed().iter().map(|r| r.latency_ms()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99 = latencies[((latencies.len() as f64 * 0.99) as usize).min(latencies.len() - 1)];
    (sim.metrics().cold_fraction(), p99)
}

#[test]
fn measured_prefetch_policy_beats_vanilla_ttl_on_a_replayed_trace() {
    let profiles = measured_mix();
    let schedule = trace(&profiles);
    assert_eq!(schedule.len(), 80);

    // Short fixed TTL + vanilla starts: the keep-alive literature's
    // baseline. Bursty Pareto gaps routinely outlive the TTL.
    let baseline = Policy {
        keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(10)),
        start: StartSelection::Fixed(Gear::Vanilla),
    };
    // Same TTL, prebake prefetch starts: cold starts still happen, they
    // just cost milliseconds instead of a full boot.
    let challenger = Policy {
        keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(10)),
        start: StartSelection::Fixed(Gear::Prefetch),
    };

    let (cold_base, p99_base) = run(baseline, &profiles, &schedule);
    let (cold_chal, p99_chal) = run(challenger, &profiles, &schedule);

    assert!(cold_base > 0.0, "trace must exercise cold starts");
    assert!(
        cold_chal <= cold_base,
        "prefetch never increases cold fraction: {cold_chal} vs {cold_base}"
    );
    assert!(
        p99_chal < p99_base,
        "prefetch cuts p99: {p99_chal} vs {p99_base}"
    );
}

#[test]
fn fleet_runs_are_deterministic_across_processes() {
    // Fixed synthetic profiles (measurement itself is covered above);
    // byte-identical metrics across two fresh sims.
    let profile = FunctionProfile::synthetic(
        "det",
        &[(
            Gear::Eager,
            prebake_fleet::GearCost {
                cold_ms: 25.0,
                first_service_ms: 3.0,
                warm_service_ms: 1.0,
                replica_mem_bytes: 64 << 20,
                image_bytes: 64 << 20,
            },
        )],
    );
    let schedule = Schedule::pareto("det", 100, SimInstant::EPOCH, 500.0, 1.2, 42).unwrap();
    let render = || {
        let mut sim = FleetSim::new(FleetConfig {
            policy: Policy {
                keep_alive: KeepAlive::Histogram {
                    floor: SimDuration::from_secs(1),
                    cap: SimDuration::from_secs(60),
                    quantile: 0.99,
                    prewarm: true,
                },
                start: StartSelection::Adaptive,
            },
            ..FleetConfig::default()
        });
        sim.register(profile.clone());
        sim.run(&schedule).unwrap();
        sim.render_metrics()
    };
    assert_eq!(render(), render());
}

fn det_profile(name: &str) -> FunctionProfile {
    FunctionProfile::synthetic(
        name,
        &[(
            Gear::Prefetch,
            prebake_fleet::GearCost {
                cold_ms: 18.0,
                first_service_ms: 3.0,
                warm_service_ms: 1.0,
                replica_mem_bytes: 64 << 20,
                image_bytes: 64 << 20,
            },
        )],
    )
}

fn gateway_fleet(gateway: GatewayConfig, workers: usize) -> FleetSim {
    let mut sim = FleetSim::new(FleetConfig {
        workers,
        policy: Policy {
            keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(30)),
            start: StartSelection::Fixed(Gear::Prefetch),
        },
        gateway: Some(gateway),
        ..FleetConfig::default()
    });
    sim.register(det_profile("gw"));
    sim
}

#[test]
fn gateway_frontier_conserves_and_reruns_byte_identically() {
    let schedule = Schedule::pareto("gw", 200, SimInstant::EPOCH, 200.0, 1.3, 7).unwrap();
    let run = || {
        let mut sim = gateway_fleet(
            GatewayConfig {
                inflight_per_worker: 2,
                queue_per_worker: 2,
                ..GatewayConfig::default()
            },
            3,
        );
        sim.run(&schedule).unwrap();
        assert!(sim.gateway_conserved(), "conservation after the run");
        let stats = sim.gateway_admission();
        assert_eq!(stats.offered, 200, "every arrival is offered");
        let gm = sim.gateway_metrics().expect("frontier enabled");
        assert_eq!(gm.arrivals.get(), 200);
        assert_eq!(
            gm.arrivals.get(),
            gm.admitted.get() + gm.shed() + gm.cache_hits.get(),
            "no cache: arrivals split into admitted and shed"
        );
        assert!(gm.ttfc_ms.count() > 0, "TTFC observed for served requests");
        let render = sim.render_metrics();
        assert!(render.contains("gateway_arrivals_total"));
        assert!(render.contains("gateway_ttfc_ms"));
        render
    };
    assert_eq!(run(), run(), "frontier runs are byte-identical");
}

#[test]
fn gateway_cache_short_circuits_repeat_invocations() {
    let schedule =
        Schedule::constant("gw", 100, SimInstant::EPOCH, SimDuration::from_millis(50)).unwrap();
    let mut sim = gateway_fleet(
        GatewayConfig {
            cache: CacheConfig {
                default_ttl: Some(SimDuration::from_secs(10)),
                ..CacheConfig::default()
            },
            ..GatewayConfig::default()
        },
        2,
    );
    sim.run(&schedule).unwrap();
    assert!(sim.gateway_conserved());
    let gm = sim.gateway_metrics().expect("frontier enabled");
    assert_eq!(gm.arrivals.get(), 100);
    assert!(
        gm.cache_hits.get() > 50,
        "steady repeats of one function mostly hit the cache: {} hits",
        gm.cache_hits.get()
    );
    assert!(
        gm.cached_serve_max_ms < 10.0,
        "cached path stays under the 10ms bar: {}",
        gm.cached_serve_max_ms
    );
    assert_eq!(
        sim.completed().len() as u64,
        gm.admitted.get(),
        "cache hits never reach the backend"
    );
}
