//! End-to-end: measure real profiles with the single-machine trial
//! harness, replay a CSV trace through the fleet, and check that a
//! prebake-gear policy beats the vanilla baseline.

use prebake_fleet::{
    FleetConfig, FleetSim, FunctionProfile, Gear, KeepAlive, Policy, StartSelection,
};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_platform::loadgen::Schedule;
use prebake_sim::time::{SimDuration, SimInstant};

fn measured_mix() -> Vec<FunctionProfile> {
    [SyntheticSize::Small, SyntheticSize::Medium]
        .into_iter()
        .map(|size| {
            let spec = FunctionSpec::synthetic(size);
            FunctionProfile::measure(&spec, &[Gear::Vanilla, Gear::Prefetch], 2, 1)
                .expect("profiling succeeds")
        })
        .collect()
}

fn trace(profiles: &[FunctionProfile]) -> Schedule {
    let mut schedule = Schedule::default();
    for (i, p) in profiles.iter().enumerate() {
        schedule = schedule.merge(
            Schedule::pareto(p.name(), 40, SimInstant::EPOCH, 2_000.0, 1.5, 11 + i as u64)
                .expect("valid pareto args"),
        );
    }
    // Round-trip through CSV: the fleet consumes the replayed trace the
    // way an operator would feed a recorded production workload back in.
    Schedule::from_csv(&schedule.to_csv()).expect("csv roundtrip")
}

fn run(policy: Policy, profiles: &[FunctionProfile], schedule: &Schedule) -> (f64, f64) {
    let mut sim = FleetSim::new(FleetConfig {
        workers: 2,
        mem_budget_bytes: 2 << 30,
        policy,
        ..FleetConfig::default()
    });
    for p in profiles {
        sim.register(p.clone());
    }
    sim.run(schedule).expect("all functions registered");
    let mut latencies: Vec<f64> = sim.completed().iter().map(|r| r.latency_ms()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p99 = latencies[((latencies.len() as f64 * 0.99) as usize).min(latencies.len() - 1)];
    (sim.metrics().cold_fraction(), p99)
}

#[test]
fn measured_prefetch_policy_beats_vanilla_ttl_on_a_replayed_trace() {
    let profiles = measured_mix();
    let schedule = trace(&profiles);
    assert_eq!(schedule.len(), 80);

    // Short fixed TTL + vanilla starts: the keep-alive literature's
    // baseline. Bursty Pareto gaps routinely outlive the TTL.
    let baseline = Policy {
        keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(10)),
        start: StartSelection::Fixed(Gear::Vanilla),
    };
    // Same TTL, prebake prefetch starts: cold starts still happen, they
    // just cost milliseconds instead of a full boot.
    let challenger = Policy {
        keep_alive: KeepAlive::FixedTtl(SimDuration::from_secs(10)),
        start: StartSelection::Fixed(Gear::Prefetch),
    };

    let (cold_base, p99_base) = run(baseline, &profiles, &schedule);
    let (cold_chal, p99_chal) = run(challenger, &profiles, &schedule);

    assert!(cold_base > 0.0, "trace must exercise cold starts");
    assert!(
        cold_chal <= cold_base,
        "prefetch never increases cold fraction: {cold_chal} vs {cold_base}"
    );
    assert!(
        p99_chal < p99_base,
        "prefetch cuts p99: {p99_chal} vs {p99_base}"
    );
}

#[test]
fn fleet_runs_are_deterministic_across_processes() {
    // Fixed synthetic profiles (measurement itself is covered above);
    // byte-identical metrics across two fresh sims.
    let profile = FunctionProfile::synthetic(
        "det",
        &[(
            Gear::Eager,
            prebake_fleet::GearCost {
                cold_ms: 25.0,
                first_service_ms: 3.0,
                warm_service_ms: 1.0,
                replica_mem_bytes: 64 << 20,
                image_bytes: 64 << 20,
            },
        )],
    );
    let schedule = Schedule::pareto("det", 100, SimInstant::EPOCH, 500.0, 1.2, 42).unwrap();
    let render = || {
        let mut sim = FleetSim::new(FleetConfig {
            policy: Policy {
                keep_alive: KeepAlive::Histogram {
                    floor: SimDuration::from_secs(1),
                    cap: SimDuration::from_secs(60),
                    quantile: 0.99,
                    prewarm: true,
                },
                start: StartSelection::Adaptive,
            },
            ..FleetConfig::default()
        });
        sim.register(profile.clone());
        sim.run(&schedule).unwrap();
        sim.render_metrics()
    };
    assert_eq!(render(), render());
}
