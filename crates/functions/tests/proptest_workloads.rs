//! Property tests for the workload implementations.

use proptest::prelude::*;

use prebake_functions::image::{resize_bilinear, resize_box, Bitmap, CompressedImage};
use prebake_functions::markdown::{escape_html, render};

proptest! {
    /// The renderer never panics and never loops on arbitrary input
    /// (a prior version looped on `#######`-style lines).
    #[test]
    fn markdown_never_panics(input in "[ -~\n]{0,2000}") {
        let _ = render(&input);
    }

    /// Every line of input contributes: rendering consumes the whole
    /// document (output non-empty whenever input has a non-blank line).
    #[test]
    fn markdown_consumes_nonblank_input(word in "[a-zA-Z0-9]{1,40}") {
        let html = render(&word);
        prop_assert!(html.contains(&word), "{word} lost in {html}");
    }

    /// Escaping is complete: no raw specials survive in escaped text.
    #[test]
    fn escape_html_is_complete(input in "[ -~]{0,500}") {
        let escaped = escape_html(&input);
        // After removing the escape sequences themselves, no specials remain.
        let stripped = escaped
            .replace("&amp;", "")
            .replace("&lt;", "")
            .replace("&gt;", "")
            .replace("&quot;", "")
            .replace("&#39;", "");
        prop_assert!(!stripped.contains('<'));
        prop_assert!(!stripped.contains('>'));
        prop_assert!(!stripped.contains('&'));
        prop_assert!(!stripped.contains('"'));
        prop_assert!(!stripped.contains('\''));
    }

    /// Plain paragraphs render with proper tags and escaped content.
    #[test]
    fn paragraphs_are_wrapped(text in "[a-zA-Z0-9 ]{1,120}") {
        let trimmed = text.trim();
        prop_assume!(!trimmed.is_empty());
        let html = render(&text);
        prop_assert!(html.starts_with("<p>"), "{html}");
        prop_assert!(html.trim_end().ends_with("</p>"), "{html}");
    }

    /// Compressed images round-trip and decode deterministically for
    /// arbitrary dimensions.
    #[test]
    fn compressed_image_roundtrip(w in 1u32..128, h in 1u32..128, seed in any::<u64>()) {
        let img = CompressedImage::synthetic(w, h, seed, 512);
        let parsed = CompressedImage::parse(&img.encode()).unwrap();
        prop_assert_eq!(&parsed, &img);
        let a = img.decode();
        let b = parsed.decode();
        prop_assert_eq!(a, b);
    }

    /// Box resize output dimensions follow the scale and every channel
    /// average stays inside the source's range.
    #[test]
    fn resize_box_bounds(w in 2u32..96, h in 2u32..96, seed in any::<u64>(), scale in 0.05f64..1.0) {
        let bmp = CompressedImage::synthetic(w, h, seed, 256).decode();
        let out = resize_box(&bmp, scale);
        prop_assert!(out.width >= 1 && out.width <= w);
        prop_assert!(out.height >= 1 && out.height <= h);
        let min = *bmp.data.iter().min().unwrap();
        let max = *bmp.data.iter().max().unwrap();
        prop_assert!(out.data.iter().all(|&b| b >= min && b <= max));
    }

    /// Averaging preserves mean luminance within quantisation error.
    #[test]
    fn resize_box_preserves_luma(w in 8u32..64, h in 8u32..64, seed in any::<u64>()) {
        let bmp = CompressedImage::synthetic(w, h, seed, 256).decode();
        let out = resize_box(&bmp, 0.5);
        prop_assert!((out.mean_luma() - bmp.mean_luma()).abs() < 6.0);
    }

    /// Bilinear resampling hits the requested dimensions exactly and
    /// interpolated values stay within the source range.
    #[test]
    fn bilinear_bounds(w in 2u32..64, h in 2u32..64, ow in 1u32..96, oh in 1u32..96, seed in any::<u64>()) {
        let bmp = CompressedImage::synthetic(w, h, seed, 256).decode();
        let out = resize_bilinear(&bmp, ow, oh);
        prop_assert_eq!((out.width, out.height), (ow, oh));
        let min = *bmp.data.iter().min().unwrap();
        let max = *bmp.data.iter().max().unwrap();
        prop_assert!(out.data.iter().all(|&b| b >= min && b <= max));
    }

    /// Bitmap containers round-trip arbitrary pixel data.
    #[test]
    fn bitmap_roundtrip(w in 1u32..32, h in 1u32..32, fill in any::<u8>()) {
        let mut bmp = Bitmap::new(w, h);
        bmp.data.fill(fill);
        let parsed = Bitmap::parse(&bmp.encode()).unwrap();
        prop_assert_eq!(parsed, bmp);
    }
}
