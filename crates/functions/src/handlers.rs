//! The paper's workload functions as runtime [`Handler`]s.
//!
//! Calibration constants follow DESIGN.md §2: application-specific init
//! and service charges are set so that the vanilla start-up medians land
//! on the paper's Figure 3 (NOOP ≈ 103 ms, Markdown ≈ 100 ms, Image
//! Resizer ≈ 310 ms) and Table 1, while all *structural* costs (RTS,
//! class load, JIT, I/O, restore) flow from the shared cost tables.

use prebake_runtime::http::{Request, Response};
use prebake_runtime::jvm::{Ctx, Handler};
use prebake_sim::cost::per_byte;
use prebake_sim::error::{Errno, SysResult};
use prebake_sim::mem::VirtAddr;
use prebake_sim::time::SimDuration;

use crate::image::{resize_box, working_buffers, Bitmap, CompressedImage};
use crate::markdown::render_page;

/// NOOP framework initialisation (paper Fig. 4: APPINIT ≈ 31 ms).
pub const NOOP_INIT: SimDuration = SimDuration::from_micros(27_800);
/// NOOP post-restore residual re-initialisation (paper Fig. 3: prebaked
/// NOOP starts in ≈ 62 ms, noticeably above its restore floor).
pub const NOOP_ATTACH_RESIDUAL: SimDuration = SimDuration::from_micros(11_000);
/// NOOP request service cost.
pub const NOOP_SERVICE: SimDuration = SimDuration::from_micros(1_000);

/// Markdown framework initialisation beyond library class loading.
pub const MD_INIT: SimDuration = SimDuration::from_micros(13_000);
/// Markdown post-restore residual.
pub const MD_ATTACH_RESIDUAL: SimDuration = SimDuration::from_micros(1_500);
/// Markdown fixed service cost per request.
pub const MD_SERVICE_BASE: SimDuration = SimDuration::from_micros(800);
/// Markdown per-byte render cost (ns per body byte).
pub const MD_SERVICE_NS_PER_BYTE: f64 = 300.0 / 1024.0 * 1000.0; // 0.3 ms/KiB

/// Image Resizer decode cost per pixel (ns). 3440×1440 ≈ 4.95 Mpx makes
/// decode ≈ 224 ms of the paper's ≈ 238 ms APPINIT.
pub const IMG_DECODE_NS_PER_PIXEL: f64 = 45.2;
/// Image Resizer framework initialisation.
pub const IMG_INIT: SimDuration = SimDuration::from_micros(3_000);
/// Image Resizer post-restore residual (re-opening codecs and temp
/// files; calibrated to the paper's ≈87 ms prebaked start).
pub const IMG_ATTACH_RESIDUAL: SimDuration = SimDuration::from_micros(9_500);
/// Image Resizer fixed service cost per request (scaling 4.95 Mpx down
/// to 10 %).
pub const IMG_SERVICE: SimDuration = SimDuration::from_micros(11_000);
/// Number of full-size derived working buffers the decoder keeps.
pub const IMG_WORK_BUFFERS: usize = 4;
/// Extra decoder scratch bytes (tail buffer), sized so the snapshot
/// lands on the paper's 99.2 MB.
pub const IMG_SCRATCH_BYTES: usize = 10_900_000;

/// Synthetic-function framework initialisation.
pub const SYNTH_INIT: SimDuration = SimDuration::from_micros(8_000);
/// Synthetic-function service cost per request (after loading).
pub const SYNTH_SERVICE: SimDuration = SimDuration::from_micros(400);

// ------------------------------------------------------------------ NOOP

/// The paper's "do-nothing" function: returns success to every request.
#[derive(Debug, Default)]
pub struct NoopHandler {
    classes: Vec<String>,
}

impl NoopHandler {
    /// Creates the handler with its (tiny) eager class list.
    pub fn new(classes: Vec<String>) -> NoopHandler {
        NoopHandler { classes }
    }
}

impl Handler for NoopHandler {
    fn name(&self) -> &str {
        "noop"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()> {
        for class in self.classes.clone() {
            ctx.load_class(&class)?;
        }
        ctx.charge(NOOP_INIT);
        Ok(())
    }

    fn attach(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()> {
        ctx.charge(NOOP_ATTACH_RESIDUAL);
        Ok(())
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, _req: &Request) -> SysResult<Response> {
        ctx.charge(NOOP_SERVICE);
        Ok(Response::ok(&b"ok"[..]))
    }
}

// -------------------------------------------------------------- Markdown

/// The Markdown Render function: converts the request body (a Markdown
/// document) into a full HTML page.
#[derive(Debug, Default)]
pub struct MarkdownHandler {
    classes: Vec<String>,
}

impl MarkdownHandler {
    /// Creates the handler with its markdown-library class list.
    pub fn new(classes: Vec<String>) -> MarkdownHandler {
        MarkdownHandler { classes }
    }
}

impl Handler for MarkdownHandler {
    fn name(&self) -> &str {
        "markdown-render"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()> {
        for class in self.classes.clone() {
            ctx.load_class(&class)?;
        }
        ctx.charge(MD_INIT);
        Ok(())
    }

    fn attach(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()> {
        ctx.charge(MD_ATTACH_RESIDUAL);
        Ok(())
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, req: &Request) -> SysResult<Response> {
        ctx.charge(MD_SERVICE_BASE);
        ctx.charge(per_byte(req.body.len() as u64, MD_SERVICE_NS_PER_BYTE));
        let text = std::str::from_utf8(&req.body).map_err(|_| Errno::Einval)?;
        let html = render_page("Rendered", text);
        Ok(Response::ok(html.into_bytes()))
    }
}

// ---------------------------------------------------------- Image Resizer

/// Blob layout: width u32 | height u32 | bitmap guest address u64.
fn encode_img_blob(width: u32, height: u32, addr: VirtAddr) -> Vec<u8> {
    let mut blob = Vec::with_capacity(16);
    blob.extend_from_slice(&width.to_be_bytes());
    blob.extend_from_slice(&height.to_be_bytes());
    blob.extend_from_slice(&addr.0.to_be_bytes());
    blob
}

fn decode_img_blob(blob: &[u8]) -> SysResult<(u32, u32, VirtAddr)> {
    if blob.len() != 16 {
        return Err(Errno::Einval);
    }
    Ok((
        u32::from_be_bytes(blob[0..4].try_into().unwrap()),
        u32::from_be_bytes(blob[4..8].try_into().unwrap()),
        VirtAddr(u64::from_be_bytes(blob[8..16].try_into().unwrap())),
    ))
}

/// The Image Resizer: decodes a ~1 MB 3440×1440 source at start-up into
/// guest heap buffers (the paper's 99.2 MB snapshot) and scales it to
/// 10 % per request with a real box filter.
#[derive(Debug)]
pub struct ImageResizerHandler {
    classes: Vec<String>,
    source_path: String,
}

impl ImageResizerHandler {
    /// Creates the handler; `source_path` is the guest path of the
    /// compressed source image.
    pub fn new(classes: Vec<String>, source_path: impl Into<String>) -> ImageResizerHandler {
        ImageResizerHandler {
            classes,
            source_path: source_path.into(),
        }
    }
}

impl Handler for ImageResizerHandler {
    fn name(&self) -> &str {
        "image-resizer"
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()> {
        for class in self.classes.clone() {
            ctx.load_class(&class)?;
        }
        ctx.charge(IMG_INIT);

        // Read + decode the source (the paper's "loads a 1MB image").
        let compressed_bytes = ctx.read_file(&self.source_path)?;
        let compressed = CompressedImage::parse(&compressed_bytes).map_err(|_| Errno::Einval)?;
        let pixels = compressed.width as u64 * compressed.height as u64;
        ctx.charge(per_byte(pixels, IMG_DECODE_NS_PER_PIXEL));
        let bitmap = compressed.decode();

        // Decoded bitmap lives in the guest heap (captured by snapshots).
        let bmp_addr = ctx.alloc_heap(bitmap.data.len() as u64)?;
        ctx.write_guest(bmp_addr, &bitmap.data)?;

        // Decoder working set: channel planes + scratch.
        for buf in working_buffers(&bitmap, IMG_WORK_BUFFERS) {
            let addr = ctx.alloc_heap(buf.len() as u64)?;
            ctx.write_guest(addr, &buf)?;
        }
        let scratch: Vec<u8> = bitmap
            .data
            .iter()
            .take(IMG_SCRATCH_BYTES)
            .map(|&b| b | 1)
            .collect();
        let scratch_addr = ctx.alloc_heap(scratch.len() as u64)?;
        ctx.write_guest(scratch_addr, &scratch)?;

        ctx.set_app_blob(encode_img_blob(bitmap.width, bitmap.height, bmp_addr));
        Ok(())
    }

    fn attach(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()> {
        // Re-bind to the decoded bitmap the snapshot carried.
        let (w, h, addr) = decode_img_blob(ctx.app_blob())?;
        if w == 0 || h == 0 {
            return Err(Errno::Einval);
        }
        // Sanity-probe the first pixels.
        let head = ctx.read_guest(addr, 16)?;
        if head.iter().all(|&b| b == 0) {
            return Err(Errno::Efault);
        }
        ctx.charge(IMG_ATTACH_RESIDUAL);
        Ok(())
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, _req: &Request) -> SysResult<Response> {
        let (w, h, addr) = decode_img_blob(ctx.app_blob())?;
        let data = ctx.read_guest(addr, 3 * w as u64 * h as u64)?;
        let bitmap = Bitmap {
            width: w,
            height: h,
            data,
        };
        ctx.charge(IMG_SERVICE);
        let scaled = resize_box(&bitmap, 0.1);
        Ok(Response::ok(scaled.encode()))
    }
}

// ---------------------------------------------------------------- Synthetic

/// The synthetic function: loads its entire class set on first
/// invocation, exactly like the paper's "loads a predefined number of
/// classes when invoked".
#[derive(Debug)]
pub struct SyntheticHandler {
    name: String,
    classes: Vec<String>,
}

impl SyntheticHandler {
    /// Creates the handler over the class-name list of its archive.
    pub fn new(name: impl Into<String>, classes: Vec<String>) -> SyntheticHandler {
        SyntheticHandler {
            name: name.into(),
            classes,
        }
    }
}

impl Handler for SyntheticHandler {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()> {
        ctx.charge(SYNTH_INIT);
        Ok(())
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, _req: &Request) -> SysResult<Response> {
        for class in self.classes.clone() {
            ctx.load_class(&class)?;
        }
        ctx.charge(SYNTH_SERVICE);
        Ok(Response::ok(&b"loaded"[..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn img_blob_roundtrip() {
        let blob = encode_img_blob(3440, 1440, VirtAddr(0x1234_5678));
        let (w, h, a) = decode_img_blob(&blob).unwrap();
        assert_eq!((w, h, a), (3440, 1440, VirtAddr(0x1234_5678)));
        assert_eq!(decode_img_blob(&blob[..10]).unwrap_err(), Errno::Einval);
    }

    #[test]
    fn calibration_constants_sane() {
        // APPINIT-ish sums must be in the paper's ballpark; the precise
        // end-to-end check lives in prebake-core's calibration tests.
        let noop_init_ms = std::hint::black_box(NOOP_INIT).as_millis_f64();
        assert!(noop_init_ms < 35.0);
        let decode_ms = std::hint::black_box(IMG_DECODE_NS_PER_PIXEL) * 3440.0 * 1440.0 / 1e6;
        assert!(decode_ms > 150.0);
        assert!(std::hint::black_box(MD_SERVICE_NS_PER_BYTE) > 0.0);
    }
}
