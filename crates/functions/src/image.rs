//! Image decoding and resizing.
//!
//! The paper's heaviest workload loads a 1 MB 3440×1440 image at start-up
//! and scales it to 10 % per request. Real JPEGs are out of scope, so
//! this module implements the same *shape* honestly: a compact "PBIC"
//! compressed source format (seeded procedural base + residual stream,
//! ~1 MB on disk) whose decoder genuinely produces a full RGB bitmap, a
//! raw "PBI" bitmap container, and box-filter / bilinear resizers doing
//! real pixel arithmetic.

use prebake_runtime::gen::SplitMix64;

/// Raw-bitmap magic: `"PBI1"`.
pub const BITMAP_MAGIC: u32 = 0x5042_4931;
/// Compressed-source magic: `"PBIC"`.
pub const COMPRESSED_MAGIC: u32 = 0x5042_4943;

/// Errors decoding image containers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageFormatError {
    /// Input ended early.
    Truncated,
    /// Magic mismatch.
    BadMagic(u32),
    /// Dimensions are zero or implausible.
    BadDimensions {
        /// Declared width.
        width: u32,
        /// Declared height.
        height: u32,
    },
    /// Payload length disagrees with dimensions.
    BadPayload,
}

impl std::fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageFormatError::Truncated => write!(f, "image truncated"),
            ImageFormatError::BadMagic(m) => write!(f, "bad image magic {m:#010x}"),
            ImageFormatError::BadDimensions { width, height } => {
                write!(f, "bad dimensions {width}x{height}")
            }
            ImageFormatError::BadPayload => write!(f, "payload length mismatch"),
        }
    }
}

impl std::error::Error for ImageFormatError {}

/// An RGB8 bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Interleaved RGB bytes, row-major (`3 * width * height` long).
    pub data: Vec<u8>,
}

impl Bitmap {
    /// Allocates a black bitmap.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Bitmap {
        assert!(width > 0 && height > 0, "zero-sized bitmap");
        Bitmap {
            width,
            height,
            data: vec![0u8; (3 * width * height) as usize],
        }
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: u32, y: u32) -> [u8; 3] {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = (3 * (y * self.width + x)) as usize;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = (3 * (y * self.width + x)) as usize;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Serialises to the PBI container.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 16);
        out.extend_from_slice(&BITMAP_MAGIC.to_be_bytes());
        out.extend_from_slice(&self.width.to_be_bytes());
        out.extend_from_slice(&self.height.to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a PBI container.
    ///
    /// # Errors
    ///
    /// Any [`ImageFormatError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<Bitmap, ImageFormatError> {
        if bytes.len() < 12 {
            return Err(ImageFormatError::Truncated);
        }
        let magic = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
        if magic != BITMAP_MAGIC {
            return Err(ImageFormatError::BadMagic(magic));
        }
        let width = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        let height = u32::from_be_bytes(bytes[8..12].try_into().unwrap());
        if width == 0 || height == 0 || width > 1 << 16 || height > 1 << 16 {
            return Err(ImageFormatError::BadDimensions { width, height });
        }
        let expected = (3 * width as usize) * height as usize;
        if bytes.len() - 12 != expected {
            return Err(ImageFormatError::BadPayload);
        }
        Ok(Bitmap {
            width,
            height,
            data: bytes[12..].to_vec(),
        })
    }

    /// Mean luminance (Rec. 601 weights) — used by tests as a resize
    /// invariant: downscaling by averaging must roughly preserve it.
    pub fn mean_luma(&self) -> f64 {
        let mut sum = 0.0f64;
        for px in self.data.chunks_exact(3) {
            sum += 0.299 * px[0] as f64 + 0.587 * px[1] as f64 + 0.114 * px[2] as f64;
        }
        sum / (self.width as f64 * self.height as f64)
    }
}

/// The compressed source image: a seeded procedural base plus a residual
/// stream (~1 MB on disk for the paper's 3440×1440 source). Decoding
/// reconstitutes the full bitmap deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedImage {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Seed of the procedural base layer.
    pub seed: u64,
    /// Residual stream (applied cyclically over the base).
    pub residuals: Vec<u8>,
}

impl CompressedImage {
    /// Builds the paper's source: 3440×1440 with a 1 MiB residual stream.
    pub fn paper_source(seed: u64) -> CompressedImage {
        CompressedImage::synthetic(3440, 1440, seed, 1 << 20)
    }

    /// Builds an arbitrary synthetic source.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn synthetic(width: u32, height: u32, seed: u64, residual_bytes: usize) -> CompressedImage {
        assert!(width > 0 && height > 0, "zero-sized image");
        /// Domain-separation constant so image residual streams never
        /// collide with other SplitMix64 users sharing a seed.
        const RESIDUAL_DOMAIN: u64 = 0x1AA6_E000_0000_0001;
        let mut rng = SplitMix64::new(seed ^ RESIDUAL_DOMAIN);
        CompressedImage {
            width,
            height,
            seed,
            residuals: rng.nonzero_bytes(residual_bytes.max(64)),
        }
    }

    /// Serialises to the PBIC container.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.residuals.len() + 32);
        out.extend_from_slice(&COMPRESSED_MAGIC.to_be_bytes());
        out.extend_from_slice(&self.width.to_be_bytes());
        out.extend_from_slice(&self.height.to_be_bytes());
        out.extend_from_slice(&self.seed.to_be_bytes());
        out.extend_from_slice(&(self.residuals.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.residuals);
        out
    }

    /// Parses a PBIC container.
    ///
    /// # Errors
    ///
    /// Any [`ImageFormatError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<CompressedImage, ImageFormatError> {
        if bytes.len() < 24 {
            return Err(ImageFormatError::Truncated);
        }
        let magic = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
        if magic != COMPRESSED_MAGIC {
            return Err(ImageFormatError::BadMagic(magic));
        }
        let width = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        let height = u32::from_be_bytes(bytes[8..12].try_into().unwrap());
        if width == 0 || height == 0 || width > 1 << 16 || height > 1 << 16 {
            return Err(ImageFormatError::BadDimensions { width, height });
        }
        let seed = u64::from_be_bytes(bytes[12..20].try_into().unwrap());
        let len = u32::from_be_bytes(bytes[20..24].try_into().unwrap()) as usize;
        if bytes.len() - 24 != len {
            return Err(ImageFormatError::BadPayload);
        }
        Ok(CompressedImage {
            width,
            height,
            seed,
            residuals: bytes[24..].to_vec(),
        })
    }

    /// Decodes the full bitmap: procedural gradient base perturbed by the
    /// residual stream. Real per-pixel work, like a real decoder.
    pub fn decode(&self) -> Bitmap {
        let mut bmp = Bitmap::new(self.width, self.height);
        let res = &self.residuals;
        let rlen = res.len();
        let w = self.width as u64;
        let seed8 = (self.seed & 0xFF) as u32;
        let mut idx = 0usize;
        for y in 0..self.height {
            for x in 0..self.width {
                let base_r = (x * 255) / self.width;
                let base_g = (y * 255) / self.height;
                let base_b = ((x as u64 + y as u64 * w) % 255) as u32;
                let r0 = res[idx % rlen] as u32;
                let r1 = res[(idx + 1) % rlen] as u32;
                let r2 = res[(idx + 2) % rlen] as u32;
                idx += 3;
                let px = [
                    (((base_r * 3 + r0 + seed8) / 4) & 0xFF) as u8,
                    (((base_g * 3 + r1) / 4) & 0xFF) as u8,
                    (((base_b * 3 + r2) / 4) & 0xFF) as u8,
                ];
                bmp.set_pixel(x, y, px);
            }
        }
        bmp
    }
}

/// Downscales by integer-area box filtering to `scale` (e.g. `0.1` for
/// the paper's 10 %). Output dimensions round up so they are never zero.
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
pub fn resize_box(src: &Bitmap, scale: f64) -> Bitmap {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
    let out_w = ((src.width as f64 * scale).round() as u32).max(1);
    let out_h = ((src.height as f64 * scale).round() as u32).max(1);
    let mut out = Bitmap::new(out_w, out_h);
    for oy in 0..out_h {
        let y0 = (oy as u64 * src.height as u64 / out_h as u64) as u32;
        let y1 = (((oy + 1) as u64 * src.height as u64).div_ceil(out_h as u64) as u32)
            .min(src.height)
            .max(y0 + 1);
        for ox in 0..out_w {
            let x0 = (ox as u64 * src.width as u64 / out_w as u64) as u32;
            let x1 = (((ox + 1) as u64 * src.width as u64).div_ceil(out_w as u64) as u32)
                .min(src.width)
                .max(x0 + 1);
            let mut acc = [0u64; 3];
            for y in y0..y1 {
                let row = (3 * (y * src.width + x0)) as usize;
                let row_end = (3 * (y * src.width + x1)) as usize;
                for px in src.data[row..row_end].chunks_exact(3) {
                    acc[0] += px[0] as u64;
                    acc[1] += px[1] as u64;
                    acc[2] += px[2] as u64;
                }
            }
            let n = ((x1 - x0) as u64) * ((y1 - y0) as u64);
            out.set_pixel(
                ox,
                oy,
                [(acc[0] / n) as u8, (acc[1] / n) as u8, (acc[2] / n) as u8],
            );
        }
    }
    out
}

/// Bilinear resampling to arbitrary target dimensions.
///
/// # Panics
///
/// Panics if either target dimension is zero.
pub fn resize_bilinear(src: &Bitmap, out_w: u32, out_h: u32) -> Bitmap {
    assert!(out_w > 0 && out_h > 0, "zero-sized target");
    let mut out = Bitmap::new(out_w, out_h);
    let sx = src.width as f64 / out_w as f64;
    let sy = src.height as f64 / out_h as f64;
    for oy in 0..out_h {
        let fy = ((oy as f64 + 0.5) * sy - 0.5).clamp(0.0, (src.height - 1) as f64);
        let y0 = fy.floor() as u32;
        let y1 = (y0 + 1).min(src.height - 1);
        let wy = fy - y0 as f64;
        for ox in 0..out_w {
            let fx = ((ox as f64 + 0.5) * sx - 0.5).clamp(0.0, (src.width - 1) as f64);
            let x0 = fx.floor() as u32;
            let x1 = (x0 + 1).min(src.width - 1);
            let wx = fx - x0 as f64;
            let mut rgb = [0u8; 3];
            for (c, slot) in rgb.iter_mut().enumerate() {
                let p00 = src.pixel(x0, y0)[c] as f64;
                let p10 = src.pixel(x1, y0)[c] as f64;
                let p01 = src.pixel(x0, y1)[c] as f64;
                let p11 = src.pixel(x1, y1)[c] as f64;
                let top = p00 * (1.0 - wx) + p10 * wx;
                let bot = p01 * (1.0 - wx) + p11 * wx;
                *slot = (top * (1.0 - wy) + bot * wy).round().clamp(0.0, 255.0) as u8;
            }
            out.set_pixel(ox, oy, rgb);
        }
    }
    out
}

/// Derives the runtime working buffers a decoder keeps alongside the
/// bitmap (channel planes and scratch) — these are what blow the paper's
/// Image Resizer snapshot up to 99.2 MB. Each buffer is a cheap byte
/// transform of the bitmap so generation stays fast while the bytes stay
/// unique and non-zero.
pub fn working_buffers(bmp: &Bitmap, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let k = 0x35u8.wrapping_add((i as u8) * 0x4F);
            bmp.data
                .iter()
                .map(|&b| {
                    let v = b ^ k;
                    if v == 0 {
                        0x11
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_source() -> CompressedImage {
        CompressedImage::synthetic(64, 48, 7, 4096)
    }

    #[test]
    fn compressed_roundtrip() {
        let c = small_source();
        let back = CompressedImage::parse(&c.encode()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn bitmap_roundtrip() {
        let bmp = small_source().decode();
        let back = Bitmap::parse(&bmp.encode()).unwrap();
        assert_eq!(back, bmp);
    }

    #[test]
    fn decode_is_deterministic() {
        let a = small_source().decode();
        let b = small_source().decode();
        assert_eq!(a, b);
        let c = CompressedImage::synthetic(64, 48, 8, 4096).decode();
        assert_ne!(a, c, "different seed, different image");
    }

    #[test]
    fn paper_source_has_paper_shape() {
        let src = CompressedImage::paper_source(1);
        assert_eq!(src.width, 3440);
        assert_eq!(src.height, 1440);
        let on_disk = src.encode().len();
        assert!(
            (1_000_000..1_100_000).contains(&on_disk),
            "~1MB on disk, got {on_disk}"
        );
    }

    #[test]
    fn decoded_paper_source_is_15mb() {
        // Decode the full source once (also exercises the real decode path
        // at the paper's scale).
        let bmp = CompressedImage::paper_source(2).decode();
        assert_eq!(bmp.data.len(), 3 * 3440 * 1440);
    }

    #[test]
    fn resize_box_ten_percent() {
        let bmp = small_source().decode();
        let out = resize_box(&bmp, 0.1);
        assert_eq!(out.width, 6);
        assert_eq!(out.height, 5);
        // Area averaging approximately preserves mean luminance.
        let delta = (out.mean_luma() - bmp.mean_luma()).abs();
        assert!(delta < 4.0, "luma drifted by {delta}");
    }

    #[test]
    fn resize_box_uniform_stays_uniform() {
        let mut bmp = Bitmap::new(40, 40);
        bmp.data.fill(123);
        let out = resize_box(&bmp, 0.25);
        assert!(out.data.iter().all(|&b| b == 123));
    }

    #[test]
    fn resize_box_identity_scale() {
        let bmp = small_source().decode();
        let out = resize_box(&bmp, 1.0);
        assert_eq!(out, bmp);
    }

    #[test]
    fn resize_box_never_zero_dimensions() {
        let bmp = Bitmap::new(5, 3);
        let out = resize_box(&bmp, 0.01);
        assert_eq!((out.width, out.height), (1, 1));
    }

    #[test]
    fn bilinear_matches_dimensions_and_range() {
        let bmp = small_source().decode();
        let out = resize_bilinear(&bmp, 13, 9);
        assert_eq!((out.width, out.height), (13, 9));
        let delta = (out.mean_luma() - bmp.mean_luma()).abs();
        assert!(delta < 8.0, "luma drifted by {delta}");
    }

    #[test]
    fn bilinear_uniform_stays_uniform() {
        let mut bmp = Bitmap::new(16, 16);
        bmp.data.fill(200);
        let out = resize_bilinear(&bmp, 7, 5);
        assert!(out.data.iter().all(|&b| b == 200));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(Bitmap::parse(&[1, 2, 3]), Err(ImageFormatError::Truncated));
        let mut bytes = Bitmap::new(2, 2).encode();
        bytes[0] = 0;
        assert!(matches!(
            Bitmap::parse(&bytes),
            Err(ImageFormatError::BadMagic(_))
        ));
        let mut bytes = Bitmap::new(2, 2).encode();
        bytes.pop();
        assert_eq!(Bitmap::parse(&bytes), Err(ImageFormatError::BadPayload));
        let mut c = small_source().encode();
        c.truncate(30);
        assert_eq!(
            CompressedImage::parse(&c),
            Err(ImageFormatError::BadPayload)
        );
    }

    #[test]
    fn working_buffers_nonzero_and_distinct() {
        let bmp = small_source().decode();
        let bufs = working_buffers(&bmp, 4);
        assert_eq!(bufs.len(), 4);
        for buf in &bufs {
            assert_eq!(buf.len(), bmp.data.len());
            assert!(buf.iter().all(|&b| b != 0));
        }
        assert_ne!(bufs[0], bufs[1]);
    }

    #[test]
    fn pixel_accessors() {
        let mut bmp = Bitmap::new(4, 4);
        bmp.set_pixel(2, 3, [9, 8, 7]);
        assert_eq!(bmp.pixel(2, 3), [9, 8, 7]);
        assert_eq!(bmp.pixel(0, 0), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_out_of_bounds_panics() {
        Bitmap::new(2, 2).pixel(2, 0);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn bad_scale_panics() {
        resize_box(&Bitmap::new(2, 2), 1.5);
    }
}
