//! Deployable function specifications.
//!
//! A [`FunctionSpec`] bundles everything the platform's Function Builder
//! needs: the class archive, auxiliary resources, runtime configuration
//! and a handler factory. The four constructors mirror the paper's
//! workloads.

use prebake_runtime::archive::Archive;
use prebake_runtime::gen::{synth_class, synth_class_set};
use prebake_runtime::jvm::{Handler, JlvmConfig};
use prebake_runtime::profile::RuntimeProfile;
use prebake_sim::error::SysResult;
use prebake_sim::fs::join_path;
use prebake_sim::kernel::Kernel;

use crate::handlers::{ImageResizerHandler, MarkdownHandler, NoopHandler, SyntheticHandler};
use crate::image::CompressedImage;

/// The paper's synthetic-function sizes (§4.2.2): class count and total
/// archive bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticSize {
    /// 374 classes, ≈2.8 MB.
    Small,
    /// 574 classes, ≈9.2 MB.
    Medium,
    /// 1574 classes, ≈41 MB.
    Big,
}

impl SyntheticSize {
    /// Number of classes.
    pub fn class_count(self) -> usize {
        match self {
            SyntheticSize::Small => 374,
            SyntheticSize::Medium => 574,
            SyntheticSize::Big => 1574,
        }
    }

    /// Target total archive bytes.
    pub fn total_bytes(self) -> usize {
        match self {
            SyntheticSize::Small => 2_800_000,
            SyntheticSize::Medium => 9_200_000,
            SyntheticSize::Big => 41_000_000,
        }
    }

    /// Label used in reports ("small"/"medium"/"big").
    pub fn label(self) -> &'static str {
        match self {
            SyntheticSize::Small => "small",
            SyntheticSize::Medium => "medium",
            SyntheticSize::Big => "big",
        }
    }

    /// All three sizes in the paper's order.
    pub fn all() -> [SyntheticSize; 3] {
        [
            SyntheticSize::Small,
            SyntheticSize::Medium,
            SyntheticSize::Big,
        ]
    }
}

#[derive(Debug, Clone)]
enum Kind {
    Noop,
    Markdown,
    ImageResizer,
    Synthetic(SyntheticSize),
}

/// A ~6 KB Markdown document in the shape of the project README the
/// paper embeds in each Markdown Render request.
pub fn sample_markdown() -> String {
    let mut doc = String::with_capacity(6500);
    doc.push_str("# OpenCore Processor Framework\n\n");
    doc.push_str(
        "An **open-source** research framework for building manycore \
         processors, with [documentation](https://example.org/docs) and a \
         *modular* verification flow.\n\n",
    );
    doc.push_str("## Quick start\n\n```sh\nmake build\nmake test\nmake fpga\n```\n\n");
    doc.push_str("> Tested on the reference configurations only.\n\n---\n\n");
    for section in 1..=10 {
        doc.push_str(&format!("## Subsystem {section}\n\n"));
        doc.push_str(&format!(
            "The subsystem {section} integrates with the **crossbar** and \
             exposes `cfg_reg_{section}` for tuning. It participates in the \
             coherence protocol, forwards *uncacheable* accesses to the \
             memory controller, and reports occupancy counters through the \
             [telemetry bus](https://example.org/telemetry). Typical flows:\n\n",
        ));
        doc.push_str("1. elaborate the design\n2. run the *unit* suite\n3. synthesize\n4. inspect the timing report\n\n");
        doc.push_str(
            "Key properties:\n\n- deterministic resets\n- `O(n log n)` routing\n\
             - validated against the golden model\n- **zero** combinational loops\n\n",
        );
        doc.push_str(&format!(
            "```verilog\nmodule sub{section}(input clk, input rst, output [63:0] out);\n\
             // behavioural stub for documentation purposes\n\
             reg [63:0] counter_q;\n\
             always @(posedge clk) counter_q <= rst ? 64'd0 : counter_q + 64'd{section};\n\
             assign out = counter_q;\nendmodule\n```\n\n",
        ));
        doc.push_str(&format!(
            "> Errata {section}: see the **known issues** list before taping out.\n\n",
        ));
    }
    doc.push_str(
        "## License\n\nReleased under a **permissive** license; see [LICENSE](LICENSE).\n",
    );
    doc
}

/// A deployable function: archive + resources + runtime configuration +
/// handler factory.
#[derive(Debug, Clone)]
pub struct FunctionSpec {
    name: String,
    archive: Archive,
    resources: Vec<(String, Vec<u8>)>,
    lazy_link: bool,
    kind: Kind,
    class_names: Vec<String>,
    runtime: RuntimeProfile,
}

impl FunctionSpec {
    /// The paper's NOOP function.
    pub fn noop() -> FunctionSpec {
        let classes = vec![
            synth_class("noop.Main", 0xA0, 4_000),
            synth_class("noop.Http", 0xA1, 5_000),
        ];
        FunctionSpec {
            name: "noop".into(),
            class_names: classes.iter().map(|c| c.name.clone()).collect(),
            archive: Archive::from_classes(&classes),
            resources: Vec::new(),
            lazy_link: false,
            kind: Kind::Noop,
            runtime: RuntimeProfile::JavaLike,
        }
    }

    /// The paper's Markdown Render function (≈600 KB of library classes).
    pub fn markdown() -> FunctionSpec {
        let mut classes = synth_class_set("md.lib", 0xB0, 12, 580_000);
        classes.push(synth_class("md.Main", 0xB1, 6_000));
        FunctionSpec {
            name: "markdown-render".into(),
            class_names: classes.iter().map(|c| c.name.clone()).collect(),
            archive: Archive::from_classes(&classes),
            resources: Vec::new(),
            lazy_link: false,
            kind: Kind::Markdown,
            runtime: RuntimeProfile::JavaLike,
        }
    }

    /// The paper's Image Resizer: small archive plus the ~1 MB compressed
    /// 3440×1440 source image.
    pub fn image_resizer() -> FunctionSpec {
        let mut classes = synth_class_set("img.lib", 0xC0, 3, 42_000);
        classes.push(synth_class("img.Main", 0xC1, 8_000));
        FunctionSpec {
            name: "image-resizer".into(),
            class_names: classes.iter().map(|c| c.name.clone()).collect(),
            archive: Archive::from_classes(&classes),
            resources: vec![(
                "source.pbic".to_owned(),
                CompressedImage::paper_source(0xD5).encode(),
            )],
            lazy_link: false,
            kind: Kind::ImageResizer,
            runtime: RuntimeProfile::JavaLike,
        }
    }

    /// A synthetic function of the given size (classes load on first
    /// invocation; linking is lazy).
    pub fn synthetic(size: SyntheticSize) -> FunctionSpec {
        let name = format!("synthetic-{}", size.label());
        let classes = synth_class_set(
            &format!("synth.{}", size.label()),
            0xE0 ^ size.class_count() as u64,
            size.class_count(),
            size.total_bytes(),
        );
        FunctionSpec {
            class_names: classes.iter().map(|c| c.name.clone()).collect(),
            archive: Archive::from_classes(&classes),
            resources: Vec::new(),
            lazy_link: true,
            kind: Kind::Synthetic(size),
            runtime: RuntimeProfile::JavaLike,
            name,
        }
    }

    /// Function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class archive.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// Names of all classes in the archive, in load order.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Whether the application links lazily on first request.
    pub fn lazy_link(&self) -> bool {
        self.lazy_link
    }

    /// The synthetic size, if this is one of the §4.2.2 functions.
    pub fn synthetic_size(&self) -> Option<SyntheticSize> {
        match self.kind {
            Kind::Synthetic(size) => Some(size),
            _ => None,
        }
    }

    /// The runtime flavour replicas of this function boot
    /// ([`RuntimeProfile::JavaLike`] unless overridden).
    pub fn runtime(&self) -> RuntimeProfile {
        self.runtime
    }

    /// Re-targets the function at a different runtime flavour (the §7
    /// future-work exploration: Node.JS- and Python-like runtimes).
    pub fn with_runtime(mut self, runtime: RuntimeProfile) -> FunctionSpec {
        self.runtime = runtime;
        self
    }

    /// Renames the function (deploying many copies of one workload under
    /// distinct names, e.g. for multi-tenant platform experiments).
    pub fn with_name(mut self, name: impl Into<String>) -> FunctionSpec {
        self.name = name.into();
        self
    }

    /// Installs the function's artifacts under `app_dir` on a guest
    /// filesystem: `fn.jlar` plus `assets/*`. Returns the archive path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn install(&self, kernel: &mut Kernel, app_dir: &str) -> SysResult<String> {
        kernel.fs_create_dir_all(app_dir)?;
        let archive_path = join_path(app_dir, "fn.jlar");
        kernel.fs_write_file(&archive_path, self.archive.encode())?;
        if !self.resources.is_empty() {
            let assets = join_path(app_dir, "assets");
            kernel.fs_create_dir_all(&assets)?;
            for (name, data) in &self.resources {
                kernel.fs_write_file(&join_path(&assets, name), data.clone())?;
            }
        }
        Ok(archive_path)
    }

    /// Builds the runtime configuration for a replica of this function.
    pub fn jlvm_config(&self, app_dir: &str, port: u16) -> JlvmConfig {
        let mut config = JlvmConfig::new(join_path(app_dir, "fn.jlar"), port);
        config.lazy_link = self.lazy_link;
        config.costs = self.runtime.costs();
        config
    }

    /// Instantiates the handler for a replica living under `app_dir`.
    pub fn make_handler(&self, app_dir: &str) -> Box<dyn Handler> {
        match &self.kind {
            Kind::Noop => Box::new(NoopHandler::new(self.class_names.clone())),
            Kind::Markdown => Box::new(MarkdownHandler::new(self.class_names.clone())),
            Kind::ImageResizer => Box::new(ImageResizerHandler::new(
                self.class_names.clone(),
                join_path(&join_path(app_dir, "assets"), "source.pbic"),
            )),
            Kind::Synthetic(_) => Box::new(SyntheticHandler::new(
                self.name.clone(),
                self.class_names.clone(),
            )),
        }
    }

    /// A representative request for this function (the paper embeds a
    /// markdown document in Markdown Render requests; others ping `/`).
    pub fn sample_request(&self) -> prebake_runtime::http::Request {
        match self.kind {
            Kind::Markdown => {
                prebake_runtime::http::Request::with_body(sample_markdown().into_bytes())
            }
            _ => prebake_runtime::http::Request::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sizes_match_paper() {
        assert_eq!(SyntheticSize::Small.class_count(), 374);
        assert_eq!(SyntheticSize::Medium.class_count(), 574);
        assert_eq!(SyntheticSize::Big.class_count(), 1574);
        assert_eq!(SyntheticSize::all().len(), 3);
    }

    #[test]
    fn small_synthetic_archive_close_to_2_8mb() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let bytes = spec.archive().payload_bytes() as f64;
        let ratio = bytes / 2_800_000.0;
        assert!((0.85..1.15).contains(&ratio), "archive {bytes} bytes");
        assert_eq!(spec.class_names().len(), 374);
        assert!(spec.lazy_link());
    }

    #[test]
    fn noop_is_tiny() {
        let spec = FunctionSpec::noop();
        assert!(spec.archive().payload_bytes() < 32_000);
        assert!(!spec.lazy_link());
        assert_eq!(spec.name(), "noop");
    }

    #[test]
    fn markdown_archive_about_600kb() {
        let spec = FunctionSpec::markdown();
        let bytes = spec.archive().payload_bytes();
        assert!((450_000..750_000).contains(&bytes), "{bytes}");
    }

    #[test]
    fn image_resizer_ships_1mb_source() {
        let spec = FunctionSpec::image_resizer();
        let (name, data) = &spec.resources[0];
        assert_eq!(name, "source.pbic");
        assert!(
            (1_000_000..1_100_000).contains(&data.len()),
            "{}",
            data.len()
        );
    }

    #[test]
    fn install_writes_artifacts() {
        let mut kernel = Kernel::free(1);
        let spec = FunctionSpec::image_resizer();
        let archive_path = spec.install(&mut kernel, "/app/image-resizer").unwrap();
        assert_eq!(archive_path, "/app/image-resizer/fn.jlar");
        assert!(kernel.fs_exists("/app/image-resizer/fn.jlar"));
        assert!(kernel.fs_exists("/app/image-resizer/assets/source.pbic"));
    }

    #[test]
    fn jlvm_config_carries_lazy_link() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let config = spec.jlvm_config("/app/s", 8080);
        assert!(config.lazy_link);
        assert_eq!(config.archive_path, "/app/s/fn.jlar");
        assert_eq!(config.port, 8080);
    }

    #[test]
    fn sample_markdown_is_a_realistic_document() {
        let doc = sample_markdown();
        assert!(doc.len() > 4_000, "doc is {} bytes", doc.len());
        assert!(doc.contains("# OpenCore"));
        assert!(doc.contains("```"));
        let html = crate::markdown::render(&doc);
        assert!(html.contains("<h1>"));
        assert!(html.contains("<pre><code"));
    }

    #[test]
    fn sample_request_shapes() {
        assert!(FunctionSpec::noop().sample_request().body.is_empty());
        assert!(!FunctionSpec::markdown().sample_request().body.is_empty());
    }

    #[test]
    fn make_handler_names_match() {
        let noop = FunctionSpec::noop();
        assert_eq!(noop.make_handler("/app/noop").name(), "noop");
        let synth = FunctionSpec::synthetic(SyntheticSize::Medium);
        assert_eq!(synth.make_handler("/app/s").name(), "synthetic-medium");
    }
}
