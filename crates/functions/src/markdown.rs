//! A real Markdown → HTML renderer.
//!
//! The paper's second workload "converts a markdown to an HTML page"
//! (embedding a project README in each request). This is a from-scratch
//! renderer covering the constructs such documents use: ATX headings,
//! paragraphs, fenced code blocks, unordered/ordered lists, blockquotes,
//! horizontal rules, and the inline span grammar (emphasis, strong, code,
//! links), with full HTML escaping.

/// Escapes HTML-special characters in text content.
pub fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// Renders inline spans: `` `code` ``, `**strong**`, `*em*`,
/// `[text](url)`; everything else is escaped text.
fn render_inline(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len() + 16);
    let mut i = 0usize;

    while i < chars.len() {
        match chars[i] {
            '`' => {
                // inline code: find the closing backtick
                if let Some(end) = find_char(&chars, i + 1, '`') {
                    let code: String = chars[i + 1..end].iter().collect();
                    out.push_str("<code>");
                    out.push_str(&escape_html(&code));
                    out.push_str("</code>");
                    i = end + 1;
                } else {
                    out.push('`');
                    i += 1;
                }
            }
            '*' => {
                let strong = i + 1 < chars.len() && chars[i + 1] == '*';
                if strong {
                    if let Some(end) = find_pair(&chars, i + 2) {
                        let inner: String = chars[i + 2..end].iter().collect();
                        out.push_str("<strong>");
                        out.push_str(&render_inline(&inner));
                        out.push_str("</strong>");
                        i = end + 2;
                        continue;
                    }
                } else if let Some(end) = find_char(&chars, i + 1, '*') {
                    let inner: String = chars[i + 1..end].iter().collect();
                    if !inner.is_empty() {
                        out.push_str("<em>");
                        out.push_str(&render_inline(&inner));
                        out.push_str("</em>");
                        i = end + 1;
                        continue;
                    }
                }
                out.push('*');
                i += 1;
            }
            '[' => {
                // [text](url)
                if let Some(close) = find_char(&chars, i + 1, ']') {
                    if close + 1 < chars.len() && chars[close + 1] == '(' {
                        if let Some(paren) = find_char(&chars, close + 2, ')') {
                            let label: String = chars[i + 1..close].iter().collect();
                            let url: String = chars[close + 2..paren].iter().collect();
                            out.push_str("<a href=\"");
                            out.push_str(&escape_html(&url));
                            out.push_str("\">");
                            out.push_str(&render_inline(&label));
                            out.push_str("</a>");
                            i = paren + 1;
                            continue;
                        }
                    }
                }
                out.push('[');
                i += 1;
            }
            ch => {
                match ch {
                    '&' => out.push_str("&amp;"),
                    '<' => out.push_str("&lt;"),
                    '>' => out.push_str("&gt;"),
                    '"' => out.push_str("&quot;"),
                    '\'' => out.push_str("&#39;"),
                    other => out.push(other),
                }
                i += 1;
            }
        }
    }
    out
}

fn find_char(chars: &[char], from: usize, needle: char) -> Option<usize> {
    chars[from..]
        .iter()
        .position(|&c| c == needle)
        .map(|p| p + from)
}

/// Finds the next `**` starting at `from`.
fn find_pair(chars: &[char], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < chars.len() {
        if chars[i] == '*' && chars[i + 1] == '*' {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[derive(Debug, PartialEq, Eq)]
enum ListKind {
    Unordered,
    Ordered,
}

/// Renders a Markdown document to an HTML fragment.
///
/// # Examples
///
/// ```
/// use prebake_functions::markdown::render;
///
/// let html = render("# Title\n\nHello **world**.");
/// assert_eq!(html, "<h1>Title</h1>\n<p>Hello <strong>world</strong>.</p>\n");
/// ```
pub fn render(input: &str) -> String {
    let lines: Vec<&str> = input.lines().collect();
    let mut out = String::with_capacity(input.len() * 2);
    let mut i = 0usize;

    while i < lines.len() {
        let line = lines[i];
        let trimmed = line.trim_start();

        // blank line
        if trimmed.is_empty() {
            i += 1;
            continue;
        }

        // fenced code block
        if let Some(info) = trimmed.strip_prefix("```") {
            let lang = info.trim();
            let mut body = String::new();
            i += 1;
            while i < lines.len() && !lines[i].trim_start().starts_with("```") {
                body.push_str(lines[i]);
                body.push('\n');
                i += 1;
            }
            i += 1; // skip closing fence (or EOF)
            if lang.is_empty() {
                out.push_str("<pre><code>");
            } else {
                out.push_str(&format!(
                    "<pre><code class=\"language-{}\">",
                    escape_html(lang)
                ));
            }
            out.push_str(&escape_html(&body));
            out.push_str("</code></pre>\n");
            continue;
        }

        // ATX heading
        if trimmed.starts_with('#') {
            let level = trimmed.chars().take_while(|&c| c == '#').count();
            if level <= 6 {
                let rest = trimmed[level..].trim();
                // Headings require a space after the hashes (or be bare).
                if trimmed.chars().nth(level).is_none_or(|c| c == ' ') {
                    out.push_str(&format!("<h{level}>{}</h{level}>\n", render_inline(rest)));
                    i += 1;
                    continue;
                }
            }
        }

        // horizontal rule
        if trimmed.chars().all(|c| c == '-' || c == ' ') && trimmed.matches('-').count() >= 3 {
            out.push_str("<hr />\n");
            i += 1;
            continue;
        }

        // blockquote
        if trimmed.starts_with('>') {
            let mut inner = String::new();
            while i < lines.len() {
                let t = lines[i].trim_start();
                if let Some(rest) = t.strip_prefix('>') {
                    inner.push_str(rest.strip_prefix(' ').unwrap_or(rest));
                    inner.push('\n');
                    i += 1;
                } else {
                    break;
                }
            }
            out.push_str("<blockquote>\n");
            out.push_str(&render(&inner));
            out.push_str("</blockquote>\n");
            continue;
        }

        // lists
        if let Some(kind) = list_item(trimmed) {
            let tag = match kind {
                ListKind::Unordered => "ul",
                ListKind::Ordered => "ol",
            };
            out.push_str(&format!("<{tag}>\n"));
            while i < lines.len() {
                let t = lines[i].trim_start();
                match (list_item(t), &kind) {
                    (Some(ListKind::Unordered), ListKind::Unordered) => {
                        let item = t[2..].trim_start();
                        out.push_str(&format!("<li>{}</li>\n", render_inline(item)));
                        i += 1;
                    }
                    (Some(ListKind::Ordered), ListKind::Ordered) => {
                        let dot = t.find('.').expect("ordered item has a dot");
                        let item = t[dot + 1..].trim_start();
                        out.push_str(&format!("<li>{}</li>\n", render_inline(item)));
                        i += 1;
                    }
                    _ => break,
                }
            }
            out.push_str(&format!("</{tag}>\n"));
            continue;
        }

        // paragraph: gather until a blank line or a structural line. The
        // first line is always consumed, even if it *looks* structural —
        // it reached here because every structural branch rejected it
        // (e.g. `#######` has too many hashes) — otherwise the loop over
        // `lines` would never advance.
        let para_start = i;
        let mut para = String::new();
        while i < lines.len() {
            let t = lines[i].trim_start();
            let structural = t.is_empty()
                || t.starts_with('#')
                || t.starts_with("```")
                || t.starts_with('>')
                || list_item(t).is_some();
            if structural && i > para_start {
                break;
            }
            if !para.is_empty() {
                para.push(' ');
            }
            para.push_str(lines[i].trim());
            i += 1;
        }
        out.push_str(&format!("<p>{}</p>\n", render_inline(&para)));
    }
    out
}

fn list_item(trimmed: &str) -> Option<ListKind> {
    if (trimmed.starts_with("- ") || trimmed.starts_with("* ") || trimmed.starts_with("+ "))
        && trimmed.len() > 2
    {
        return Some(ListKind::Unordered);
    }
    let digits = trimmed.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits > 0 && trimmed[digits..].starts_with(". ") {
        return Some(ListKind::Ordered);
    }
    None
}

/// Wraps a rendered fragment into a complete HTML page (what the function
/// returns over HTTP).
pub fn render_page(title: &str, input: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html><head><title>{}</title></head><body>\n{}</body></html>\n",
        escape_html(title),
        render(input)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headings_levels() {
        assert_eq!(render("# One"), "<h1>One</h1>\n");
        assert_eq!(render("###### Six"), "<h6>Six</h6>\n");
        assert_eq!(render("####### Seven"), "<p>####### Seven</p>\n");
    }

    #[test]
    fn paragraph_joining() {
        assert_eq!(
            render("line one\nline two\n\nnext para"),
            "<p>line one line two</p>\n<p>next para</p>\n"
        );
    }

    #[test]
    fn emphasis_and_strong() {
        assert_eq!(render("*em*"), "<p><em>em</em></p>\n");
        assert_eq!(render("**bold**"), "<p><strong>bold</strong></p>\n");
        assert_eq!(
            render("**bold with *nested* em**"),
            "<p><strong>bold with <em>nested</em> em</strong></p>\n"
        );
        assert_eq!(render("a * b"), "<p>a * b</p>\n", "lone star is literal");
    }

    #[test]
    fn inline_code_not_parsed_further() {
        assert_eq!(
            render("use `**raw**` here"),
            "<p>use <code>**raw**</code> here</p>\n"
        );
        assert_eq!(render("`a < b`"), "<p><code>a &lt; b</code></p>\n");
    }

    #[test]
    fn links() {
        assert_eq!(
            render("[CRIU](https://criu.org/)"),
            "<p><a href=\"https://criu.org/\">CRIU</a></p>\n"
        );
        assert_eq!(
            render("[broken link("),
            "<p>[broken link(</p>\n",
            "unclosed link is literal"
        );
    }

    #[test]
    fn fenced_code_block() {
        let html = render("```rust\nfn main() { println!(\"<hi>\"); }\n```");
        assert_eq!(
            html,
            "<pre><code class=\"language-rust\">fn main() { println!(&quot;&lt;hi&gt;&quot;); }\n</code></pre>\n"
        );
        let plain = render("```\nx < y\n```");
        assert!(plain.starts_with("<pre><code>"), "{plain}");
    }

    #[test]
    fn unclosed_fence_consumes_rest() {
        let html = render("```\nno close");
        assert_eq!(html, "<pre><code>no close\n</code></pre>\n");
    }

    #[test]
    fn unordered_list() {
        assert_eq!(
            render("- a\n- b\n* c"),
            "<ul>\n<li>a</li>\n<li>b</li>\n<li>c</li>\n</ul>\n"
        );
    }

    #[test]
    fn ordered_list() {
        assert_eq!(
            render("1. first\n2. second"),
            "<ol>\n<li>first</li>\n<li>second</li>\n</ol>\n"
        );
    }

    #[test]
    fn mixed_list_kinds_split() {
        let html = render("- a\n1. b");
        assert_eq!(html, "<ul>\n<li>a</li>\n</ul>\n<ol>\n<li>b</li>\n</ol>\n");
    }

    #[test]
    fn blockquote_recurses() {
        assert_eq!(
            render("> # quoted heading\n> and text"),
            "<blockquote>\n<h1>quoted heading</h1>\n<p>and text</p>\n</blockquote>\n"
        );
    }

    #[test]
    fn horizontal_rule() {
        assert_eq!(render("---"), "<hr />\n");
        assert_eq!(render("- - -"), "<hr />\n");
    }

    #[test]
    fn escaping_everywhere() {
        assert_eq!(
            render("a < b & c > d \"quoted\""),
            "<p>a &lt; b &amp; c &gt; d &quot;quoted&quot;</p>\n"
        );
        assert_eq!(render("# <script>"), "<h1>&lt;script&gt;</h1>\n");
        let link = render("[x](javascript:\"evil\")");
        assert!(link.contains("javascript:&quot;evil&quot;"), "{link}");
    }

    #[test]
    fn escape_html_covers_all_specials() {
        assert_eq!(escape_html("<>&\"'"), "&lt;&gt;&amp;&quot;&#39;");
        assert_eq!(escape_html("plain"), "plain");
    }

    #[test]
    fn page_wrapper() {
        let page = render_page("T & T", "# hi");
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("<title>T &amp; T</title>"));
        assert!(page.contains("<h1>hi</h1>"));
        assert!(page.ends_with("</body></html>\n"));
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(render(""), "");
        assert_eq!(render("\n\n\n"), "");
    }

    #[test]
    fn realistic_document_renders_all_constructs() {
        let doc = "\
# Project\n\
\n\
A **systems** project with [docs](https://example.com).\n\
\n\
## Build\n\
\n\
```sh\nmake all\n```\n\
\n\
Steps:\n\
\n\
1. configure\n\
2. compile\n\
\n\
> Note: *experimental*.\n\
\n\
---\n\
\n\
- fast\n\
- small\n";
        let html = render(doc);
        for needle in [
            "<h1>Project</h1>",
            "<h2>Build</h2>",
            "<strong>systems</strong>",
            "<a href=\"https://example.com\">docs</a>",
            "<pre><code class=\"language-sh\">make all",
            "<ol>",
            "<li>configure</li>",
            "<blockquote>",
            "<em>experimental</em>",
            "<hr />",
            "<ul>",
            "<li>fast</li>",
        ] {
            assert!(html.contains(needle), "missing {needle} in:\n{html}");
        }
    }
}
