//! # prebake-functions
//!
//! The paper's workload functions, implemented as real programs over the
//! JLVM runtime:
//!
//! - **NOOP** — returns success to every request (the paper's lower bound
//!   for prebaking gains: ≈40 %).
//! - **Markdown Render** — converts a Markdown document into an HTML page
//!   with a from-scratch [`markdown`] renderer (paper: ≈47 % gain).
//! - **Image Resizer** — decodes a ~1 MB 3440×1440 source into ≈86 MB of
//!   guest buffers at start-up and box-filters it to 10 % per request
//!   ([`image`]; paper: ≈71 % gain, 99.2 MB snapshot).
//! - **Synthetic functions** — small/medium/big class sets (374/574/1574
//!   classes, 2.8/9.2/41 MB) loaded lazily on the first invocation, for
//!   the paper's sensitivity analysis (Fig. 5/6, Table 1).
//!
//! [`FunctionSpec`] packages each one into a deployable unit the platform
//! and benches consume.

#![warn(missing_docs)]

pub mod handlers;
pub mod image;
pub mod markdown;
pub mod spec;

pub use handlers::{ImageResizerHandler, MarkdownHandler, NoopHandler, SyntheticHandler};
pub use image::{resize_bilinear, resize_box, Bitmap, CompressedImage};
pub use markdown::{render, render_page};
pub use spec::{sample_markdown, FunctionSpec, SyntheticSize};
