//! Property tests for the class-file, archive and state codecs.

use proptest::prelude::*;

use prebake_runtime::archive::Archive;
use prebake_runtime::classfile::ClassFile;
use prebake_runtime::gen::{synth_class, synth_class_set};
use prebake_runtime::state::{ClassEntry, Phase, RuntimeState};

proptest! {
    /// Every generated class encodes, parses back identically, and
    /// passes verification — for arbitrary seeds and sizes.
    #[test]
    fn generated_classes_roundtrip_and_verify(
        seed in any::<u64>(),
        size in 128usize..64_000,
    ) {
        let class = synth_class("prop.Class", seed, size);
        class.verify().unwrap();
        let bytes = class.encode();
        let parsed = ClassFile::parse(&bytes).unwrap();
        prop_assert_eq!(&parsed, &class);
        parsed.verify().unwrap();
    }

    /// Flipping any single byte of an encoded class makes parsing fail
    /// (the FNV checksum is sensitive to every byte).
    #[test]
    fn any_single_byte_flip_detected(
        seed in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let class = synth_class("prop.Flip", seed, 2048);
        let mut bytes = class.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(ClassFile::parse(&bytes).is_err(), "corruption at {pos} undetected");
    }

    /// Archives round-trip for arbitrary entry sets, and entry offsets
    /// always point at the right payload.
    #[test]
    fn archive_roundtrip_and_offsets(
        entries in prop::collection::btree_map("[a-zA-Z0-9._]{1,24}", prop::collection::vec(any::<u8>(), 0..2048), 0..12),
    ) {
        let mut archive = Archive::new();
        for (name, data) in &entries {
            archive.add(name.clone(), data.clone());
        }
        let encoded = archive.encode();
        let parsed = Archive::parse(&encoded).unwrap();
        prop_assert_eq!(&parsed, &archive);
        for (name, data) in &entries {
            let (off, len) = archive.entry_offset(name).unwrap();
            prop_assert_eq!(&encoded[off as usize..(off + len) as usize], &data[..]);
        }
    }

    /// Class-set generation always produces valid, named, loadable sets.
    #[test]
    fn class_sets_always_valid(seed in any::<u64>(), count in 1usize..40, total in 4096usize..400_000) {
        let set = synth_class_set("prop.set", seed, count, total);
        prop_assert_eq!(set.len(), count);
        let archive = Archive::from_classes(&set);
        for class in &set {
            class.verify().unwrap();
            prop_assert!(archive.get(&class.name).is_some());
        }
    }

    /// The runtime-state record round-trips for arbitrary contents.
    #[test]
    fn runtime_state_roundtrip(
        port in any::<u16>(),
        fd in -1i32..1000,
        flags in any::<[bool; 3]>(),
        served in any::<u64>(),
        cursors in any::<[u32; 8]>(),
        classes in prop::collection::vec(("[a-z.]{1,30}", any::<u32>(), any::<bool>()), 0..50),
        blob in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut state = RuntimeState::new(port);
        state.phase = if flags[0] { Phase::Ready } else { Phase::Booting };
        state.listener_fd = fd;
        state.app_inited = flags[1];
        state.lazy_linked = flags[2];
        state.requests_served = served;
        state.heap_base = cursors[0] as u64;
        state.heap_cursor = cursors[1] as u64;
        state.metaspace_base = cursors[2] as u64;
        state.metaspace_cursor = cursors[3] as u64;
        state.code_cache_base = cursors[4] as u64;
        state.code_cache_cursor = cursors[5] as u64;
        state.jar_base = cursors[6] as u64;
        state.jar_len = cursors[7] as u64;
        state.classes = classes
            .into_iter()
            .map(|(name, size, jitted)| ClassEntry { name, size, jitted })
            .collect();
        state.app_blob = blob;

        let parsed = RuntimeState::parse(&state.encode()).unwrap();
        prop_assert_eq!(parsed, state);
    }

    /// State corruption is always detected.
    #[test]
    fn state_corruption_detected(pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let mut state = RuntimeState::new(8080);
        state.classes.push(ClassEntry { name: "a.B".into(), size: 9, jitted: true });
        let mut bytes = state.encode();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        prop_assert!(RuntimeState::parse(&bytes).is_err());
    }
}
