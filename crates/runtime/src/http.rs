//! Minimal HTTP request/response model.
//!
//! The paper's functions sit behind an embedded HTTP server "as usually
//! employed in commercial FaaS providers"; the platform's watchdog speaks
//! this shape to the replica.

use bytes::Bytes;

/// An inbound function invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request path (`/` for plain invocations).
    pub path: String,
    /// Request body (e.g. the markdown document to render).
    pub body: Bytes,
}

impl Request {
    /// A bodyless GET-style request to `/`.
    pub fn empty() -> Request {
        Request {
            path: "/".to_owned(),
            body: Bytes::new(),
        }
    }

    /// A request to `/` carrying `body`.
    pub fn with_body(body: impl Into<Bytes>) -> Request {
        Request {
            path: "/".to_owned(),
            body: body.into(),
        }
    }
}

/// A function response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP-style status code.
    pub status: u16,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// A `200 OK` response with `body`.
    pub fn ok(body: impl Into<Bytes>) -> Response {
        Response {
            status: 200,
            body: body.into(),
        }
    }

    /// An empty error response with the given status.
    pub fn error(status: u16) -> Response {
        Response {
            status,
            body: Bytes::new(),
        }
    }

    /// Returns `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = Request::empty();
        assert_eq!(r.path, "/");
        assert!(r.body.is_empty());
        let r = Request::with_body("hello".as_bytes().to_vec());
        assert_eq!(&r.body[..], b"hello");
    }

    #[test]
    fn response_predicates() {
        assert!(Response::ok("x".as_bytes().to_vec()).is_success());
        assert!(!Response::error(500).is_success());
        assert_eq!(Response::error(404).status, 404);
    }
}
