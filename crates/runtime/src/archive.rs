//! The JLAR application archive: the deployable artifact holding a
//! function's class files (the "jar" the Function Builder produces).

use std::collections::BTreeMap;
use std::fmt;

use crate::classfile::{fnv1a, ClassFile};

/// Format magic: `"JLAR"`.
pub const ARCHIVE_MAGIC: u32 = 0x4A4C_4152;
/// Current format version.
pub const ARCHIVE_VERSION: u16 = 1;

/// Errors produced while parsing an archive.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchiveError {
    /// Input ended before a declared structure.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
    /// Trailing checksum mismatch.
    BadChecksum,
    /// An entry name was not valid UTF-8.
    BadName,
    /// Two entries share a name.
    DuplicateEntry(String),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Truncated => write!(f, "archive truncated"),
            ArchiveError::BadMagic(m) => write!(f, "bad archive magic {m:#010x}"),
            ArchiveError::BadVersion(v) => write!(f, "unsupported archive version {v}"),
            ArchiveError::BadChecksum => write!(f, "archive checksum mismatch"),
            ArchiveError::BadName => write!(f, "entry name is not valid utf-8"),
            ArchiveError::DuplicateEntry(name) => write!(f, "duplicate entry {name}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

/// An in-memory application archive: named class-file entries in
/// insertion order, with an O(log n) name index.
///
/// # Examples
///
/// ```
/// use prebake_runtime::archive::Archive;
/// use prebake_runtime::gen::synth_class;
///
/// let mut a = Archive::new();
/// let class = synth_class("com.example.Main", 1, 1024);
/// a.add_class(&class);
/// let bytes = a.encode();
/// let back = Archive::parse(&bytes).unwrap();
/// assert_eq!(back.len(), 1);
/// assert!(back.get("com.example.Main").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Archive {
    entries: Vec<(String, Vec<u8>)>,
    index: BTreeMap<String, usize>,
}

impl Archive {
    /// An empty archive.
    pub fn new() -> Self {
        Archive::default()
    }

    /// Adds a raw entry. Replaces any entry with the same name.
    pub fn add(&mut self, name: impl Into<String>, data: Vec<u8>) {
        let name = name.into();
        if let Some(&i) = self.index.get(&name) {
            self.entries[i].1 = data;
        } else {
            self.index.insert(name.clone(), self.entries.len());
            self.entries.push((name, data));
        }
    }

    /// Adds an encoded class file under its class name.
    pub fn add_class(&mut self, class: &ClassFile) {
        self.add(class.name.clone(), class.encode());
    }

    /// Looks up an entry's bytes by name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.index.get(name).map(|&i| self.entries[i].1.as_slice())
    }

    /// Entry names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the archive has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of entry payload sizes.
    pub fn payload_bytes(&self) -> u64 {
        self.entries.iter().map(|(_, d)| d.len() as u64).sum()
    }

    /// Serialises the archive (with trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() as usize + 64);
        out.extend_from_slice(&ARCHIVE_MAGIC.to_be_bytes());
        out.extend_from_slice(&ARCHIVE_VERSION.to_be_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for (name, data) in &self.entries {
            out.extend_from_slice(&(name.len() as u16).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u32).to_be_bytes());
            out.extend_from_slice(data);
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_be_bytes());
        out
    }

    /// Parses an archive image.
    ///
    /// # Errors
    ///
    /// Any [`ArchiveError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<Archive, ArchiveError> {
        if bytes.len() < 18 {
            return Err(ArchiveError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_be_bytes(tail.try_into().unwrap());
        if fnv1a(payload) != declared {
            return Err(ArchiveError::BadChecksum);
        }
        let magic = u32::from_be_bytes(payload[0..4].try_into().unwrap());
        if magic != ARCHIVE_MAGIC {
            return Err(ArchiveError::BadMagic(magic));
        }
        let version = u16::from_be_bytes(payload[4..6].try_into().unwrap());
        if version != ARCHIVE_VERSION {
            return Err(ArchiveError::BadVersion(version));
        }
        let count = u32::from_be_bytes(payload[6..10].try_into().unwrap());
        let mut pos = 10usize;
        let mut archive = Archive::new();
        for _ in 0..count {
            if pos + 2 > payload.len() {
                return Err(ArchiveError::Truncated);
            }
            let name_len = u16::from_be_bytes(payload[pos..pos + 2].try_into().unwrap()) as usize;
            pos += 2;
            if pos + name_len + 4 > payload.len() {
                return Err(ArchiveError::Truncated);
            }
            let name = std::str::from_utf8(&payload[pos..pos + name_len])
                .map_err(|_| ArchiveError::BadName)?
                .to_owned();
            pos += name_len;
            let data_len = u32::from_be_bytes(payload[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + data_len > payload.len() {
                return Err(ArchiveError::Truncated);
            }
            if archive.get(&name).is_some() {
                return Err(ArchiveError::DuplicateEntry(name));
            }
            archive.add(name, payload[pos..pos + data_len].to_vec());
            pos += data_len;
        }
        if pos != payload.len() {
            return Err(ArchiveError::Truncated);
        }
        Ok(archive)
    }

    /// Byte range `(offset, len)` of an entry's payload within the
    /// *encoded* archive image. The runtime uses this to read individual
    /// class files straight out of the memory-mapped archive.
    pub fn entry_offset(&self, name: &str) -> Option<(u64, u64)> {
        let mut pos = 10u64; // magic + version + count
        for (entry_name, data) in &self.entries {
            pos += 2 + entry_name.len() as u64 + 4;
            if entry_name == name {
                return Some((pos, data.len() as u64));
            }
            pos += data.len() as u64;
        }
        None
    }

    /// Builds an archive from a set of class files.
    pub fn from_classes<'a>(classes: impl IntoIterator<Item = &'a ClassFile>) -> Archive {
        let mut a = Archive::new();
        for c in classes {
            a.add_class(c);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::synth_class_set;

    fn sample() -> Archive {
        let classes = synth_class_set("pkg", 11, 5, 20_000);
        Archive::from_classes(&classes)
    }

    #[test]
    fn roundtrip() {
        let a = sample();
        let bytes = a.encode();
        let back = Archive::parse(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.len(), 5);
    }

    #[test]
    fn get_by_name() {
        let a = sample();
        let name = a.names().next().unwrap().to_owned();
        assert!(a.get(&name).is_some());
        assert!(a.get("no.such.Class").is_none());
    }

    #[test]
    fn add_replaces_same_name() {
        let mut a = Archive::new();
        a.add("x", vec![1]);
        a.add("x", vec![2, 3]);
        assert_eq!(a.len(), 1);
        assert_eq!(a.get("x").unwrap(), &[2, 3]);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x55;
        assert_eq!(Archive::parse(&bytes), Err(ArchiveError::BadChecksum));
    }

    #[test]
    fn truncated_detected() {
        let bytes = sample().encode();
        assert_eq!(Archive::parse(&bytes[..10]), Err(ArchiveError::Truncated));
    }

    #[test]
    fn empty_archive_roundtrip() {
        let a = Archive::new();
        assert!(a.is_empty());
        let back = Archive::parse(&a.encode()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.payload_bytes(), 0);
    }

    #[test]
    fn payload_bytes_counts_entries_only() {
        let mut a = Archive::new();
        a.add("a", vec![0; 100]);
        a.add("b", vec![0; 50]);
        assert_eq!(a.payload_bytes(), 150);
        assert!(a.encode().len() > 150, "encoding adds framing");
    }

    #[test]
    fn entry_offset_points_at_payload() {
        let a = sample();
        let encoded = a.encode();
        for name in a.names() {
            let (off, len) = a.entry_offset(name).unwrap();
            let slice = &encoded[off as usize..(off + len) as usize];
            assert_eq!(slice, a.get(name).unwrap(), "offset wrong for {name}");
        }
        assert!(a.entry_offset("missing").is_none());
    }

    #[test]
    fn classes_parse_back_from_archive() {
        let classes = synth_class_set("pkg2", 3, 4, 8_000);
        let a = Archive::from_classes(&classes);
        for c in &classes {
            let bytes = a.get(&c.name).unwrap();
            let parsed = crate::classfile::ClassFile::parse(bytes).unwrap();
            assert_eq!(&parsed, c);
        }
    }
}
