//! The JLVM: a managed-runtime process model.
//!
//! A [`Jlvm`] owns the runtime side of one guest process: the bootstrap
//! (RTS) sequence, the memory-mapped application archive, lazy class
//! loading with real parsing/verification, a lazy JIT, and the in-guest
//! [`RuntimeState`] record that makes checkpoints behaviourally faithful.
//! A [`Replica`] pairs a `Jlvm` with an application [`Handler`] and drives
//! the paper's lifecycle: boot → ready → serve (or, on the prebake path,
//! restore → attach → serve).

use prebake_sim::cost::per_byte;
use prebake_sim::error::{Errno, SysResult};
use prebake_sim::kernel::Kernel;
use prebake_sim::mem::{Prot, VirtAddr, VmaKind};
use prebake_sim::proc::Pid;
use prebake_sim::time::SimDuration;

use crate::archive::Archive;
use crate::classfile::{fnv1a, ClassFile};
use crate::costs::RuntimeCosts;
use crate::gen::SplitMix64;
use crate::http::{Request, Response};
use crate::state::{ClassEntry, Phase, RuntimeState, STATE_BASE, STATE_REGION_LEN};

/// Reserved (not necessarily touched) size of the runtime heap region.
pub const HEAP_REGION_LEN: u64 = 256 << 20;
/// Reserved size of the metaspace region.
pub const METASPACE_REGION_LEN: u64 = 128 << 20;
/// Reserved size of the JIT code cache region.
pub const CODE_CACHE_REGION_LEN: u64 = 64 << 20;

/// Configuration of one runtime instance.
#[derive(Debug, Clone)]
pub struct JlvmConfig {
    /// Guest path of the application archive (the "jar").
    pub archive_path: String,
    /// Port the embedded HTTP server binds.
    pub port: u16,
    /// Cost table.
    pub costs: RuntimeCosts,
    /// Whether the application defers linking to its first request (the
    /// paper's synthetic functions). Charges `lazy_link_init` once.
    pub lazy_link: bool,
}

impl JlvmConfig {
    /// A paper-calibrated configuration.
    pub fn new(archive_path: impl Into<String>, port: u16) -> JlvmConfig {
        JlvmConfig {
            archive_path: archive_path.into(),
            port,
            costs: RuntimeCosts::paper_calibrated(),
            lazy_link: false,
        }
    }
}

/// A running managed-runtime instance inside one guest process.
#[derive(Debug)]
pub struct Jlvm {
    pid: Pid,
    config: JlvmConfig,
    state: RuntimeState,
    archive: Option<Archive>,
}

impl Jlvm {
    /// Boots a fresh runtime in process `pid`: the paper's RTS phase
    /// (≈70 ms: core init, heap arenas, service threads), touching the
    /// base memory footprint that makes a NOOP snapshot ≈13 MB.
    ///
    /// Emits the `rts-start` and `main-entry` trace markers.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (bad pid, address-space exhaustion).
    pub fn boot(kernel: &mut Kernel, pid: Pid, config: JlvmConfig) -> SysResult<Jlvm> {
        kernel.emit_marker(pid, "rts-start");
        let costs = config.costs.clone();
        let mut state = RuntimeState::new(config.port);

        // Core runtime init + JIT code cache (interpreter stubs, intrinsics).
        kernel.charge(costs.rts_core_init);
        let code_cache =
            kernel.sys_mmap(pid, CODE_CACHE_REGION_LEN, Prot::RWX, VmaKind::CodeCache)?;
        let stubs = pattern_bytes(0xC0DE, costs.base_footprint.code_cache_touch as usize);
        kernel.mem_write(pid, code_cache, &stubs)?;
        state.code_cache_base = code_cache.0;
        state.code_cache_cursor = stubs.len() as u64;

        // Heap arenas. The young generation is tiled rather than fully
        // random: real heaps carry many byte-identical pages (zeroed-out
        // allocation buffers, repeated object headers), which is what the
        // snapshot dedup view collapses.
        kernel.charge(costs.rts_heap_init);
        let heap = kernel.sys_mmap(pid, HEAP_REGION_LEN, Prot::RW, VmaKind::RuntimeHeap)?;
        let young = tiled_pattern_bytes(0x48EA, costs.base_footprint.heap_touch as usize, 4);
        kernel.mem_write(pid, heap, &young)?;
        state.heap_base = heap.0;
        state.heap_cursor = young.len() as u64;

        // Service threads + core-class metadata.
        kernel.charge(costs.rts_services_init);
        let metaspace = kernel.sys_mmap(pid, METASPACE_REGION_LEN, Prot::RW, VmaKind::Metaspace)?;
        let core_meta = pattern_bytes(0x4D45, costs.base_footprint.metaspace_touch as usize);
        kernel.mem_write(pid, metaspace, &core_meta)?;
        state.metaspace_base = metaspace.0;
        state.metaspace_cursor = core_meta.len() as u64;

        // The well-known state region.
        kernel.sys_mmap_fixed(pid, STATE_BASE, STATE_REGION_LEN, Prot::RW, VmaKind::Anon)?;

        let mut jvm = Jlvm {
            pid,
            config,
            state,
            archive: None,
        };
        jvm.persist_state(kernel)?;
        kernel.emit_marker(pid, "main-entry");
        Ok(jvm)
    }

    /// Re-attaches to a process restored from a snapshot: reads the
    /// in-guest state record back and rebuilds the host-side view (parsed
    /// archive index) from guest memory. No class loading, JIT or RTS work
    /// happens here — whatever the snapshot carried is what exists.
    ///
    /// # Errors
    ///
    /// [`Errno::Einval`] if the state region does not hold a valid record.
    pub fn attach(kernel: &mut Kernel, pid: Pid, config: JlvmConfig) -> SysResult<Jlvm> {
        let header = kernel.mem_read(pid, STATE_BASE, 4)?;
        let len = u32::from_be_bytes(header.try_into().unwrap()) as u64;
        if len == 0 || len > STATE_REGION_LEN - 4 {
            return Err(Errno::Einval);
        }
        let record = kernel.mem_read(pid, STATE_BASE.add(4), len)?;
        let state = RuntimeState::parse(&record).map_err(|_| Errno::Einval)?;

        let archive = if state.jar_base != 0 {
            let jar = kernel.mem_read(pid, VirtAddr(state.jar_base), state.jar_len)?;
            Some(Archive::parse(&jar).map_err(|_| Errno::Einval)?)
        } else {
            None
        };
        Ok(Jlvm {
            pid,
            config,
            state,
            archive,
        })
    }

    /// The guest process this runtime lives in.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The current (host-mirrored) runtime state.
    pub fn state(&self) -> &RuntimeState {
        &self.state
    }

    /// The runtime configuration.
    pub fn config(&self) -> &JlvmConfig {
        &self.config
    }

    /// Maps and reads the application archive (APPINIT step one): the
    /// archive file is read (cold on a fresh container), its bytes land in
    /// a file-backed mapping — which is exactly why a snapshot taken after
    /// boot carries them, letting restored replicas skip the read — and
    /// the central index is parsed.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if the archive is missing, [`Errno::Einval`] if
    /// it is corrupt.
    pub fn load_archive(&mut self, kernel: &mut Kernel) -> SysResult<()> {
        let bytes = kernel.fs_read_file(&self.config.archive_path)?;
        let len = bytes.len() as u64;
        let base = kernel.sys_mmap(
            self.pid,
            len.max(1),
            Prot::RW,
            VmaKind::File {
                path: self.config.archive_path.clone(),
                offset: 0,
            },
        )?;
        kernel.mem_write(self.pid, base, &bytes)?;
        let archive = Archive::parse(&bytes).map_err(|_| Errno::Einval)?;
        kernel.charge(self.config.costs.archive_index_per_entry * archive.len() as u64);
        self.state.jar_base = base.0;
        self.state.jar_len = len;
        self.archive = Some(archive);
        Ok(())
    }

    /// Loads one class by name: reads its bytes out of the mapped archive,
    /// parses and verifies them (real work), installs the expanded
    /// representation into the metaspace, and records the class in guest
    /// state. Returns `false` if it was already loaded.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] for an unknown class, [`Errno::Einval`] for a
    /// corrupt one or a missing archive.
    pub fn load_class(&mut self, kernel: &mut Kernel, name: &str) -> SysResult<bool> {
        if self.state.class(name).is_some() {
            self.touch_class(kernel, name)?;
            return Ok(false);
        }
        let archive = self.archive.as_ref().ok_or(Errno::Einval)?;
        let (off, len) = archive.entry_offset(name).ok_or(Errno::Enoent)?;
        let bytes = kernel.mem_read(self.pid, VirtAddr(self.state.jar_base + off), len)?;
        let class = ClassFile::parse(&bytes).map_err(|_| Errno::Einval)?;
        class.verify().map_err(|_| Errno::Einval)?;
        let costs = &self.config.costs;
        kernel.charge(per_byte(
            len,
            costs.class_parse_ns_per_byte + costs.class_verify_ns_per_byte,
        ));

        // Install the parsed representation: the raw bytes plus a header
        // expansion (method tables, resolved pool) — `metaspace_expansion`×.
        let extra = ((costs.metaspace_expansion - 1.0).max(0.0) * len as f64) as usize;
        let mut repr = bytes;
        repr.extend(pattern_bytes(fnv1a(name.as_bytes()), extra));
        let addr = self.alloc_metaspace(repr.len() as u64)?;
        kernel.mem_write(self.pid, addr, &repr)?;

        self.state.classes.push(ClassEntry {
            name: name.to_owned(),
            size: len as u32,
            jitted: false,
        });
        Ok(true)
    }

    /// JIT-compiles one loaded class: charges compile cost proportional to
    /// class size and writes the generated code into the code cache.
    /// Returns `false` if already compiled.
    ///
    /// # Errors
    ///
    /// [`Errno::Enoent`] if the class is not loaded.
    pub fn jit_class(&mut self, kernel: &mut Kernel, name: &str) -> SysResult<bool> {
        let costs = self.config.costs.clone();
        let entry = self.state.class(name).ok_or(Errno::Enoent)?;
        if entry.jitted {
            return Ok(false);
        }
        let size = entry.size as u64;
        kernel.charge(per_byte(size, costs.jit_compile_ns_per_byte));
        let code_len = ((size as f64) * costs.code_cache_expansion) as usize;
        let code = pattern_bytes(fnv1a(name.as_bytes()) ^ 0x4A49_5400, code_len.max(64));
        let addr = self.alloc_code_cache(code.len() as u64)?;
        kernel.mem_write(self.pid, addr, &code)?;
        self.state.class_mut(name).unwrap().jitted = true;
        Ok(true)
    }

    /// JIT-compiles every loaded-but-uncompiled class (what the first
    /// executed request triggers). Returns how many classes were compiled.
    ///
    /// # Errors
    ///
    /// Propagates [`jit_class`](Jlvm::jit_class) errors.
    pub fn jit_pending(&mut self, kernel: &mut Kernel) -> SysResult<usize> {
        let pending: Vec<String> = self
            .state
            .classes
            .iter()
            .filter(|c| !c.jitted)
            .map(|c| c.name.clone())
            .collect();
        for name in &pending {
            self.jit_class(kernel, name)?;
        }
        Ok(pending.len())
    }

    /// Binds the HTTP listener and marks the runtime ready (end of
    /// APPINIT). Emits the `ready` marker.
    ///
    /// # Errors
    ///
    /// [`Errno::Eaddrinuse`] if the port is bound.
    pub fn serve_ready(&mut self, kernel: &mut Kernel) -> SysResult<()> {
        kernel.charge(self.config.costs.http_server_init);
        let fd = kernel.sys_listen(self.pid, self.config.port)?;
        self.state.listener_fd = fd;
        self.state.app_inited = true;
        self.state.phase = Phase::Ready;
        self.persist_state(kernel)?;
        kernel.emit_marker(self.pid, "ready");
        Ok(())
    }

    /// Allocates `len` bytes (64-byte aligned) from the runtime heap,
    /// returning the guest address.
    ///
    /// # Errors
    ///
    /// [`Errno::Enomem`] if the heap region is exhausted.
    pub fn alloc_heap(&mut self, len: u64) -> SysResult<VirtAddr> {
        let aligned = (self.state.heap_cursor + 63) & !63;
        if aligned + len > HEAP_REGION_LEN {
            return Err(Errno::Enomem);
        }
        self.state.heap_cursor = aligned + len;
        Ok(VirtAddr(self.state.heap_base + aligned))
    }

    /// Re-executes an already-loaded class: the guest reads the head of
    /// its metaspace representation (method table, resolved pool) and
    /// jumps into its jitted code, so a demand-paged restore takes the
    /// faults a warm request really takes. Present pages cost nothing —
    /// only the paging activity is charged, by the kernel.
    ///
    /// Both caches are deterministic bump allocators and every
    /// allocation happens in `state.classes` order (`jit_pending`
    /// compiles in load order), so the addresses are recomputed by
    /// replaying the cursors rather than widening the state record.
    fn touch_class(&mut self, kernel: &mut Kernel, name: &str) -> SysResult<()> {
        let costs = &self.config.costs;
        let page = prebake_sim::mem::PAGE_SIZE as u64;
        let mut meta_cursor = 0u64;
        let mut code_cursor = 0u64;
        for entry in &self.state.classes {
            let len = entry.size as u64;
            let extra = ((costs.metaspace_expansion - 1.0).max(0.0) * len as f64) as usize as u64;
            let repr_len = len + extra;
            let meta_off = (meta_cursor + 63) & !63;
            meta_cursor = meta_off + repr_len;
            let code_len = (((len as f64) * costs.code_cache_expansion) as usize).max(64) as u64;
            let code_off = (code_cursor + 63) & !63;
            if entry.jitted {
                code_cursor = code_off + code_len;
            }
            if entry.name == name {
                kernel.mem_touch(
                    self.pid,
                    VirtAddr(self.state.metaspace_base + meta_off),
                    repr_len.min(page),
                )?;
                if entry.jitted {
                    kernel.mem_touch(
                        self.pid,
                        VirtAddr(self.state.code_cache_base + code_off),
                        code_len.min(page),
                    )?;
                }
                return Ok(());
            }
        }
        Ok(())
    }

    fn alloc_metaspace(&mut self, len: u64) -> SysResult<VirtAddr> {
        let aligned = (self.state.metaspace_cursor + 63) & !63;
        if aligned + len > METASPACE_REGION_LEN {
            return Err(Errno::Enomem);
        }
        self.state.metaspace_cursor = aligned + len;
        Ok(VirtAddr(self.state.metaspace_base + aligned))
    }

    fn alloc_code_cache(&mut self, len: u64) -> SysResult<VirtAddr> {
        let aligned = (self.state.code_cache_cursor + 63) & !63;
        if aligned + len > CODE_CACHE_REGION_LEN {
            return Err(Errno::Enomem);
        }
        self.state.code_cache_cursor = aligned + len;
        Ok(VirtAddr(self.state.code_cache_base + aligned))
    }

    /// Writes the state record into the guest state region.
    ///
    /// # Errors
    ///
    /// [`Errno::Enomem`] if the record outgrew the region.
    pub fn persist_state(&mut self, kernel: &mut Kernel) -> SysResult<()> {
        let record = self.state.encode();
        if 4 + record.len() as u64 > STATE_REGION_LEN {
            return Err(Errno::Enomem);
        }
        let mut framed = Vec::with_capacity(4 + record.len());
        framed.extend_from_slice(&(record.len() as u32).to_be_bytes());
        framed.extend_from_slice(&record);
        kernel.mem_write(self.pid, STATE_BASE, &framed)
    }
}

/// Deterministic non-zero filler bytes (so guest pages defeat zero-page
/// dedup, like real runtime data).
pub fn pattern_bytes(tag: u64, len: usize) -> Vec<u8> {
    SplitMix64::new(tag).nonzero_bytes(len)
}

/// As [`pattern_bytes`], but repeating with a period of `period_pages`
/// pages: pages beyond the first period are byte-identical to their
/// counterpart in it. Models memory regions where whole pages recur —
/// the duplicate content a content-addressed snapshot view dedups.
pub fn tiled_pattern_bytes(tag: u64, len: usize, period_pages: usize) -> Vec<u8> {
    let period = period_pages.max(1) * prebake_sim::mem::PAGE_SIZE;
    let tile = pattern_bytes(tag, period.min(len));
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let take = (len - out.len()).min(tile.len());
        out.extend_from_slice(&tile[..take]);
    }
    out
}

/// The view handed to application [`Handler`]s: scoped access to the
/// runtime and the kernel.
#[derive(Debug)]
pub struct Ctx<'a> {
    jvm: &'a mut Jlvm,
    kernel: &'a mut Kernel,
}

impl<'a> Ctx<'a> {
    /// Creates a context over a runtime and its kernel.
    pub fn new(jvm: &'a mut Jlvm, kernel: &'a mut Kernel) -> Ctx<'a> {
        Ctx { jvm, kernel }
    }

    /// The guest pid.
    pub fn pid(&self) -> Pid {
        self.jvm.pid
    }

    /// Charges application-level work to the clock.
    pub fn charge(&mut self, d: SimDuration) {
        self.kernel.charge(d);
    }

    /// Loads a class (idempotent). See [`Jlvm::load_class`].
    ///
    /// # Errors
    ///
    /// Propagates [`Jlvm::load_class`] errors.
    pub fn load_class(&mut self, name: &str) -> SysResult<bool> {
        self.jvm.load_class(self.kernel, name)
    }

    /// Allocates guest heap memory.
    ///
    /// # Errors
    ///
    /// [`Errno::Enomem`] if the heap region is exhausted.
    pub fn alloc_heap(&mut self, len: u64) -> SysResult<VirtAddr> {
        self.jvm.alloc_heap(len)
    }

    /// Writes guest memory (charged).
    ///
    /// # Errors
    ///
    /// Propagates kernel memory errors.
    pub fn write_guest(&mut self, addr: VirtAddr, bytes: &[u8]) -> SysResult<()> {
        self.kernel.mem_write(self.jvm.pid, addr, bytes)
    }

    /// Reads guest memory (charged).
    ///
    /// # Errors
    ///
    /// Propagates kernel memory errors.
    pub fn read_guest(&mut self, addr: VirtAddr, len: u64) -> SysResult<Vec<u8>> {
        self.kernel.mem_read(self.jvm.pid, addr, len)
    }

    /// Reads a file from the guest filesystem (charged cold/warm).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn read_file(&mut self, path: &str) -> SysResult<bytes::Bytes> {
        self.kernel.fs_read_file(path)
    }

    /// The application's opaque state blob (guest-persisted).
    pub fn app_blob(&self) -> &[u8] {
        &self.jvm.state.app_blob
    }

    /// Replaces the application blob. Persisted with the next state write.
    pub fn set_app_blob(&mut self, blob: Vec<u8>) {
        self.jvm.state.app_blob = blob;
    }

    /// The runtime cost table.
    pub fn costs(&self) -> &RuntimeCosts {
        &self.jvm.config.costs
    }

    /// Number of requests served so far (0 during `init`).
    pub fn requests_served(&self) -> u64 {
        self.jvm.state.requests_served
    }
}

/// An application handler: the function's business logic.
///
/// Handlers run inside the replica process. `init` executes during
/// APPINIT (before the function is ready); `attach` executes after a
/// snapshot restore instead of `init`; `handle` serves one request.
pub trait Handler {
    /// Function name (for routing and diagnostics).
    fn name(&self) -> &str;

    /// Application initialisation (APPINIT): load classes, read resources,
    /// allocate buffers.
    ///
    /// # Errors
    ///
    /// Returns a kernel error if initialisation fails.
    fn init(&mut self, ctx: &mut Ctx<'_>) -> SysResult<()>;

    /// Re-binds host-side pointers after a snapshot restore. The default
    /// re-reads nothing (stateless handlers).
    ///
    /// # Errors
    ///
    /// Returns a kernel error if re-attachment fails.
    fn attach(&mut self, _ctx: &mut Ctx<'_>) -> SysResult<()> {
        Ok(())
    }

    /// Serves one request.
    ///
    /// # Errors
    ///
    /// Returns a kernel error on failure (mapped to HTTP 500 upstream).
    fn handle(&mut self, ctx: &mut Ctx<'_>, req: &Request) -> SysResult<Response>;
}

impl std::fmt::Debug for dyn Handler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handler({})", self.name())
    }
}

/// A function replica: one runtime plus one application handler.
#[derive(Debug)]
pub struct Replica {
    jvm: Jlvm,
    handler: Box<dyn Handler>,
}

impl Replica {
    /// Boots a replica from scratch (the vanilla path): RTS, archive
    /// load, handler `init`, listener bind. On return the replica is
    /// ready to serve.
    ///
    /// # Errors
    ///
    /// Propagates runtime and handler errors.
    pub fn boot(
        kernel: &mut Kernel,
        pid: Pid,
        config: JlvmConfig,
        mut handler: Box<dyn Handler>,
    ) -> SysResult<Replica> {
        let mut jvm = Jlvm::boot(kernel, pid, config)?;
        jvm.load_archive(kernel)?;
        {
            let mut ctx = Ctx::new(&mut jvm, kernel);
            handler.init(&mut ctx)?;
        }
        jvm.serve_ready(kernel)?;
        Ok(Replica { jvm, handler })
    }

    /// Attaches to a restored process (the prebake path): reads guest
    /// state back and lets the handler re-bind its pointers. No RTS, no
    /// class loading, no JIT.
    ///
    /// # Errors
    ///
    /// Propagates runtime and handler errors.
    pub fn attach(
        kernel: &mut Kernel,
        pid: Pid,
        config: JlvmConfig,
        mut handler: Box<dyn Handler>,
    ) -> SysResult<Replica> {
        let mut jvm = Jlvm::attach(kernel, pid, config)?;
        {
            let mut ctx = Ctx::new(&mut jvm, kernel);
            handler.attach(&mut ctx)?;
        }
        Ok(Replica { jvm, handler })
    }

    /// The underlying runtime.
    pub fn jvm(&self) -> &Jlvm {
        &self.jvm
    }

    /// The guest pid.
    pub fn pid(&self) -> Pid {
        self.jvm.pid
    }

    /// Returns `true` once the replica can serve requests.
    pub fn is_ready(&self) -> bool {
        self.jvm.state.phase == Phase::Ready
    }

    /// Serves one request: accept, one-time lazy link, handler execution,
    /// JIT of any classes the request pulled in, state persistence.
    ///
    /// # Errors
    ///
    /// [`Errno::Enotconn`] if the replica is not ready; handler errors
    /// propagate.
    pub fn handle(&mut self, kernel: &mut Kernel, req: &Request) -> SysResult<Response> {
        if self.jvm.state.phase != Phase::Ready {
            return Err(Errno::Enotconn);
        }
        kernel.socket_accept(self.jvm.config.port)?;
        if self.jvm.state.requests_served == 0 {
            kernel.emit_marker(self.jvm.pid, "first-request");
        }
        if self.jvm.config.lazy_link && !self.jvm.state.lazy_linked {
            let cost = self.jvm.config.costs.lazy_link_init;
            kernel.charge(cost);
            self.jvm.state.lazy_linked = true;
        }
        let resp = {
            let mut ctx = Ctx::new(&mut self.jvm, kernel);
            self.handler.handle(&mut ctx, req)?
        };
        // First execution of freshly loaded classes triggers the JIT.
        self.jvm.jit_pending(kernel)?;
        self.jvm.state.requests_served += 1;
        self.jvm.persist_state(kernel)?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::synth_class_set;
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::PAGE_SIZE;

    /// A trivial handler that loads `lazy` classes on first request.
    struct TestHandler {
        lazy: Vec<String>,
        inits: usize,
        attaches: usize,
    }

    impl Handler for TestHandler {
        fn name(&self) -> &str {
            "test"
        }
        fn init(&mut self, _ctx: &mut Ctx<'_>) -> SysResult<()> {
            self.inits += 1;
            Ok(())
        }
        fn attach(&mut self, _ctx: &mut Ctx<'_>) -> SysResult<()> {
            self.attaches += 1;
            Ok(())
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _req: &Request) -> SysResult<Response> {
            for name in self.lazy.clone() {
                ctx.load_class(&name)?;
            }
            Ok(Response::ok("ok".as_bytes().to_vec()))
        }
    }

    fn setup(lazy_link: bool) -> (Kernel, Pid, JlvmConfig, Vec<String>) {
        let mut kernel = Kernel::free(1);
        let classes = synth_class_set("app", 5, 6, 30_000);
        let names: Vec<String> = classes.iter().map(|c| c.name.clone()).collect();
        let archive = Archive::from_classes(&classes);
        kernel.fs_create_dir_all("/app").unwrap();
        kernel
            .fs_write_file("/app/fn.jlar", archive.encode())
            .unwrap();
        kernel
            .fs_write_file("/bin/jlvm", vec![0x7F; 512 << 10])
            .ok();
        kernel.fs_create_dir_all("/bin").unwrap();
        kernel
            .fs_write_file("/bin/jlvm", vec![0x7F; 512 << 10])
            .unwrap();
        let pid = kernel.sys_clone(INIT_PID).unwrap();
        kernel.sys_execve(pid, "/bin/jlvm", &[]).unwrap();
        let mut config = JlvmConfig::new("/app/fn.jlar", 8080);
        config.costs = RuntimeCosts::free();
        config.lazy_link = lazy_link;
        (kernel, pid, config, names)
    }

    #[test]
    fn boot_touches_base_footprint() {
        let (mut kernel, pid, config, _) = setup(false);
        let footprint = config.costs.base_footprint.total();
        let jvm = Jlvm::boot(&mut kernel, pid, config).unwrap();
        let resident = kernel.process(pid).unwrap().mem.resident_bytes();
        assert!(
            resident >= footprint,
            "resident {resident} < footprint {footprint}"
        );
        assert_eq!(jvm.state().phase, Phase::Booting);
    }

    #[test]
    fn replica_lifecycle_and_lazy_loading() {
        let (mut kernel, pid, config, names) = setup(false);
        let handler = Box::new(TestHandler {
            lazy: names.clone(),
            inits: 0,
            attaches: 0,
        });
        let mut replica = Replica::boot(&mut kernel, pid, config, handler).unwrap();
        assert!(replica.is_ready());
        assert_eq!(replica.jvm().state().classes.len(), 0, "lazy: none yet");

        let resp = replica.handle(&mut kernel, &Request::empty()).unwrap();
        assert!(resp.is_success());
        let st = replica.jvm().state();
        assert_eq!(st.classes.len(), names.len());
        assert!(st.classes.iter().all(|c| c.jitted), "first use JITs");
        assert_eq!(st.requests_served, 1);

        // Second request: nothing new to load or compile.
        replica.handle(&mut kernel, &Request::empty()).unwrap();
        assert_eq!(replica.jvm().state().requests_served, 2);
    }

    #[test]
    fn handle_before_ready_fails() {
        let (mut kernel, pid, config, _) = setup(false);
        let mut jvm = Jlvm::boot(&mut kernel, pid, config).unwrap();
        jvm.load_archive(&mut kernel).unwrap();
        let mut replica = Replica {
            jvm,
            handler: Box::new(TestHandler {
                lazy: vec![],
                inits: 0,
                attaches: 0,
            }),
        };
        assert_eq!(
            replica.handle(&mut kernel, &Request::empty()).unwrap_err(),
            Errno::Enotconn
        );
    }

    #[test]
    fn load_class_is_idempotent_and_fills_metaspace() {
        let (mut kernel, pid, config, names) = setup(false);
        let mut jvm = Jlvm::boot(&mut kernel, pid, config).unwrap();
        jvm.load_archive(&mut kernel).unwrap();
        let before = jvm.state().metaspace_cursor;
        assert!(jvm.load_class(&mut kernel, &names[0]).unwrap());
        let after = jvm.state().metaspace_cursor;
        assert!(after > before);
        assert!(!jvm.load_class(&mut kernel, &names[0]).unwrap());
        assert_eq!(jvm.state().metaspace_cursor, after, "no double install");
        assert_eq!(
            jvm.load_class(&mut kernel, "no.such.Class").unwrap_err(),
            Errno::Enoent
        );
    }

    #[test]
    fn jit_requires_loaded_class() {
        let (mut kernel, pid, config, names) = setup(false);
        let mut jvm = Jlvm::boot(&mut kernel, pid, config).unwrap();
        jvm.load_archive(&mut kernel).unwrap();
        assert_eq!(
            jvm.jit_class(&mut kernel, &names[0]).unwrap_err(),
            Errno::Enoent
        );
        jvm.load_class(&mut kernel, &names[0]).unwrap();
        assert!(jvm.jit_class(&mut kernel, &names[0]).unwrap());
        assert!(!jvm.jit_class(&mut kernel, &names[0]).unwrap());
    }

    #[test]
    fn lazy_link_charged_once() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;
        let (_, _, _, names) = setup(false);
        // fresh kernel with calibrated runtime costs but free OS costs, so
        // the only charge we see is lazy_link_init.
        let mut kernel = Kernel::with_config(CostModel::free(), Noise::disabled());
        kernel.fs_create_dir_all("/app").unwrap();
        let classes = synth_class_set("app", 5, 6, 30_000);
        let archive = Archive::from_classes(&classes);
        kernel
            .fs_write_file("/app/fn.jlar", archive.encode())
            .unwrap();
        kernel.fs_create_dir_all("/bin").unwrap();
        kernel.fs_write_file("/bin/jlvm", vec![1u8; 1024]).unwrap();
        let pid = kernel.sys_clone(INIT_PID).unwrap();
        let mut config = JlvmConfig::new("/app/fn.jlar", 8080);
        config.costs = RuntimeCosts::free();
        config.costs.lazy_link_init = SimDuration::from_millis(35);
        config.lazy_link = true;
        let handler = Box::new(TestHandler {
            lazy: names,
            inits: 0,
            attaches: 0,
        });
        let mut replica = Replica::boot(&mut kernel, pid, config, handler).unwrap();
        let t0 = kernel.now();
        replica.handle(&mut kernel, &Request::empty()).unwrap();
        let first = kernel.now() - t0;
        let t1 = kernel.now();
        replica.handle(&mut kernel, &Request::empty()).unwrap();
        let second = kernel.now() - t1;
        assert!(first.as_millis_f64() >= 35.0, "first {first}");
        assert!(second.as_millis_f64() < 1.0, "second {second}");
    }

    #[test]
    fn state_survives_persist_and_attach_in_same_process() {
        let (mut kernel, pid, config, names) = setup(false);
        let handler = Box::new(TestHandler {
            lazy: names.clone(),
            inits: 0,
            attaches: 0,
        });
        let mut replica = Replica::boot(&mut kernel, pid, config.clone(), handler).unwrap();
        replica.handle(&mut kernel, &Request::empty()).unwrap();
        let expect = replica.jvm().state().clone();

        // Attach a second host-side view to the same guest (as restore
        // does after reinstating memory).
        let reread = Jlvm::attach(&mut kernel, pid, config).unwrap();
        assert_eq!(reread.state(), &expect);
    }

    #[test]
    fn alloc_heap_alignment_and_exhaustion() {
        let (mut kernel, pid, config, _) = setup(false);
        let mut jvm = Jlvm::boot(&mut kernel, pid, config).unwrap();
        let a = jvm.alloc_heap(10).unwrap();
        let b = jvm.alloc_heap(10).unwrap();
        assert_eq!(a.0 % 64, 0);
        assert_eq!(b.0 % 64, 0);
        assert!(b.0 >= a.0 + 10);
        assert_eq!(jvm.alloc_heap(HEAP_REGION_LEN).unwrap_err(), Errno::Enomem);
    }

    #[test]
    fn pattern_bytes_nonzero_and_deterministic() {
        let a = pattern_bytes(7, 3 * PAGE_SIZE);
        let b = pattern_bytes(7, 3 * PAGE_SIZE);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x != 0));
        assert_ne!(pattern_bytes(8, 64), pattern_bytes(7, 64));
    }

    #[test]
    fn tiled_pattern_repeats_page_content() {
        let tiled = tiled_pattern_bytes(7, 10 * PAGE_SIZE, 4);
        assert_eq!(tiled.len(), 10 * PAGE_SIZE);
        assert!(tiled.iter().all(|&x| x != 0));
        // Page 4 repeats page 0; pages within a period stay distinct.
        assert_eq!(tiled[..PAGE_SIZE], tiled[4 * PAGE_SIZE..5 * PAGE_SIZE]);
        assert_ne!(tiled[..PAGE_SIZE], tiled[PAGE_SIZE..2 * PAGE_SIZE]);
        // Short fills truncate the tile.
        assert_eq!(tiled_pattern_bytes(7, 100, 4).len(), 100);
    }

    #[test]
    fn markers_emitted_in_order() {
        let (mut kernel, pid, config, _) = setup(false);
        kernel.set_tracing(true);
        let handler = Box::new(TestHandler {
            lazy: vec![],
            inits: 0,
            attaches: 0,
        });
        Replica::boot(&mut kernel, pid, config, handler).unwrap();
        let markers: Vec<String> = kernel
            .take_trace()
            .into_iter()
            .filter_map(|e| e.kind.as_marker().map(str::to_owned))
            .collect();
        assert_eq!(markers, vec!["rts-start", "main-entry", "ready"]);
    }
}
