//! Deterministic generator of valid synthetic class files.
//!
//! The paper's synthetic functions "load a predefined number of classes"
//! with heterogeneous sizes ("the loaded classes have different sizes, and
//! that is the reason the growth in the number of classes does not match
//! the size linearly"). This generator reproduces that: given a seed and a
//! target byte size it emits a [`ClassFile`] with a blob-heavy constant
//! pool and random — but verifier-clean — bytecode.

use crate::classfile::{ClassFile, Constant, Method, Op};

/// A tiny deterministic PRNG (splitmix64). Kept local so the runtime crate
/// stays dependency-free; workload-level randomness uses `rand` elsewhere.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// A vector of `len` pseudo-random bytes, none of them zero (so the
    /// bytes defeat zero-page deduplication, like real class data).
    pub fn nonzero_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let word = self.next_u64().to_le_bytes();
            for b in word {
                if out.len() == len {
                    break;
                }
                out.push(if b == 0 { 0xA7 } else { b });
            }
        }
        out
    }
}

/// Generates one valid class file named `name` of approximately
/// `target_bytes` encoded size (within a few percent; never below the
/// structural minimum of ~100 bytes).
///
/// The same `(name, seed, target_bytes)` triple always yields the same
/// bytes.
pub fn synth_class(name: &str, seed: u64, target_bytes: usize) -> ClassFile {
    let mut rng = SplitMix64::new(seed ^ crate::classfile::fnv1a(name.as_bytes()));

    // Bytecode: 2-5 methods of random verifier-clean code.
    let method_count = 2 + rng.below(4) as usize;
    let mut methods = Vec::with_capacity(method_count);
    let mut code_budget = (target_bytes / 8).clamp(24, 4096);
    for mi in 0..method_count {
        let per_method = (code_budget / (method_count - mi)).max(8);
        code_budget -= per_method.min(code_budget);
        methods.push(synth_method(&mut rng, mi, per_method));
    }

    // Constant pool: one class-ref, one int, and blobs filling the rest of
    // the byte budget.
    let mut constants = vec![
        Constant::ClassRef(format!("{name}$Companion")),
        Constant::Int(rng.next_u64() as i64),
    ];
    let skeleton = ClassFile {
        name: name.to_owned(),
        constants: constants.clone(),
        methods: methods.clone(),
    };
    let overhead = skeleton.encode().len();
    let mut remaining = target_bytes.saturating_sub(overhead);
    while remaining > 16 {
        let chunk = remaining.min(2048 + rng.below(6144) as usize);
        // 5 bytes of per-blob encoding overhead (tag + u32 length)
        let payload = chunk.saturating_sub(5).max(8);
        constants.push(Constant::Blob(rng.nonzero_bytes(payload)));
        remaining = remaining.saturating_sub(payload + 5);
    }

    ClassFile {
        name: name.to_owned(),
        constants,
        methods,
    }
}

fn synth_method(rng: &mut SplitMix64, index: usize, code_budget: usize) -> Method {
    let mut code = Vec::with_capacity(code_budget + 8);
    let mut depth: i32 = 0;
    let mut max_depth: i32 = 0;
    // Pool indices 0 and 1 always exist (ClassRef + Int).
    const POOL_LIMIT: u16 = 2;

    while code.len() < code_budget {
        let choice = rng.below(100);
        let op = if depth == 0 {
            // Must grow the stack or stay neutral.
            if choice < 60 {
                Op::Push
            } else if choice < 90 {
                Op::Load
            } else {
                Op::Nop
            }
        } else if choice < 25 {
            Op::Push
        } else if choice < 40 {
            Op::Load
        } else if depth >= 2 && choice < 55 {
            Op::Add
        } else if depth >= 2 && choice < 65 {
            Op::Mul
        } else if choice < 80 {
            Op::Pop
        } else if choice < 90 {
            Op::Store
        } else {
            Op::Nop
        };
        match op {
            Op::Push => {
                code.push(Op::Push as u8);
                code.extend_from_slice(&(rng.next_u64() as u32).to_be_bytes());
            }
            Op::Load => {
                code.push(Op::Load as u8);
                code.extend_from_slice(&((rng.below(POOL_LIMIT as u64)) as u16).to_be_bytes());
            }
            Op::Store => {
                code.push(Op::Store as u8);
                code.extend_from_slice(&((rng.below(POOL_LIMIT as u64)) as u16).to_be_bytes());
            }
            Op::Nop | Op::Pop | Op::Add | Op::Mul => code.push(op as u8),
            Op::Jmp | Op::Ret => unreachable!("not generated in the loop"),
        }
        depth += op.stack_effect();
        max_depth = max_depth.max(depth);
    }
    // Drain the stack and return.
    while depth > 0 {
        code.push(Op::Pop as u8);
        depth -= 1;
    }
    code.push(Op::Ret as u8);

    Method {
        name: format!("m{index}"),
        max_stack: max_depth.max(1) as u16,
        code,
    }
}

/// Generates the class set of a synthetic function: `count` classes whose
/// sizes vary around `total_bytes / count` (uniformly in ±60 %), summing
/// to approximately `total_bytes`.
pub fn synth_class_set(
    name_prefix: &str,
    seed: u64,
    count: usize,
    total_bytes: usize,
) -> Vec<ClassFile> {
    assert!(count > 0, "need at least one class");
    let mut rng = SplitMix64::new(seed);
    let mean = (total_bytes / count).max(128);
    (0..count)
        .map(|i| {
            let jitter = 0.4 + (rng.below(1200) as f64 / 1000.0); // 0.4..1.6
            let size = ((mean as f64) * jitter) as usize;
            synth_class(
                &format!("{name_prefix}.C{i:04}"),
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
                size,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nonzero_bytes_has_no_zero() {
        let mut rng = SplitMix64::new(4);
        let bytes = rng.nonzero_bytes(10_000);
        assert_eq!(bytes.len(), 10_000);
        assert!(bytes.iter().all(|&b| b != 0));
    }

    #[test]
    fn synth_class_is_valid_and_reproducible() {
        let a = synth_class("com.example.A", 77, 4096);
        let b = synth_class("com.example.A", 77, 4096);
        assert_eq!(a, b);
        a.verify().unwrap();
        let encoded = a.encode();
        let parsed = ClassFile::parse(&encoded).unwrap();
        parsed.verify().unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn synth_class_hits_target_size() {
        for &target in &[512usize, 4096, 32 << 10, 128 << 10] {
            let c = synth_class("com.example.Sized", 5, target);
            let len = c.encode().len();
            let ratio = len as f64 / target as f64;
            assert!(
                (0.8..1.2).contains(&ratio),
                "target {target}, got {len} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_class("com.example.A", 1, 2048);
        let b = synth_class("com.example.A", 2, 2048);
        assert_ne!(a, b);
    }

    #[test]
    fn class_set_sums_to_target() {
        // The paper's "small" function: 374 classes, ~2.8 MB.
        let set = synth_class_set("fn.small", 42, 374, 2_800_000);
        assert_eq!(set.len(), 374);
        let total: usize = set.iter().map(|c| c.encode().len()).sum();
        let ratio = total as f64 / 2_800_000.0;
        assert!((0.85..1.15).contains(&ratio), "total {total} ({ratio})");
        // sizes are heterogeneous
        let sizes: Vec<usize> = set.iter().take(20).map(|c| c.encode().len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > &(min + min / 2), "sizes too uniform: {sizes:?}");
    }

    #[test]
    fn every_generated_class_verifies() {
        let set = synth_class_set("fn.check", 7, 50, 200_000);
        for c in &set {
            c.verify()
                .unwrap_or_else(|e| panic!("class {} failed: {e}", c.name));
        }
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_set_panics() {
        synth_class_set("x", 0, 0, 100);
    }
}
