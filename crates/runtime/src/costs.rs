//! Runtime-level cost table.
//!
//! Calibration (DESIGN.md §2): the paper's Table 1 start-up times regress
//! linearly on class-archive size at ≈36.7 ms/MiB for vanilla starts and
//! ≈30 ms/MiB for prebaked-without-warmup starts. The ≈6.7 ms/MiB gap is
//! the cold archive read (priced in `prebake-sim`'s cost table); the
//! remaining 30 ms/MiB split here into parse (7), verify (8) and JIT (15).
//! The fixed runtime bootstrap (RTS) is ≈70 ms across all functions
//! (Fig. 4), and the synthetic functions pay a one-time ≈35 ms lazy
//! link/init on their first request.

use prebake_sim::cost::ms_per_mib_to_ns_per_byte;
use prebake_sim::time::SimDuration;

/// Base memory the runtime touches while bootstrapping, chosen so a
/// freshly booted NOOP function snapshots at ≈13 MB (paper §4.2.1).
#[derive(Debug, Clone, Copy)]
pub struct BaseFootprint {
    /// Bytes written into the JIT code cache during bootstrap.
    pub code_cache_touch: u64,
    /// Bytes written into the runtime heap during bootstrap.
    pub heap_touch: u64,
    /// Bytes of core-class metadata written into the metaspace.
    pub metaspace_touch: u64,
}

impl BaseFootprint {
    /// Total bytes touched at bootstrap.
    pub fn total(&self) -> u64 {
        self.code_cache_touch + self.heap_touch + self.metaspace_touch
    }
}

/// Cost table for the managed runtime ("JLVM").
#[derive(Debug, Clone)]
pub struct RuntimeCosts {
    /// RTS phase: core runtime initialisation.
    pub rts_core_init: SimDuration,
    /// RTS phase: heap arena setup.
    pub rts_heap_init: SimDuration,
    /// RTS phase: auxiliary service threads (GC, signal dispatch, ...).
    pub rts_services_init: SimDuration,
    /// Starting the embedded HTTP server.
    pub http_server_init: SimDuration,
    /// Class parsing, ns per byte of class file (≈7 ms/MiB).
    pub class_parse_ns_per_byte: f64,
    /// Bytecode verification, ns per byte (≈8 ms/MiB).
    pub class_verify_ns_per_byte: f64,
    /// JIT compilation, ns per byte (≈15 ms/MiB).
    pub jit_compile_ns_per_byte: f64,
    /// Reading the archive central index, per entry.
    pub archive_index_per_entry: SimDuration,
    /// One-time lazy linking/initialisation on the first request, for
    /// applications that defer their class graph (the synthetic functions).
    pub lazy_link_init: SimDuration,
    /// Bootstrap memory footprint.
    pub base_footprint: BaseFootprint,
    /// Metaspace expansion factor: bytes written per class-file byte when
    /// installing the parsed representation.
    pub metaspace_expansion: f64,
    /// Code-cache expansion factor: bytes written per class-file byte when
    /// JIT-compiling.
    pub code_cache_expansion: f64,
}

impl RuntimeCosts {
    /// The calibration used by every experiment in `EXPERIMENTS.md`.
    pub fn paper_calibrated() -> Self {
        RuntimeCosts {
            rts_core_init: SimDuration::from_millis(39),
            rts_heap_init: SimDuration::from_millis(12),
            rts_services_init: SimDuration::from_millis(17),
            http_server_init: SimDuration::from_micros(2500),
            class_parse_ns_per_byte: ms_per_mib_to_ns_per_byte(7.0),
            class_verify_ns_per_byte: ms_per_mib_to_ns_per_byte(8.0),
            jit_compile_ns_per_byte: ms_per_mib_to_ns_per_byte(15.0),
            archive_index_per_entry: SimDuration::from_micros(3),
            lazy_link_init: SimDuration::from_millis(35),
            base_footprint: BaseFootprint {
                code_cache_touch: 6 << 20,
                heap_touch: 5 << 20,
                metaspace_touch: 2 << 20,
            },
            metaspace_expansion: 1.2,
            code_cache_expansion: 0.3,
        }
    }

    /// A zero-cost table for state-only tests.
    pub fn free() -> Self {
        RuntimeCosts {
            rts_core_init: SimDuration::ZERO,
            rts_heap_init: SimDuration::ZERO,
            rts_services_init: SimDuration::ZERO,
            http_server_init: SimDuration::ZERO,
            class_parse_ns_per_byte: 0.0,
            class_verify_ns_per_byte: 0.0,
            jit_compile_ns_per_byte: 0.0,
            archive_index_per_entry: SimDuration::ZERO,
            lazy_link_init: SimDuration::ZERO,
            base_footprint: BaseFootprint {
                code_cache_touch: 64 << 10,
                heap_touch: 64 << 10,
                metaspace_touch: 64 << 10,
            },
            metaspace_expansion: 1.2,
            code_cache_expansion: 0.3,
        }
    }

    /// Sum of the fixed RTS phases (the paper's ≈70 ms).
    pub fn rts_total(&self) -> SimDuration {
        self.rts_core_init + self.rts_heap_init + self.rts_services_init
    }
}

impl Default for RuntimeCosts {
    fn default() -> Self {
        RuntimeCosts::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rts_sums_to_about_70ms() {
        let c = RuntimeCosts::paper_calibrated();
        let rts = c.rts_total().as_millis_f64();
        assert!((66.0..=70.0).contains(&rts), "RTS fixed part = {rts}ms");
    }

    #[test]
    fn base_footprint_is_13mb() {
        let c = RuntimeCosts::paper_calibrated();
        assert_eq!(c.base_footprint.total(), 13 << 20);
    }

    #[test]
    fn load_slope_matches_table1_regression() {
        // parse + verify + JIT must sum to ~30 ms/MiB (Table 1 PB-NoWarmup
        // slope), and with the cold read (~6.7) reach the ~36.7 vanilla slope.
        let c = RuntimeCosts::paper_calibrated();
        let per_mib =
            (c.class_parse_ns_per_byte + c.class_verify_ns_per_byte + c.jit_compile_ns_per_byte)
                * (1024.0 * 1024.0)
                / 1e6;
        assert!((per_mib - 30.0).abs() < 0.1, "load slope {per_mib} ms/MiB");
    }

    #[test]
    fn free_table_charges_nothing() {
        let c = RuntimeCosts::free();
        assert!(c.rts_total().is_zero());
        assert_eq!(c.jit_compile_ns_per_byte, 0.0);
    }
}
