//! # prebake-runtime
//!
//! "JLVM" — a managed-runtime model in the spirit of the paper's JVM 1.8,
//! running on the [`prebake-sim`](prebake_sim) substrate.
//!
//! The paper's core observation is that runtime start-up (RTS ≈ 70 ms) and
//! application initialisation — class loading, verification and lazy JIT
//! compilation — dominate serverless cold starts, and that a CRIU snapshot
//! taken at the right lifecycle point removes them. For that observation
//! to be *reproduced* rather than merely asserted, this runtime does real
//! work over real state:
//!
//! - [`classfile`] — a binary class format with an actual parser and a
//!   structural bytecode verifier (stack discipline, jump targets, pool
//!   indices)
//! - [`gen`] — a deterministic generator of verifier-clean classes of
//!   controlled size (the paper's synthetic functions)
//! - [`archive`] — the JLAR deployable artifact
//! - [`jvm`] — the runtime itself: RTS bootstrap touching a ≈13 MB base
//!   footprint, a memory-mapped archive, lazy class loading into a
//!   metaspace, a lazy JIT writing a code cache, and request serving
//! - [`state`] — the in-guest state record that snapshots carry; restored
//!   replicas rebuild themselves *only* from these bytes
//! - [`http`] — request/response shapes
//! - [`costs`] — the runtime cost table calibrated to the paper's Table 1
//!
//! ## Example
//!
//! ```
//! use prebake_runtime::archive::Archive;
//! use prebake_runtime::gen::synth_class_set;
//! use prebake_runtime::http::{Request, Response};
//! use prebake_runtime::jvm::{Ctx, Handler, JlvmConfig, Replica};
//! use prebake_sim::kernel::{Kernel, INIT_PID};
//! use prebake_sim::error::SysResult;
//!
//! struct Echo;
//! impl Handler for Echo {
//!     fn name(&self) -> &str { "echo" }
//!     fn init(&mut self, _ctx: &mut Ctx<'_>) -> SysResult<()> { Ok(()) }
//!     fn handle(&mut self, _ctx: &mut Ctx<'_>, req: &Request) -> SysResult<Response> {
//!         Ok(Response::ok(req.body.clone()))
//!     }
//! }
//!
//! let mut kernel = Kernel::new(1);
//! let archive = Archive::from_classes(&synth_class_set("echo", 1, 4, 16_000));
//! kernel.fs_create_dir_all("/app").unwrap();
//! kernel.fs_write_file("/app/echo.jlar", archive.encode()).unwrap();
//!
//! let pid = kernel.sys_clone(INIT_PID).unwrap();
//! let mut replica = Replica::boot(
//!     &mut kernel, pid, JlvmConfig::new("/app/echo.jlar", 8080), Box::new(Echo),
//! ).unwrap();
//! let resp = replica.handle(&mut kernel, &Request::with_body(&b"hi"[..])).unwrap();
//! assert_eq!(&resp.body[..], b"hi");
//! ```

#![warn(missing_docs)]

pub mod archive;
pub mod classfile;
pub mod costs;
pub mod gen;
pub mod http;
pub mod jvm;
pub mod profile;
pub mod state;

pub use archive::Archive;
pub use classfile::ClassFile;
pub use costs::RuntimeCosts;
pub use http::{Request, Response};
pub use jvm::{Ctx, Handler, Jlvm, JlvmConfig, Replica};
pub use profile::RuntimeProfile;
pub use state::RuntimeState;
