//! Runtime profiles beyond the JVM.
//!
//! The paper's future work asks how prebaking fares on "other runtime
//! environments such as Node.JS and Python, all supported by the leading
//! public FaaS platforms — as different runtimes implement distinct
//! start-up procedures, the potential improvements remain unknown."
//!
//! This module parameterises the managed-runtime model with three
//! profiles. The Java profile is the paper-calibrated one; the Node- and
//! Python-like profiles are estimated from public cold-start studies
//! (documented per constant) and exist to *explore the shape* of the
//! answer: prebaking always removes the runtime bootstrap, but the
//! warm-snapshot bonus tracks how much lazy compilation the runtime
//! performs — large for the JVM's JIT, moderate for V8, small for
//! CPython (which compiles bytecode but never JITs).

use prebake_sim::cost::ms_per_mib_to_ns_per_byte;
use prebake_sim::time::SimDuration;

use crate::costs::{BaseFootprint, RuntimeCosts};

/// A managed-runtime flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeProfile {
    /// The paper's JVM 1.8 calibration: ≈70 ms bootstrap, heavyweight
    /// class verification, aggressive JIT (15 ms/MiB).
    JavaLike,
    /// A V8-style runtime: snapshot-assisted bootstrap (≈50 ms), cheap
    /// source parsing, a lazier baseline compiler (≈6 ms/MiB).
    NodeLike,
    /// A CPython-style runtime: quick interpreter start (≈35 ms),
    /// bytecode compilation on import, **no JIT at all**.
    PythonLike,
}

impl RuntimeProfile {
    /// All profiles, Java first.
    pub fn all() -> [RuntimeProfile; 3] {
        [
            RuntimeProfile::JavaLike,
            RuntimeProfile::NodeLike,
            RuntimeProfile::PythonLike,
        ]
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeProfile::JavaLike => "java",
            RuntimeProfile::NodeLike => "node",
            RuntimeProfile::PythonLike => "python",
        }
    }

    /// The cost table of this runtime flavour.
    pub fn costs(self) -> RuntimeCosts {
        match self {
            RuntimeProfile::JavaLike => RuntimeCosts::paper_calibrated(),
            RuntimeProfile::NodeLike => RuntimeCosts {
                // V8 bootstraps from its own heap snapshot: the fixed
                // part is ≈50 ms in public measurements of node runtimes
                // on FaaS platforms.
                rts_core_init: SimDuration::from_millis(28),
                rts_heap_init: SimDuration::from_millis(10),
                rts_services_init: SimDuration::from_millis(12),
                http_server_init: SimDuration::from_micros(1500),
                // JS source parse is cheap; there is no bytecode
                // verifier, only scope analysis.
                class_parse_ns_per_byte: ms_per_mib_to_ns_per_byte(9.0),
                class_verify_ns_per_byte: ms_per_mib_to_ns_per_byte(2.0),
                // Baseline compiler (Ignition/Sparkplug tier): much
                // lazier than the JVM's C1/C2.
                jit_compile_ns_per_byte: ms_per_mib_to_ns_per_byte(6.0),
                archive_index_per_entry: SimDuration::from_micros(2),
                lazy_link_init: SimDuration::from_millis(20),
                base_footprint: BaseFootprint {
                    code_cache_touch: 3 << 20,
                    heap_touch: 4 << 20,
                    metaspace_touch: 1 << 20,
                },
                metaspace_expansion: 1.1,
                code_cache_expansion: 0.2,
            },
            RuntimeProfile::PythonLike => RuntimeCosts {
                // CPython interpreter + site init.
                rts_core_init: SimDuration::from_millis(20),
                rts_heap_init: SimDuration::from_millis(6),
                rts_services_init: SimDuration::from_millis(9),
                http_server_init: SimDuration::from_micros(2000),
                // Import machinery: compile to bytecode on first import.
                class_parse_ns_per_byte: ms_per_mib_to_ns_per_byte(12.0),
                class_verify_ns_per_byte: ms_per_mib_to_ns_per_byte(1.0),
                // No JIT: a warm snapshot only saves the import work.
                jit_compile_ns_per_byte: 0.0,
                archive_index_per_entry: SimDuration::from_micros(4),
                lazy_link_init: SimDuration::from_millis(25),
                base_footprint: BaseFootprint {
                    code_cache_touch: 1 << 20,
                    heap_touch: 4 << 20,
                    metaspace_touch: 1 << 20,
                },
                metaspace_expansion: 1.3,
                code_cache_expansion: 0.05,
            },
        }
    }

    /// The fixed bootstrap duration of this profile.
    pub fn rts_total(self) -> SimDuration {
        self.costs().rts_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn java_profile_is_the_paper_calibration() {
        let java = RuntimeProfile::JavaLike.costs();
        let paper = RuntimeCosts::paper_calibrated();
        assert_eq!(java.rts_total(), paper.rts_total());
        assert_eq!(java.jit_compile_ns_per_byte, paper.jit_compile_ns_per_byte);
    }

    #[test]
    fn bootstrap_ordering_java_heaviest() {
        let java = RuntimeProfile::JavaLike.rts_total();
        let node = RuntimeProfile::NodeLike.rts_total();
        let python = RuntimeProfile::PythonLike.rts_total();
        assert!(java > node && node > python, "{java} > {node} > {python}");
        assert!((45.0..55.0).contains(&node.as_millis_f64()));
        assert!((30.0..40.0).contains(&python.as_millis_f64()));
    }

    #[test]
    fn jit_share_ranking() {
        // The warm-snapshot bonus is driven by the JIT share; it must
        // rank java > node > python(=0).
        let jit = |p: RuntimeProfile| p.costs().jit_compile_ns_per_byte;
        assert!(jit(RuntimeProfile::JavaLike) > jit(RuntimeProfile::NodeLike));
        assert!(jit(RuntimeProfile::NodeLike) > jit(RuntimeProfile::PythonLike));
        assert_eq!(jit(RuntimeProfile::PythonLike), 0.0);
    }

    #[test]
    fn labels_and_all() {
        assert_eq!(RuntimeProfile::all().len(), 3);
        assert_eq!(RuntimeProfile::JavaLike.label(), "java");
        assert_eq!(RuntimeProfile::NodeLike.label(), "node");
        assert_eq!(RuntimeProfile::PythonLike.label(), "python");
    }
}
