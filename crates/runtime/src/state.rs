//! The runtime's in-guest state record.
//!
//! Everything about a running JLVM that must survive a checkpoint —
//! loaded classes, JIT flags, allocation cursors, the listener port, the
//! application's own pointers — is serialised into a well-known guest
//! memory region. A process restored from a snapshot re-attaches by
//! reading this region back; nothing host-side survives on its own. This
//! is what makes the reproduction honest: warm behaviour after restore
//! exists *only because* the snapshot carried these bytes.

use prebake_sim::mem::VirtAddr;

use crate::classfile::fnv1a;

/// Guest address of the state region (below the `mmap` allocator base, so
/// it never collides with dynamic mappings).
pub const STATE_BASE: VirtAddr = VirtAddr(0x0F00_0000);

/// Size of the state region mapping (1 MiB).
pub const STATE_REGION_LEN: u64 = 1 << 20;

/// State record magic.
pub const STATE_MAGIC: u32 = 0x4A53_5431;

/// Lifecycle phase recorded in the state region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// RTS finished, application initialisation in progress.
    Booting,
    /// Listening and able to serve requests.
    Ready,
}

impl Phase {
    fn to_byte(self) -> u8 {
        match self {
            Phase::Booting => 0,
            Phase::Ready => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Phase, StateError> {
        match b {
            0 => Ok(Phase::Booting),
            1 => Ok(Phase::Ready),
            other => Err(StateError::BadPhase(other)),
        }
    }
}

/// Errors decoding a state record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StateError {
    /// Record shorter than declared.
    Truncated,
    /// Magic mismatch (no runtime state at the region).
    BadMagic(u32),
    /// Unknown phase byte.
    BadPhase(u8),
    /// Name bytes were not UTF-8.
    BadName,
    /// Checksum mismatch.
    BadChecksum,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Truncated => write!(f, "state record truncated"),
            StateError::BadMagic(m) => write!(f, "bad state magic {m:#010x}"),
            StateError::BadPhase(p) => write!(f, "unknown phase {p}"),
            StateError::BadName => write!(f, "class name is not utf-8"),
            StateError::BadChecksum => write!(f, "state checksum mismatch"),
        }
    }
}

impl std::error::Error for StateError {}

/// One loaded class as recorded in guest state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassEntry {
    /// Class name.
    pub name: String,
    /// Class-file size in bytes (drives JIT cost).
    pub size: u32,
    /// Whether the JIT has compiled this class.
    pub jitted: bool,
}

/// The complete runtime state record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeState {
    /// Lifecycle phase.
    pub phase: Phase,
    /// HTTP port the server (re)binds.
    pub port: u16,
    /// Descriptor number of the listener (restored at the same fd).
    pub listener_fd: i32,
    /// Whether the application's `init` completed.
    pub app_inited: bool,
    /// Whether the one-time lazy link/init on first request has run.
    pub lazy_linked: bool,
    /// Requests served so far.
    pub requests_served: u64,
    /// Runtime heap region base.
    pub heap_base: u64,
    /// Bytes of heap handed out.
    pub heap_cursor: u64,
    /// Metaspace region base.
    pub metaspace_base: u64,
    /// Bytes of metaspace handed out.
    pub metaspace_cursor: u64,
    /// JIT code-cache region base.
    pub code_cache_base: u64,
    /// Bytes of code cache handed out.
    pub code_cache_cursor: u64,
    /// Mapped application archive base (0 if not mapped).
    pub jar_base: u64,
    /// Mapped application archive length.
    pub jar_len: u64,
    /// Loaded classes, in load order.
    pub classes: Vec<ClassEntry>,
    /// Opaque application blob (handlers stash their guest pointers here).
    pub app_blob: Vec<u8>,
}

impl RuntimeState {
    /// A fresh pre-APPINIT state.
    pub fn new(port: u16) -> RuntimeState {
        RuntimeState {
            phase: Phase::Booting,
            port,
            listener_fd: -1,
            app_inited: false,
            lazy_linked: false,
            requests_served: 0,
            heap_base: 0,
            heap_cursor: 0,
            metaspace_base: 0,
            metaspace_cursor: 0,
            code_cache_base: 0,
            code_cache_cursor: 0,
            jar_base: 0,
            jar_len: 0,
            classes: Vec::new(),
            app_blob: Vec::new(),
        }
    }

    /// Finds a loaded class entry by name.
    pub fn class(&self, name: &str) -> Option<&ClassEntry> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Mutable lookup of a loaded class entry.
    pub fn class_mut(&mut self, name: &str) -> Option<&mut ClassEntry> {
        self.classes.iter_mut().find(|c| c.name == name)
    }

    /// Total class-file bytes loaded.
    pub fn loaded_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.size as u64).sum()
    }

    /// Serialises the record (length-framed, checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.classes.len() * 40);
        out.extend_from_slice(&STATE_MAGIC.to_be_bytes());
        out.push(1); // version
        out.push(self.phase.to_byte());
        out.extend_from_slice(&self.port.to_be_bytes());
        out.extend_from_slice(&self.listener_fd.to_be_bytes());
        out.push(self.app_inited as u8);
        out.push(self.lazy_linked as u8);
        out.extend_from_slice(&self.requests_served.to_be_bytes());
        for v in [
            self.heap_base,
            self.heap_cursor,
            self.metaspace_base,
            self.metaspace_cursor,
            self.code_cache_base,
            self.code_cache_cursor,
            self.jar_base,
            self.jar_len,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.extend_from_slice(&(self.classes.len() as u32).to_be_bytes());
        for c in &self.classes {
            out.extend_from_slice(&(c.name.len() as u16).to_be_bytes());
            out.extend_from_slice(c.name.as_bytes());
            out.extend_from_slice(&c.size.to_be_bytes());
            out.push(c.jitted as u8);
        }
        out.extend_from_slice(&(self.app_blob.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.app_blob);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_be_bytes());
        out
    }

    /// Decodes a record produced by [`encode`](RuntimeState::encode).
    ///
    /// # Errors
    ///
    /// Any [`StateError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<RuntimeState, StateError> {
        if bytes.len() < 4 + 8 {
            return Err(StateError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_be_bytes(tail.try_into().unwrap());
        if fnv1a(payload) != declared {
            return Err(StateError::BadChecksum);
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], StateError> {
            if *pos + n > payload.len() {
                return Err(StateError::Truncated);
            }
            let s = &payload[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let magic = u32::from_be_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if magic != STATE_MAGIC {
            return Err(StateError::BadMagic(magic));
        }
        let _version = take(&mut pos, 1)?[0];
        let phase = Phase::from_byte(take(&mut pos, 1)?[0])?;
        let port = u16::from_be_bytes(take(&mut pos, 2)?.try_into().unwrap());
        let listener_fd = i32::from_be_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let app_inited = take(&mut pos, 1)?[0] != 0;
        let lazy_linked = take(&mut pos, 1)?[0] != 0;
        let requests_served = u64::from_be_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let mut words = [0u64; 8];
        for w in &mut words {
            *w = u64::from_be_bytes(take(&mut pos, 8)?.try_into().unwrap());
        }
        let class_count = u32::from_be_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut classes = Vec::with_capacity(class_count as usize);
        for _ in 0..class_count {
            let name_len = u16::from_be_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let name = std::str::from_utf8(take(&mut pos, name_len)?)
                .map_err(|_| StateError::BadName)?
                .to_owned();
            let size = u32::from_be_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let jitted = take(&mut pos, 1)?[0] != 0;
            classes.push(ClassEntry { name, size, jitted });
        }
        let blob_len = u32::from_be_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let app_blob = take(&mut pos, blob_len)?.to_vec();
        if pos != payload.len() {
            return Err(StateError::Truncated);
        }
        Ok(RuntimeState {
            phase,
            port,
            listener_fd,
            app_inited,
            lazy_linked,
            requests_served,
            heap_base: words[0],
            heap_cursor: words[1],
            metaspace_base: words[2],
            metaspace_cursor: words[3],
            code_cache_base: words[4],
            code_cache_cursor: words[5],
            jar_base: words[6],
            jar_len: words[7],
            classes,
            app_blob,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuntimeState {
        let mut s = RuntimeState::new(8080);
        s.phase = Phase::Ready;
        s.listener_fd = 5;
        s.app_inited = true;
        s.requests_served = 3;
        s.heap_base = 0x1000_0000;
        s.heap_cursor = 0x2000;
        s.metaspace_base = 0x2000_0000;
        s.metaspace_cursor = 0x111;
        s.code_cache_base = 0x3000_0000;
        s.code_cache_cursor = 0x42;
        s.jar_base = 0x4000_0000;
        s.jar_len = 12345;
        s.classes = vec![
            ClassEntry {
                name: "a.B".into(),
                size: 1024,
                jitted: true,
            },
            ClassEntry {
                name: "a.C".into(),
                size: 77,
                jitted: false,
            },
        ];
        s.app_blob = vec![9, 8, 7];
        s
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let back = RuntimeState::parse(&s.encode()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn fresh_state_roundtrip() {
        let s = RuntimeState::new(9000);
        let back = RuntimeState::parse(&s.encode()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.phase, Phase::Booting);
        assert_eq!(back.port, 9000);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().encode();
        bytes[10] ^= 0x80;
        assert_eq!(RuntimeState::parse(&bytes), Err(StateError::BadChecksum));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().encode();
        assert_eq!(RuntimeState::parse(&bytes[..6]), Err(StateError::Truncated));
    }

    #[test]
    fn class_lookup() {
        let mut s = sample();
        assert_eq!(s.class("a.B").unwrap().size, 1024);
        assert!(s.class("zzz").is_none());
        s.class_mut("a.C").unwrap().jitted = true;
        assert!(s.class("a.C").unwrap().jitted);
        assert_eq!(s.loaded_bytes(), 1024 + 77);
    }

    #[test]
    fn state_region_below_mmap_base() {
        use prebake_sim::mem::MMAP_BASE;
        let end = std::hint::black_box(STATE_BASE).0 + STATE_REGION_LEN;
        assert!(end <= MMAP_BASE);
        assert!(std::hint::black_box(STATE_BASE).is_page_aligned());
    }

    #[test]
    fn error_display() {
        assert!(!StateError::BadPhase(7).to_string().is_empty());
        assert!(!StateError::Truncated.to_string().is_empty());
    }
}
