//! The JLVM class-file format: a compact binary container with a constant
//! pool and verifiable stack-machine bytecode.
//!
//! The paper's sensitivity analysis (Fig. 5/6, Table 1) hinges on class
//! loading and JIT work scaling with *real* class bytes, so this module
//! implements an actual format with an actual parser and a structural
//! bytecode verifier — the synthetic-function generator emits valid
//! class files of controlled size, and the runtime genuinely parses and
//! verifies every byte it loads.

use std::fmt;

/// Format magic: `"JLVC"`.
pub const CLASS_MAGIC: u32 = 0x4A4C_5643;
/// Current format version.
pub const CLASS_VERSION: u16 = 1;

/// Errors produced by parsing or verifying a class file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClassError {
    /// Input ended before a declared structure.
    Truncated,
    /// Magic number mismatch.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
    /// Checksum mismatch: file corrupted.
    BadChecksum,
    /// A name was not valid UTF-8.
    BadName,
    /// Unknown constant-pool tag.
    BadConstantTag(u8),
    /// Unknown opcode at the given code offset.
    BadOpcode {
        /// Method index.
        method: usize,
        /// Byte offset in the method's code.
        offset: usize,
        /// The offending byte.
        opcode: u8,
    },
    /// Operand stack underflowed during verification.
    StackUnderflow {
        /// Method index.
        method: usize,
        /// Byte offset in the method's code.
        offset: usize,
    },
    /// Operand stack exceeded the method's declared maximum.
    StackOverflow {
        /// Method index.
        method: usize,
        /// Byte offset in the method's code.
        offset: usize,
    },
    /// A `LOAD`/`STORE` referenced a constant-pool index out of range.
    BadConstIndex {
        /// Method index.
        method: usize,
        /// The bad pool index.
        index: u16,
    },
    /// A jump targeted a byte that is not an instruction boundary.
    BadJumpTarget {
        /// Method index.
        method: usize,
        /// The bad target offset.
        target: i64,
    },
    /// A method's code did not end with `RET`, or stack depth was nonzero
    /// at `RET`.
    BadReturn {
        /// Method index.
        method: usize,
    },
    /// A method had no code.
    EmptyCode {
        /// Method index.
        method: usize,
    },
}

impl fmt::Display for ClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassError::Truncated => write!(f, "class file truncated"),
            ClassError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            ClassError::BadVersion(v) => write!(f, "unsupported version {v}"),
            ClassError::BadChecksum => write!(f, "checksum mismatch"),
            ClassError::BadName => write!(f, "name is not valid utf-8"),
            ClassError::BadConstantTag(t) => write!(f, "unknown constant tag {t}"),
            ClassError::BadOpcode {
                method,
                offset,
                opcode,
            } => write!(
                f,
                "method {method}: unknown opcode {opcode:#04x} at {offset}"
            ),
            ClassError::StackUnderflow { method, offset } => {
                write!(f, "method {method}: stack underflow at {offset}")
            }
            ClassError::StackOverflow { method, offset } => {
                write!(f, "method {method}: stack overflow at {offset}")
            }
            ClassError::BadConstIndex { method, index } => {
                write!(f, "method {method}: constant index {index} out of range")
            }
            ClassError::BadJumpTarget { method, target } => {
                write!(f, "method {method}: jump to non-boundary offset {target}")
            }
            ClassError::BadReturn { method } => {
                write!(f, "method {method}: missing clean RET")
            }
            ClassError::EmptyCode { method } => write!(f, "method {method}: empty code"),
        }
    }
}

impl std::error::Error for ClassError {}

/// A constant-pool entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constant {
    /// Raw UTF-8/blob data (string literals, resource blobs).
    Blob(Vec<u8>),
    /// A 64-bit integer.
    Int(i64),
    /// A reference to another class by name.
    ClassRef(String),
}

/// Bytecode opcodes of the JLVM stack machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Do nothing.
    Nop = 0x01,
    /// Push an immediate `u32` (stack +1).
    Push = 0x02,
    /// Discard the top of stack (stack −1).
    Pop = 0x03,
    /// Pop two, push their sum (stack −1).
    Add = 0x04,
    /// Pop two, push their product (stack −1).
    Mul = 0x05,
    /// Push constant-pool entry `u16` (stack +1).
    Load = 0x06,
    /// Pop into local slot `u16` (stack −1).
    Store = 0x07,
    /// Relative forward jump by `u16` bytes (stack 0).
    Jmp = 0x08,
    /// Return; must be last instruction, stack must be empty.
    Ret = 0x0A,
}

impl Op {
    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Op> {
        match b {
            0x01 => Some(Op::Nop),
            0x02 => Some(Op::Push),
            0x03 => Some(Op::Pop),
            0x04 => Some(Op::Add),
            0x05 => Some(Op::Mul),
            0x06 => Some(Op::Load),
            0x07 => Some(Op::Store),
            0x08 => Some(Op::Jmp),
            0x0A => Some(Op::Ret),
            _ => None,
        }
    }

    /// Total encoded size (opcode + operands) in bytes.
    pub fn encoded_len(self) -> usize {
        match self {
            Op::Nop | Op::Pop | Op::Add | Op::Mul | Op::Ret => 1,
            Op::Load | Op::Store | Op::Jmp => 3,
            Op::Push => 5,
        }
    }

    /// Net stack effect.
    pub fn stack_effect(self) -> i32 {
        match self {
            Op::Push | Op::Load => 1,
            Op::Pop | Op::Add | Op::Mul | Op::Store => -1,
            Op::Nop | Op::Jmp | Op::Ret => 0,
        }
    }
}

/// A method: a name, a declared max operand-stack depth and raw bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    /// Method name.
    pub name: String,
    /// Declared maximum operand-stack depth.
    pub max_stack: u16,
    /// Encoded bytecode.
    pub code: Vec<u8>,
}

/// A parsed class file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassFile {
    /// Fully qualified class name.
    pub name: String,
    /// Constant pool.
    pub constants: Vec<Constant>,
    /// Methods.
    pub methods: Vec<Method>,
}

/// FNV-1a 64-bit hash, used as the class-file checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ClassError> {
        if self.pos + n > self.buf.len() {
            return Err(ClassError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ClassError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ClassError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ClassError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ClassError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ClassError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ClassError::BadName)
    }
}

impl ClassFile {
    /// Serialises the class to its binary form (with trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, CLASS_MAGIC);
        put_u16(&mut out, CLASS_VERSION);
        put_u16(&mut out, self.name.len() as u16);
        out.extend_from_slice(self.name.as_bytes());
        put_u16(&mut out, self.constants.len() as u16);
        for c in &self.constants {
            match c {
                Constant::Blob(data) => {
                    out.push(1);
                    put_u32(&mut out, data.len() as u32);
                    out.extend_from_slice(data);
                }
                Constant::Int(v) => {
                    out.push(2);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                Constant::ClassRef(name) => {
                    out.push(3);
                    put_u16(&mut out, name.len() as u16);
                    out.extend_from_slice(name.as_bytes());
                }
            }
        }
        put_u16(&mut out, self.methods.len() as u16);
        for m in &self.methods {
            put_u16(&mut out, m.name.len() as u16);
            out.extend_from_slice(m.name.as_bytes());
            put_u16(&mut out, m.max_stack);
            put_u32(&mut out, m.code.len() as u32);
            out.extend_from_slice(&m.code);
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_be_bytes());
        out
    }

    /// Parses a class file, validating structure and checksum (every byte
    /// is visited).
    ///
    /// # Errors
    ///
    /// Any [`ClassError`] variant describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<ClassFile, ClassError> {
        if bytes.len() < 8 {
            return Err(ClassError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_be_bytes(tail.try_into().unwrap());
        if fnv1a(payload) != declared {
            return Err(ClassError::BadChecksum);
        }

        let mut r = Reader::new(payload);
        let magic = r.u32()?;
        if magic != CLASS_MAGIC {
            return Err(ClassError::BadMagic(magic));
        }
        let version = r.u16()?;
        if version != CLASS_VERSION {
            return Err(ClassError::BadVersion(version));
        }
        let name = r.string()?;
        let pool_count = r.u16()?;
        let mut constants = Vec::with_capacity(pool_count as usize);
        for _ in 0..pool_count {
            let tag = r.u8()?;
            constants.push(match tag {
                1 => {
                    let len = r.u32()? as usize;
                    Constant::Blob(r.take(len)?.to_vec())
                }
                2 => Constant::Int(r.u64()? as i64),
                3 => Constant::ClassRef(r.string()?),
                t => return Err(ClassError::BadConstantTag(t)),
            });
        }
        let method_count = r.u16()?;
        let mut methods = Vec::with_capacity(method_count as usize);
        for _ in 0..method_count {
            let mname = r.string()?;
            let max_stack = r.u16()?;
            let code_len = r.u32()? as usize;
            let code = r.take(code_len)?.to_vec();
            methods.push(Method {
                name: mname,
                max_stack,
                code,
            });
        }
        if r.pos != payload.len() {
            return Err(ClassError::Truncated);
        }
        Ok(ClassFile {
            name,
            constants,
            methods,
        })
    }

    /// Verifies every method's bytecode: known opcodes, operand-stack
    /// discipline within `max_stack`, in-range constant indices, jumps to
    /// instruction boundaries, and a clean final `RET`.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`ClassError`].
    pub fn verify(&self) -> Result<(), ClassError> {
        let pool_len = self.constants.len() as u16;
        for (mi, m) in self.methods.iter().enumerate() {
            if m.code.is_empty() {
                return Err(ClassError::EmptyCode { method: mi });
            }
            // First pass: decode instruction boundaries.
            let mut boundaries = Vec::new();
            let mut pos = 0usize;
            while pos < m.code.len() {
                boundaries.push(pos);
                let op = Op::from_byte(m.code[pos]).ok_or(ClassError::BadOpcode {
                    method: mi,
                    offset: pos,
                    opcode: m.code[pos],
                })?;
                if pos + op.encoded_len() > m.code.len() {
                    return Err(ClassError::Truncated);
                }
                pos += op.encoded_len();
            }
            // Second pass: stack discipline and operand validity.
            let mut depth: i32 = 0;
            let mut pos = 0usize;
            let mut last_op = Op::Nop;
            while pos < m.code.len() {
                let op = Op::from_byte(m.code[pos]).unwrap();
                match op {
                    Op::Load | Op::Store => {
                        let idx = u16::from_be_bytes(m.code[pos + 1..pos + 3].try_into().unwrap());
                        if idx >= pool_len {
                            return Err(ClassError::BadConstIndex {
                                method: mi,
                                index: idx,
                            });
                        }
                    }
                    Op::Jmp => {
                        let rel = u16::from_be_bytes(m.code[pos + 1..pos + 3].try_into().unwrap());
                        let target = pos as i64 + op.encoded_len() as i64 + rel as i64;
                        let ok = target == m.code.len() as i64
                            || boundaries.binary_search(&(target as usize)).is_ok();
                        if !ok {
                            return Err(ClassError::BadJumpTarget { method: mi, target });
                        }
                    }
                    _ => {}
                }
                depth += op.stack_effect();
                if depth < 0 {
                    return Err(ClassError::StackUnderflow {
                        method: mi,
                        offset: pos,
                    });
                }
                if depth > m.max_stack as i32 {
                    return Err(ClassError::StackOverflow {
                        method: mi,
                        offset: pos,
                    });
                }
                last_op = op;
                pos += op.encoded_len();
            }
            if last_op != Op::Ret || depth != 0 {
                return Err(ClassError::BadReturn { method: mi });
            }
        }
        Ok(())
    }

    /// Total bytecode bytes across all methods.
    pub fn code_bytes(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_class() -> ClassFile {
        ClassFile {
            name: "com.example.Tiny".into(),
            constants: vec![
                Constant::Blob(vec![1, 2, 3, 4]),
                Constant::Int(-7),
                Constant::ClassRef("com.example.Other".into()),
            ],
            methods: vec![Method {
                name: "run".into(),
                max_stack: 2,
                // PUSH 5; LOAD #0; ADD; POP; RET
                code: vec![
                    0x02, 0, 0, 0, 5, // PUSH 5
                    0x06, 0, 0,    // LOAD #0
                    0x04, // ADD
                    0x03, // POP
                    0x0A, // RET
                ],
            }],
        }
    }

    #[test]
    fn encode_parse_roundtrip() {
        let c = tiny_class();
        let bytes = c.encode();
        let back = ClassFile::parse(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn tiny_class_verifies() {
        tiny_class().verify().unwrap();
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut bytes = tiny_class().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(ClassFile::parse(&bytes), Err(ClassError::BadChecksum));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = tiny_class().encode();
        assert_eq!(
            ClassFile::parse(&bytes[..bytes.len() - 9]),
            Err(ClassError::BadChecksum),
            "dropping payload bytes breaks the checksum first"
        );
        assert_eq!(ClassFile::parse(&bytes[..4]), Err(ClassError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut c = tiny_class();
        c.constants.clear();
        let mut bytes = c.encode();
        bytes[0] = 0x00;
        // fix checksum so magic check is reached
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_be_bytes());
        assert!(matches!(
            ClassFile::parse(&bytes),
            Err(ClassError::BadMagic(_))
        ));
    }

    #[test]
    fn verify_rejects_stack_underflow() {
        let mut c = tiny_class();
        c.methods[0].code = vec![0x03, 0x0A]; // POP on empty stack; RET
        assert!(matches!(c.verify(), Err(ClassError::StackUnderflow { .. })));
    }

    #[test]
    fn verify_rejects_stack_overflow() {
        let mut c = tiny_class();
        c.methods[0].max_stack = 1;
        c.methods[0].code = vec![
            0x02, 0, 0, 0, 1, // PUSH
            0x02, 0, 0, 0, 2, // PUSH -> depth 2 > max 1
            0x03, 0x03, 0x0A,
        ];
        assert!(matches!(c.verify(), Err(ClassError::StackOverflow { .. })));
    }

    #[test]
    fn verify_rejects_bad_const_index() {
        let mut c = tiny_class();
        c.methods[0].code = vec![0x06, 0x00, 99, 0x03, 0x0A]; // LOAD #99
        assert!(matches!(
            c.verify(),
            Err(ClassError::BadConstIndex { index: 99, .. })
        ));
    }

    #[test]
    fn verify_rejects_mid_instruction_jump() {
        let mut c = tiny_class();
        // JMP +1 lands inside the PUSH that follows.
        c.methods[0].code = vec![
            0x08, 0, 1, // JMP +1
            0x02, 0, 0, 0, 1, // PUSH
            0x03, 0x0A,
        ];
        assert!(matches!(c.verify(), Err(ClassError::BadJumpTarget { .. })));
    }

    #[test]
    fn verify_accepts_boundary_jump() {
        let mut c = tiny_class();
        // JMP +5 skips exactly over the PUSH.
        c.methods[0].code = vec![
            0x08, 0, 5, // JMP +5
            0x02, 0, 0, 0, 1, // PUSH (skipped statically, still verified)
            0x03, 0x0A,
        ];
        // note: our verifier is linear (like a structural pass), so the
        // PUSH/POP still balance.
        c.verify().unwrap();
    }

    #[test]
    fn verify_rejects_missing_ret() {
        let mut c = tiny_class();
        c.methods[0].code = vec![0x01]; // NOP only
        assert!(matches!(c.verify(), Err(ClassError::BadReturn { .. })));
    }

    #[test]
    fn verify_rejects_dirty_stack_at_ret() {
        let mut c = tiny_class();
        c.methods[0].code = vec![0x02, 0, 0, 0, 1, 0x0A]; // PUSH; RET
        assert!(matches!(c.verify(), Err(ClassError::BadReturn { .. })));
    }

    #[test]
    fn verify_rejects_unknown_opcode() {
        let mut c = tiny_class();
        c.methods[0].code = vec![0xEE, 0x0A];
        assert!(matches!(
            c.verify(),
            Err(ClassError::BadOpcode { opcode: 0xEE, .. })
        ));
    }

    #[test]
    fn verify_rejects_empty_method() {
        let mut c = tiny_class();
        c.methods[0].code.clear();
        assert!(matches!(c.verify(), Err(ClassError::EmptyCode { .. })));
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") = offset basis
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // FNV-1a("a") from the reference tables
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ClassError> = vec![
            ClassError::Truncated,
            ClassError::BadChecksum,
            ClassError::BadOpcode {
                method: 0,
                offset: 3,
                opcode: 0xEE,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn code_bytes_sums_methods() {
        let c = tiny_class();
        assert_eq!(c.code_bytes(), 11);
    }
}
