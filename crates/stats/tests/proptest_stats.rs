//! Property tests for the statistics kernels.

use proptest::prelude::*;

use prebake_stats::bootstrap::{median_ci, median_diff_ci};
use prebake_stats::ecdf::Ecdf;
use prebake_stats::mannwhitney::mann_whitney;
use prebake_stats::normal;
use prebake_stats::summary::{median, quantile, Summary};

fn finite_sample(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, min_len..200)
}

proptest! {
    /// Quantiles are monotone in the level and bounded by the extremes.
    #[test]
    fn quantiles_monotone_and_bounded(data in finite_sample(1)) {
        let q0 = quantile(&data, 0.0);
        let q25 = quantile(&data, 0.25);
        let q50 = quantile(&data, 0.5);
        let q75 = quantile(&data, 0.75);
        let q100 = quantile(&data, 1.0);
        prop_assert!(q0 <= q25 && q25 <= q50 && q50 <= q75 && q75 <= q100);
        let min = data.iter().cloned().fold(f64::MAX, f64::min);
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(q0, min);
        prop_assert_eq!(q100, max);
    }

    /// Summary invariants hold on arbitrary samples.
    #[test]
    fn summary_invariants(data in finite_sample(2)) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.iqr() >= 0.0);
        prop_assert_eq!(s.n, data.len());
    }

    /// The bootstrap CI of the median always contains the sample median.
    #[test]
    fn bootstrap_ci_contains_median(data in finite_sample(5), seed in any::<u64>()) {
        let ci = median_ci(&data, 300, 0.95, seed);
        prop_assert!(ci.contains(median(&data)), "{} not in {}", median(&data), ci);
        prop_assert!(ci.lo <= ci.hi);
    }

    /// A sample compared against a shifted copy of itself: the
    /// median-difference CI must bracket the true shift.
    #[test]
    fn median_diff_ci_brackets_true_shift(
        data in finite_sample(20),
        shift in -1e3f64..1e3,
        seed in any::<u64>(),
    ) {
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let ci = median_diff_ci(&shifted, &data, 400, 0.99, seed);
        prop_assert!(
            ci.lo <= shift + 1e-6 && shift - 1e-6 <= ci.hi,
            "shift {shift} outside {ci}"
        );
    }

    /// Mann-Whitney is symmetric and its p-value is a probability.
    #[test]
    fn mann_whitney_symmetry(a in finite_sample(3), b in finite_sample(3)) {
        let ab = mann_whitney(&a, &b);
        let ba = mann_whitney(&b, &a);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((ab.z + ba.z).abs() < 1e-9);
    }

    /// A sample against itself never rejects equality.
    #[test]
    fn mann_whitney_self_comparison(a in finite_sample(10)) {
        let r = mann_whitney(&a, &a);
        prop_assert!(r.p_value > 0.9, "self-test p = {}", r.p_value);
    }

    /// ECDFs are monotone, bounded in [0,1], and hit 1 at the max.
    #[test]
    fn ecdf_monotone(data in finite_sample(1), probes in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let e = Ecdf::new(&data);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for &x in &sorted_probes {
            let f = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev);
            prev = f;
        }
        let max = data.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(e.eval(max), 1.0);
    }

    /// KS distance is a metric-ish quantity: symmetric, in [0,1], zero
    /// for identical samples.
    #[test]
    fn ks_distance_properties(a in finite_sample(1), b in finite_sample(1)) {
        let ea = Ecdf::new(&a);
        let eb = Ecdf::new(&b);
        let d = ea.ks_distance(&eb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((d - eb.ks_distance(&ea)).abs() < 1e-12);
        prop_assert_eq!(ea.ks_distance(&ea), 0.0);
    }

    /// The normal quantile inverts the CDF across the open unit interval.
    #[test]
    fn normal_quantile_inverts_cdf(p in 0.001f64..0.999) {
        let x = normal::quantile(p);
        prop_assert!((normal::cdf(x) - p).abs() < 1e-6);
    }
}
