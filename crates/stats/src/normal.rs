//! Standard-normal distribution helpers.
//!
//! Self-contained implementations (no external numerics crates): the
//! error function via Abramowitz & Stegun 7.1.26, and the inverse CDF via
//! Acklam's rational approximation — both accurate to well below the
//! tolerances the hypothesis tests need.

/// The error function, |error| ≤ 1.5e-7 (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal probability density function.
pub fn pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse of the standard normal CDF (the quantile function), via Peter
/// Acklam's algorithm (relative error < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)`.
pub fn quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];

    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // No refinement step: Acklam's raw approximation (1.15e-9 relative
    // error) is already sharper than our erf-based CDF (1.5e-7), so a
    // Newton/Halley step against cdf() would *lose* accuracy.
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn cdf_known_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((cdf(1.959963985) - 0.975).abs() < 1e-6);
        assert!((cdf(-1.959963985) - 0.025).abs() < 1e-6);
        assert!((cdf(1.0) - 0.8413447461).abs() < 1e-6);
    }

    #[test]
    fn quantile_known_values() {
        assert!((quantile(0.5)).abs() < 1e-7);
        assert!((quantile(0.975) - 1.959963985).abs() < 1e-6);
        assert!((quantile(0.025) + 1.959963985).abs() < 1e-6);
        assert!((quantile(0.8413447461) - 1.0).abs() < 1e-6);
        assert!((quantile(0.95) - 1.644853627).abs() < 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = quantile(p);
            assert!((cdf(x) - p).abs() < 1e-7, "p={p}, cdf(q(p))={}", cdf(x));
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires p in (0,1)")]
    fn quantile_rejects_zero() {
        quantile(0.0);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!((pdf(1.3) - pdf(-1.3)).abs() < 1e-15);
    }
}
