//! Empirical cumulative distribution functions.
//!
//! Figure 7 of the paper overlays service-time ECDFs for functions started
//! by the vanilla and prebaking techniques; the claim is that the curves
//! coincide (no post-restore penalty). [`Ecdf::ks_distance`] quantifies
//! "coincide" as the Kolmogorov–Smirnov statistic.

/// An empirical CDF over a sample.
///
/// # Examples
///
/// ```
/// use prebake_stats::ecdf::Ecdf;
///
/// let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.5);
/// assert_eq!(e.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn new(data: &[f64]) -> Ecdf {
        assert!(!data.is_empty(), "ECDF of empty sample");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Ecdf { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of observations ≤ `x` (right-continuous step function).
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when used
        // with this predicate.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The quantile function (inverse ECDF): smallest value `v` with
    /// `eval(v) >= p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn inverse(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 1.0, "inverse ECDF needs p in (0,1]");
        let n = self.sorted.len();
        let k = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[k - 1]
    }

    /// The step points `(x, F(x))` of the ECDF, suitable for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// The two-sample Kolmogorov–Smirnov statistic
    /// `sup_x |F_self(x) - F_other(x)|`.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut max_d: f64 = 0.0;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            let d = (self.eval(x) - other.eval(x)).abs();
            max_d = max_d.max(d);
        }
        max_d
    }

    /// The sorted underlying sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_right_continuous_step() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]);
        assert_eq!(e.eval(0.99), 0.0);
        assert!((e.eval(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(1.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(2.0), 1.0);
    }

    #[test]
    fn eval_is_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 / 10.0;
            let f = e.eval(x);
            assert!(f >= prev, "ECDF decreased at {x}");
            prev = f;
        }
    }

    #[test]
    fn inverse_round_trip() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), 10.0);
        assert_eq!(e.inverse(0.5), 20.0);
        assert_eq!(e.inverse(1.0), 40.0);
        assert_eq!(e.inverse(0.51), 30.0);
    }

    #[test]
    #[should_panic(expected = "p in (0,1]")]
    fn inverse_rejects_zero() {
        Ecdf::new(&[1.0]).inverse(0.0);
    }

    #[test]
    fn points_cover_unit_interval() {
        let e = Ecdf::new(&[5.0, 1.0, 3.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[2], (5.0, 1.0));
    }

    #[test]
    fn ks_distance_identical_is_zero() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0]);
        let b = Ecdf::new(&[3.0, 2.0, 1.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_distance_disjoint_is_one() {
        let a = Ecdf::new(&[1.0, 2.0]);
        let b = Ecdf::new(&[10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(b.ks_distance(&a), 1.0);
    }

    #[test]
    fn ks_distance_partial_overlap() {
        let a = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        let b = Ecdf::new(&[3.0, 4.0, 5.0, 6.0]);
        // At x=2: F_a=0.5, F_b=0 -> D >= 0.5
        assert!((a.ks_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        Ecdf::new(&[]);
    }
}
