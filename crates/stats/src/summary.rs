//! Descriptive statistics.

use std::fmt;

/// Sample median. Averages the two central order statistics for even `n`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Sample mean.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of empty sample");
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased (n-1) sample variance. Returns 0 for a single observation.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn variance(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "variance of empty sample");
    if data.len() == 1 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample standard deviation.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Quantile with linear interpolation between order statistics (R type 7,
/// the default of `quantile()` in R and NumPy).
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&sorted, q)
}

/// [`quantile`] over data already sorted ascending.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// A five-number-plus summary of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn of(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "summary of empty sample");
        let mut sorted: Vec<f64> = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            n: sorted.len(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean: mean(&sorted),
            std_dev: std_dev(&sorted),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3} sd={:.3}",
            self.n, self.min, self.q1, self.median, self.q3, self.max, self.mean, self.std_dev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mean_and_variance() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&d), 5.0);
        // population variance is 4.0; sample (n-1) variance is 32/7
        assert!((variance(&d) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&d) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_single_point_is_zero() {
        assert_eq!(variance(&[42.0]), 0.0);
    }

    #[test]
    fn quantile_matches_r_type7() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0), 1.0);
        assert_eq!(quantile(&d, 1.0), 4.0);
        assert!((quantile(&d, 0.25) - 1.75).abs() < 1e-12);
        assert!((quantile(&d, 0.75) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn quantile_unsorted_input() {
        let d = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&d, 0.5), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn median_empty_panics() {
        median(&[]);
    }

    #[test]
    #[should_panic(expected = "in [0,1]")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_of_known_sample() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::of(&d);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_display_has_fields() {
        let s = Summary::of(&[1.0, 2.0]);
        let out = s.to_string();
        assert!(out.contains("n=2"));
        assert!(out.contains("med="));
    }
}
