//! Shapiro–Wilk normality test (Royston's AS R94 algorithm).
//!
//! The paper runs Shapiro–Wilk on every start-up sample; because some
//! samples fail it, the comparison between techniques uses the
//! non-parametric Wilcoxon–Mann–Whitney test instead of a t-test. This
//! implementation follows Royston (1995), valid for `3 ≤ n ≤ 5000`.

use crate::normal;

/// Result of a Shapiro–Wilk test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapiroWilk {
    /// The W statistic in `(0, 1]`; values near 1 are consistent with
    /// normality.
    pub w: f64,
    /// Two-… one-sided p-value of the null hypothesis "the sample is
    /// normal" (small p rejects normality).
    pub p_value: f64,
}

impl ShapiroWilk {
    /// Convenience: `true` if normality is rejected at level `alpha`.
    pub fn rejects_normality(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs the Shapiro–Wilk test.
///
/// # Panics
///
/// Panics if `n < 3`, `n > 5000`, or the sample is constant (zero
/// variance) or contains NaN.
pub fn shapiro_wilk(data: &[f64]) -> ShapiroWilk {
    let n = data.len();
    assert!((3..=5000).contains(&n), "Shapiro-Wilk needs 3 <= n <= 5000");

    let mut x: Vec<f64> = data.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    assert!(
        x[n - 1] > x[0],
        "Shapiro-Wilk is undefined for a constant sample"
    );

    // Expected normal order statistics (Blom scores).
    let m: Vec<f64> = (1..=n)
        .map(|i| normal::quantile((i as f64 - 0.375) / (n as f64 + 0.25)))
        .collect();
    let ssq_m: f64 = m.iter().map(|v| v * v).sum();

    // Royston's polynomial-corrected coefficients.
    let rsn = 1.0 / (n as f64).sqrt();
    let c_n = m[n - 1] / ssq_m.sqrt();
    let a_n = -2.706056 * rsn.powi(5) + 4.434685 * rsn.powi(4)
        - 2.071190 * rsn.powi(3)
        - 0.147981 * rsn.powi(2)
        + 0.221157 * rsn
        + c_n;

    let mut a = vec![0.0; n];
    if n <= 5 {
        let phi = (ssq_m - 2.0 * m[n - 1] * m[n - 1]) / (1.0 - 2.0 * a_n * a_n);
        a[n - 1] = a_n;
        a[0] = -a_n;
        for i in 1..n - 1 {
            a[i] = m[i] / phi.sqrt();
        }
    } else {
        let c_n1 = m[n - 2] / ssq_m.sqrt();
        let a_n1 = -3.582633 * rsn.powi(5) + 5.682633 * rsn.powi(4)
            - 1.752461 * rsn.powi(3)
            - 0.293762 * rsn.powi(2)
            + 0.042981 * rsn
            + c_n1;
        let phi = (ssq_m - 2.0 * m[n - 1] * m[n - 1] - 2.0 * m[n - 2] * m[n - 2])
            / (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
        a[n - 1] = a_n;
        a[n - 2] = a_n1;
        a[0] = -a_n;
        a[1] = -a_n1;
        for i in 2..n - 2 {
            a[i] = m[i] / phi.sqrt();
        }
    }

    // W = (sum a_i x_(i))^2 / sum (x_i - mean)^2
    let mean = x.iter().sum::<f64>() / n as f64;
    let num: f64 = a.iter().zip(x.iter()).map(|(ai, xi)| ai * xi).sum();
    let den: f64 = x.iter().map(|xi| (xi - mean).powi(2)).sum();
    let w = ((num * num) / den).min(1.0);

    // p-value via Royston's normalising transforms.
    let p_value = if n == 3 {
        // Exact for n = 3.
        let pi6 = 6.0 / std::f64::consts::PI;
        let stqr = (0.75f64).sqrt().asin();
        (pi6 * (w.sqrt().asin() - stqr)).clamp(0.0, 1.0)
    } else if n <= 11 {
        let nf = n as f64;
        let gamma = -2.273 + 0.459 * nf;
        let mu = 0.5440 - 0.39978 * nf + 0.025054 * nf * nf - 0.0006714 * nf * nf * nf;
        let sigma = (1.3822 - 0.77857 * nf + 0.062767 * nf * nf - 0.0020322 * nf * nf * nf).exp();
        let z = (-((gamma - (1.0 - w).ln()).ln()) - mu) / sigma;
        1.0 - normal::cdf(z)
    } else {
        let l = (n as f64).ln();
        let mu = 0.0038915 * l * l * l - 0.083751 * l * l - 0.31082 * l - 1.5861;
        let sigma = (0.0030302 * l * l - 0.082676 * l - 0.4803).exp();
        let z = ((1.0 - w).ln() - mu) / sigma;
        1.0 - normal::cdf(z)
    };

    ShapiroWilk { w, p_value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn normal_sample(seed: u64, n: usize) -> Vec<f64> {
        // Box-Muller
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn normal_sample_not_rejected() {
        let data = normal_sample(42, 200);
        let r = shapiro_wilk(&data);
        assert!(r.w > 0.98, "W = {}", r.w);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
        assert!(!r.rejects_normality(0.05));
    }

    #[test]
    fn uniform_sample_rejected() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data: Vec<f64> = (0..200).map(|_| rng.gen::<f64>()).collect();
        let r = shapiro_wilk(&data);
        assert!(r.rejects_normality(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn exponential_sample_strongly_rejected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let data: Vec<f64> = (0..200)
            .map(|_| -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln())
            .collect();
        let r = shapiro_wilk(&data);
        assert!(r.w < 0.95, "W = {}", r.w);
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn w_is_affine_invariant() {
        let data = normal_sample(7, 100);
        let shifted: Vec<f64> = data.iter().map(|x| 1000.0 + 3.5 * x).collect();
        let a = shapiro_wilk(&data);
        let b = shapiro_wilk(&shifted);
        assert!((a.w - b.w).abs() < 1e-10, "{} vs {}", a.w, b.w);
    }

    #[test]
    fn w_in_unit_interval() {
        for seed in 0..10 {
            let data = normal_sample(seed, 50);
            let r = shapiro_wilk(&data);
            assert!(r.w > 0.0 && r.w <= 1.0);
            assert!((0.0..=1.0).contains(&r.p_value));
        }
    }

    #[test]
    fn small_samples_supported() {
        for n in 3..=12 {
            let data = normal_sample(n as u64, n);
            let r = shapiro_wilk(&data);
            assert!(r.w > 0.0 && r.w <= 1.0, "n={n}, W={}", r.w);
        }
    }

    #[test]
    fn bimodal_sample_rejected() {
        let mut data = normal_sample(3, 100);
        data.extend(normal_sample(4, 100).iter().map(|x| x + 12.0));
        let r = shapiro_wilk(&data);
        assert!(r.rejects_normality(0.001), "p = {}", r.p_value);
    }

    #[test]
    #[should_panic(expected = "3 <= n")]
    fn too_small_panics() {
        shapiro_wilk(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "constant sample")]
    fn constant_sample_panics() {
        shapiro_wilk(&[5.0; 10]);
    }
}
