//! # prebake-stats
//!
//! The statistical machinery the paper's evaluation uses, implemented
//! from scratch:
//!
//! - [`summary`] — medians, quantiles (R type 7), five-number summaries
//! - [`bootstrap`] — percentile bootstrap CIs of the median and of median
//!   differences (Efron & Tibshirani), seeded for determinism
//! - [`shapiro`] — the Shapiro–Wilk normality test (Royston AS R94)
//! - [`mannwhitney`] — the Wilcoxon–Mann–Whitney U test with tie and
//!   continuity corrections, plus the Hodges–Lehmann shift estimator
//! - [`ecdf`] — empirical CDFs and the Kolmogorov–Smirnov distance
//! - [`normal`] — standard-normal pdf/cdf/quantile primitives
//!
//! ## Example: the paper's Figure 3 analysis
//!
//! ```
//! use prebake_stats::{bootstrap::median_ci, mannwhitney::mann_whitney};
//!
//! let vanilla: Vec<f64> = (0..200).map(|i| 103.0 + (i % 9) as f64 * 0.3).collect();
//! let prebake: Vec<f64> = (0..200).map(|i| 62.0 + (i % 9) as f64 * 0.3).collect();
//!
//! let ci_v = median_ci(&vanilla, 1000, 0.95, 1);
//! let ci_p = median_ci(&prebake, 1000, 0.95, 2);
//! assert!(!ci_v.intersects(&ci_p), "visual hint: prebaking is faster");
//!
//! let test = mann_whitney(&vanilla, &prebake);
//! assert!(test.rejects_equality(0.05), "medians differ with 95% confidence");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bootstrap;
pub mod ecdf;
pub mod mannwhitney;
pub mod normal;
pub mod shapiro;
pub mod summary;

pub use bootstrap::{bootstrap_ci, median_ci, median_diff_ci, ConfInterval};
pub use ecdf::Ecdf;
pub use mannwhitney::{hodges_lehmann, mann_whitney, MannWhitney};
pub use shapiro::{shapiro_wilk, ShapiroWilk};
pub use summary::{mean, median, quantile, std_dev, variance, Summary};
