//! Wilcoxon–Mann–Whitney rank-sum test and the Hodges–Lehmann estimator.
//!
//! Because some of the paper's samples fail Shapiro–Wilk, the comparison
//! of start-up medians between techniques uses the non-parametric
//! Wilcoxon–Mann–Whitney test, plus a confidence interval for the median
//! distance. This module provides both: the tie-corrected
//! normal-approximation U test, and the Hodges–Lehmann shift estimate
//! with its distribution-free order-statistic CI.

use crate::bootstrap::ConfInterval;
use crate::normal;

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic for the first sample.
    pub u: f64,
    /// The standardised statistic (with tie and continuity correction).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_value: f64,
}

impl MannWhitney {
    /// `true` if "the medians are equal" is rejected at level `alpha`.
    pub fn rejects_equality(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Midranks of the pooled sample, with the tie-correction term
/// `sum(t^3 - t)` over tie groups.
fn midranks(pooled: &mut [(f64, usize)]) -> (Vec<f64>, f64) {
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in sample"));
    let n = pooled.len();
    let mut ranks = vec![0.0; n];
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let group = (j - i + 1) as f64;
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for item in pooled.iter().take(j + 1).skip(i) {
            ranks[item.1] = rank;
        }
        if group > 1.0 {
            tie_term += group * group * group - group;
        }
        i = j + 1;
    }
    (ranks, tie_term)
}

/// Two-sided Mann–Whitney U test with midranks, tie correction and
/// continuity correction (matches R's `wilcox.test(a, b, correct=TRUE)`
/// normal-approximation branch).
///
/// # Panics
///
/// Panics if either sample is empty.
///
/// # Examples
///
/// ```
/// use prebake_stats::mannwhitney::mann_whitney;
///
/// let fast: Vec<f64> = (0..50).map(|i| 60.0 + (i % 5) as f64).collect();
/// let slow: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64).collect();
/// let r = mann_whitney(&fast, &slow);
/// assert!(r.rejects_equality(0.001));
/// ```
pub fn mann_whitney(a: &[f64], b: &[f64]) -> MannWhitney {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    let n = n1 + n2;

    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .chain(b.iter())
        .copied()
        .enumerate()
        .map(|(i, v)| (v, i))
        .collect();
    let (ranks, tie_term) = midranks(&mut pooled);

    let r1: f64 = ranks[..a.len()].iter().sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;

    let mean_u = n1 * n2 / 2.0;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
    if var_u <= 0.0 {
        // All observations tied: no evidence against equality.
        return MannWhitney {
            u: u1,
            z: 0.0,
            p_value: 1.0,
        };
    }
    // Continuity correction toward the mean. Note `f64::signum(0.0)` is
    // 1.0, which would bias the exactly-central case — handle it apart
    // so the statistic stays antisymmetric under argument swap.
    let diff = u1 - mean_u;
    let cc = if diff > 0.0 {
        0.5
    } else if diff < 0.0 {
        -0.5
    } else {
        0.0
    };
    let z = (diff - cc) / var_u.sqrt();
    let p = (2.0 * (1.0 - normal::cdf(z.abs()))).clamp(0.0, 1.0);
    MannWhitney {
        u: u1,
        z,
        p_value: p,
    }
}

/// The Hodges–Lehmann estimate of the shift between two samples — the
/// median of all pairwise differences `a_i - b_j` — together with its
/// distribution-free confidence interval from the order statistics of the
/// pairwise differences.
///
/// # Panics
///
/// Panics if either sample is empty or `level` is outside `(0, 1)`.
pub fn hodges_lehmann(a: &[f64], b: &[f64], level: f64) -> (f64, ConfInterval) {
    assert!(!a.is_empty() && !b.is_empty(), "empty sample");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;

    let mut diffs: Vec<f64> = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            diffs.push(x - y);
        }
    }
    diffs.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));

    let estimate = crate::summary::quantile_sorted(&diffs, 0.5);

    // Normal-approximation choice of the order-statistic index
    // (Hollander & Wolfe): k = nm/2 - z_{1-alpha/2} * sqrt(nm(n+m+1)/12).
    let z = normal::quantile(1.0 - (1.0 - level) / 2.0);
    let k = (n1 * n2 / 2.0 - z * (n1 * n2 * (n1 + n2 + 1.0) / 12.0).sqrt()).floor();
    let k = (k.max(0.0) as usize).min(diffs.len().saturating_sub(1) / 2);

    let lo = diffs[k];
    let hi = diffs[diffs.len() - 1 - k];
    (estimate, ConfInterval { lo, hi, level })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn noisy(seed: u64, n: usize, center: f64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| center + 4.0 * rng.gen::<f64>()).collect()
    }

    #[test]
    fn separated_samples_rejected() {
        let a = noisy(1, 200, 100.0);
        let b = noisy(2, 200, 60.0);
        let r = mann_whitney(&a, &b);
        assert!(r.rejects_equality(1e-6), "p = {}", r.p_value);
        assert!(r.z > 0.0, "a stochastically larger -> positive z");
    }

    #[test]
    fn identical_distributions_not_rejected() {
        let a = noisy(3, 200, 70.0);
        let b = noisy(4, 200, 70.0);
        let r = mann_whitney(&a, &b);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = noisy(5, 60, 10.0);
        let b = noisy(6, 80, 12.0);
        let ab = mann_whitney(&a, &b);
        let ba = mann_whitney(&b, &a);
        assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        assert!((ab.z + ba.z).abs() < 1e-9);
        // U1 + U2 = n1*n2
        assert!((ab.u + ba.u - (a.len() * b.len()) as f64).abs() < 1e-9);
    }

    #[test]
    fn handles_heavy_ties() {
        let a = vec![1.0, 1.0, 1.0, 2.0, 2.0];
        let b = vec![1.0, 2.0, 2.0, 2.0, 3.0];
        let r = mann_whitney(&a, &b);
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn all_tied_gives_p_one() {
        let a = vec![5.0; 10];
        let b = vec![5.0; 10];
        let r = mann_whitney(&a, &b);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn small_exact_check() {
        // a = {1,2}, b = {3,4}: U1 = 0, the most extreme arrangement.
        let r = mann_whitney(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(r.u, 0.0);
        assert!(r.z < 0.0);
    }

    #[test]
    fn hodges_lehmann_recovers_shift() {
        let a = noisy(7, 150, 100.0);
        let b = noisy(8, 150, 60.0);
        let (est, ci) = hodges_lehmann(&a, &b, 0.95);
        assert!((est - 40.0).abs() < 1.0, "estimate {est}");
        assert!(ci.contains(est));
        assert!(ci.lo > 35.0 && ci.hi < 45.0, "{ci}");
    }

    #[test]
    fn hodges_lehmann_zero_shift_ci_covers_zero() {
        let a = noisy(9, 100, 50.0);
        let b = noisy(10, 100, 50.0);
        let (est, ci) = hodges_lehmann(&a, &b, 0.95);
        assert!(est.abs() < 1.5);
        assert!(ci.contains(0.0), "{ci}");
    }

    #[test]
    fn rank_midranks_correct() {
        let mut pooled: Vec<(f64, usize)> = vec![(10.0, 0), (20.0, 1), (20.0, 2), (30.0, 3)];
        let (ranks, tie_term) = midranks(&mut pooled);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(tie_term, 2.0 * 2.0 * 2.0 - 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        mann_whitney(&[], &[1.0]);
    }
}
