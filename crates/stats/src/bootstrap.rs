//! Bootstrap confidence intervals.
//!
//! The paper reports "the median interval for 95 % of statistical
//! confidence calculated using bootstrap \[Efron & Tibshirani\]" for every
//! start-up figure, and a bootstrap CI of the *median difference* between
//! techniques. This module implements the percentile bootstrap for an
//! arbitrary statistic, seeded for determinism.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::summary::median;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfInterval {
    /// Returns `true` if `x` falls inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Returns `true` if the two intervals share any point. The paper's
    /// Figure 3 argument: non-intersecting CIs are a visual hint that the
    /// medians differ.
    pub fn intersects(&self, other: &ConfInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Midpoint of the interval.
    pub fn mid(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

impl std::fmt::Display for ConfInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2};{:.2})", self.lo, self.hi)
    }
}

/// Percentile-bootstrap CI of an arbitrary statistic of one sample.
///
/// # Panics
///
/// Panics if `data` is empty, `resamples` is zero, or `level` is outside
/// `(0, 1)`.
///
/// # Examples
///
/// ```
/// use prebake_stats::bootstrap::bootstrap_ci;
/// use prebake_stats::summary::median;
///
/// let data: Vec<f64> = (0..200).map(|i| 100.0 + (i % 7) as f64).collect();
/// let ci = bootstrap_ci(&data, median, 1000, 0.95, 42);
/// assert!(ci.contains(median(&data)));
/// ```
pub fn bootstrap_ci(
    data: &[f64],
    stat: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfInterval {
    assert!(!data.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "bootstrap needs at least one resample");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");

    let mut rng = SmallRng::seed_from_u64(seed);
    let n = data.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; n];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = data[rng.gen_range(0..n)];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic"));
    let alpha = (1.0 - level) / 2.0;
    ConfInterval {
        lo: crate::summary::quantile_sorted(&stats, alpha),
        hi: crate::summary::quantile_sorted(&stats, 1.0 - alpha),
        level,
    }
}

/// Percentile-bootstrap CI of the **median** (the paper's error bars).
pub fn median_ci(data: &[f64], resamples: usize, level: f64, seed: u64) -> ConfInterval {
    bootstrap_ci(data, median, resamples, level, seed)
}

/// Percentile-bootstrap CI of the difference of medians
/// `median(a) - median(b)` between two independent samples (the paper's
/// "median difference was \[40.35, 42.29\] ms" analysis).
///
/// # Panics
///
/// Panics on empty inputs or invalid `resamples`/`level`.
pub fn median_diff_ci(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfInterval {
    assert!(!a.is_empty() && !b.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "bootstrap needs at least one resample");
    assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut ra = vec![0.0; a.len()];
    let mut rb = vec![0.0; b.len()];
    for _ in 0..resamples {
        for slot in ra.iter_mut() {
            *slot = a[rng.gen_range(0..a.len())];
        }
        for slot in rb.iter_mut() {
            *slot = b[rng.gen_range(0..b.len())];
        }
        stats.push(median(&ra) - median(&rb));
    }
    stats.sort_by(|x, y| x.partial_cmp(y).expect("NaN statistic"));
    let alpha = (1.0 - level) / 2.0;
    ConfInterval {
        lo: crate::summary::quantile_sorted(&stats, alpha),
        hi: crate::summary::quantile_sorted(&stats, 1.0 - alpha),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64, n: usize, center: f64, spread: f64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| center + spread * (rng.gen::<f64>() - 0.5))
            .collect()
    }

    #[test]
    fn ci_contains_point_estimate() {
        let data = sample(1, 200, 100.0, 10.0);
        let ci = median_ci(&data, 2000, 0.95, 7);
        assert!(ci.contains(median(&data)), "{ci} vs {}", median(&data));
    }

    #[test]
    fn ci_is_deterministic_given_seed() {
        let data = sample(2, 100, 50.0, 5.0);
        let a = median_ci(&data, 500, 0.95, 9);
        let b = median_ci(&data, 500, 0.95, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let data = sample(3, 100, 10.0, 4.0);
        let narrow = median_ci(&data, 2000, 0.80, 5);
        let wide = median_ci(&data, 2000, 0.99, 5);
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn degenerate_sample_gives_zero_width() {
        let data = vec![42.0; 50];
        let ci = median_ci(&data, 200, 0.95, 1);
        assert_eq!(ci.lo, 42.0);
        assert_eq!(ci.hi, 42.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn median_diff_ci_detects_separation() {
        let a = sample(4, 200, 100.0, 5.0);
        let b = sample(5, 200, 60.0, 5.0);
        let ci = median_diff_ci(&a, &b, 1000, 0.95, 3);
        assert!(ci.lo > 30.0 && ci.hi < 50.0, "{ci}");
        assert!(!ci.contains(0.0), "clearly separated medians");
    }

    #[test]
    fn median_diff_ci_covers_zero_for_same_distribution() {
        let a = sample(6, 200, 70.0, 8.0);
        let b = sample(7, 200, 70.0, 8.0);
        let ci = median_diff_ci(&a, &b, 1000, 0.95, 3);
        assert!(ci.contains(0.0), "{ci}");
    }

    #[test]
    fn interval_predicates() {
        let a = ConfInterval {
            lo: 1.0,
            hi: 3.0,
            level: 0.95,
        };
        let b = ConfInterval {
            lo: 2.5,
            hi: 4.0,
            level: 0.95,
        };
        let c = ConfInterval {
            lo: 3.5,
            hi: 4.0,
            level: 0.95,
        };
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert_eq!(a.mid(), 2.0);
        assert_eq!(a.to_string(), "(1.00;3.00)");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        median_ci(&[], 100, 0.95, 0);
    }

    #[test]
    fn custom_statistic_bootstrap() {
        let data = sample(8, 150, 5.0, 1.0);
        let ci = bootstrap_ci(&data, crate::summary::mean, 1000, 0.95, 11);
        assert!(ci.contains(crate::summary::mean(&data)));
    }
}
