//! Deterministic tail-based span sampling.
//!
//! At fleet scale the tracer would retain a span tree per invocation —
//! hundreds of thousands of spans per run. Tail-based sampling decides
//! *after* a request completes (when its outcome is known): trees that
//! breached an SLO threshold or errored are always kept in full; the
//! rest are kept with a small seeded probability. The keep decision
//! hashes (seed, trace id) — no RNG state — so a given workload keeps
//! exactly the same trace ids on every run, machine-independently.

use prebake_sim::trace::TraceSpan;

/// Sampler shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// Probability of keeping an uninteresting trace, in `[0, 1]`.
    pub keep_fraction: f64,
    /// Hash seed; different seeds keep different (but each
    /// deterministic) subsets.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            keep_fraction: 0.02,
            seed: 1,
        }
    }
}

/// The tail sampler. Stateless: every decision is a pure function of
/// (config, trace id, interesting-flag).
#[derive(Debug, Clone, Copy)]
pub struct TailSampler {
    config: SamplerConfig,
}

impl TailSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `[0, 1]`.
    pub fn new(config: SamplerConfig) -> TailSampler {
        assert!(
            (0.0..=1.0).contains(&config.keep_fraction),
            "keep_fraction in [0,1]"
        );
        TailSampler { config }
    }

    /// The sampler's configuration.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Uniform-ish hash of a trace id into `[0, 1)` (seeded FNV-1a).
    pub fn hash01(&self, trace_id: u64) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self
            .config
            .seed
            .to_le_bytes()
            .into_iter()
            .chain(trace_id.to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Top 53 bits -> exactly representable f64 in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The tail decision: interesting traces are always kept, the rest
    /// kept iff their hash lands under `keep_fraction`.
    pub fn keep(&self, trace_id: u64, interesting: bool) -> bool {
        interesting || self.hash01(trace_id) < self.config.keep_fraction
    }
}

/// Bookkeeping from a [`sample_trees`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Root trees kept.
    pub trees_kept: u64,
    /// Root trees dropped.
    pub trees_dropped: u64,
    /// Spans retained (all spans of kept trees).
    pub spans_kept: u64,
    /// Spans discarded with their dropped trees.
    pub spans_dropped: u64,
    /// Trees kept because the predicate marked them interesting.
    pub interesting_kept: u64,
}

/// Applies tail sampling to a flat span list: groups spans into root
/// trees (parents precede children, as the `Tracer` emits them), asks
/// `interesting` about each *root* span, and keeps or drops whole trees.
/// `trace_id_of` maps a root span to the trace id hashed for the keep
/// decision (e.g. a request id attribute).
pub fn sample_trees<I, T>(
    spans: Vec<TraceSpan>,
    sampler: &TailSampler,
    trace_id_of: T,
    interesting: I,
) -> (Vec<TraceSpan>, SampleStats)
where
    I: Fn(&TraceSpan) -> bool,
    T: Fn(&TraceSpan) -> u64,
{
    use std::collections::BTreeMap;
    // span id -> root span id (roots map to themselves).
    let mut root_of: BTreeMap<u64, u64> = BTreeMap::new();
    // root span id -> keep decision.
    let mut keep_root: BTreeMap<u64, bool> = BTreeMap::new();
    let mut stats = SampleStats::default();

    for s in &spans {
        let root = match s.parent {
            Some(parent) => *root_of.get(&parent.as_u64()).unwrap_or(&s.id.as_u64()),
            None => s.id.as_u64(),
        };
        root_of.insert(s.id.as_u64(), root);
        if s.parent.is_none() {
            let hot = interesting(s);
            let kept = sampler.keep(trace_id_of(s), hot);
            if kept {
                stats.trees_kept += 1;
                if hot {
                    stats.interesting_kept += 1;
                }
            } else {
                stats.trees_dropped += 1;
            }
            keep_root.insert(root, kept);
        }
    }

    let kept: Vec<TraceSpan> = spans
        .into_iter()
        .filter(|s| {
            let root = root_of[&s.id.as_u64()];
            let keep = *keep_root.get(&root).unwrap_or(&true);
            if keep {
                stats.spans_kept += 1;
            } else {
                stats.spans_dropped += 1;
            }
            keep
        })
        .collect();
    (kept, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_sim::proc::Pid;
    use prebake_sim::time::{SimDuration, SimInstant};
    use prebake_sim::trace::Tracer;

    #[test]
    fn hash_is_deterministic_and_roughly_uniform() {
        let s = TailSampler::new(SamplerConfig {
            keep_fraction: 0.1,
            seed: 7,
        });
        let mut kept = 0usize;
        for id in 0..10_000u64 {
            assert_eq!(s.hash01(id), s.hash01(id));
            let h = s.hash01(id);
            assert!((0.0..1.0).contains(&h));
            if s.keep(id, false) {
                kept += 1;
            }
        }
        // 10% +- 1.5% over 10k ids.
        assert!((850..=1150).contains(&kept), "kept {kept}");
        // A different seed keeps a different subset.
        let other = TailSampler::new(SamplerConfig {
            keep_fraction: 0.1,
            seed: 8,
        });
        assert!((0..1000u64).any(|id| s.keep(id, false) != other.keep(id, false)));
    }

    #[test]
    fn interesting_always_kept_even_at_zero_fraction() {
        let s = TailSampler::new(SamplerConfig {
            keep_fraction: 0.0,
            seed: 1,
        });
        assert!(s.keep(42, true));
        assert!(!s.keep(42, false));
    }

    /// Builds `n` two-span trees; roots carry an `id` attribute.
    fn trees(n: u64, slow_every: u64) -> Vec<TraceSpan> {
        let mut tracer = Tracer::new();
        tracer.set_enabled(true);
        let mut now = SimInstant::EPOCH;
        for i in 0..n {
            let root = tracer.begin("request", Pid(1), now);
            tracer.attr(root, "id", i.to_string());
            let child = tracer.begin("serve", Pid(1), now);
            now += SimDuration::from_millis(if i % slow_every == 0 { 500 } else { 1 });
            tracer.end(child, now);
            tracer.end(root, now);
        }
        tracer.take(now)
    }

    #[test]
    fn sample_trees_keeps_whole_interesting_trees() {
        let spans = trees(100, 10);
        let sampler = TailSampler::new(SamplerConfig {
            keep_fraction: 0.0,
            seed: 1,
        });
        let (kept, stats) = sample_trees(
            spans,
            &sampler,
            |root| {
                root.attrs
                    .iter()
                    .find(|(k, _)| *k == "id")
                    .and_then(|(_, v)| v.parse().ok())
                    .unwrap_or(0)
            },
            |root| root.duration().as_millis() >= 250,
        );
        // Exactly the 10 slow trees survive, each with both spans.
        assert_eq!(stats.trees_kept, 10);
        assert_eq!(stats.interesting_kept, 10);
        assert_eq!(stats.trees_dropped, 90);
        assert_eq!(stats.spans_kept, 20);
        assert_eq!(stats.spans_dropped, 180);
        assert_eq!(kept.len(), 20);
        // Trees stay intact: every kept child's parent is kept too.
        for s in &kept {
            if let Some(p) = s.parent {
                assert!(kept.iter().any(|q| q.id == p));
            }
        }
    }

    #[test]
    fn sample_trees_is_reproducible() {
        let sampler = TailSampler::new(SamplerConfig {
            keep_fraction: 0.3,
            seed: 5,
        });
        let run = || {
            sample_trees(
                trees(200, 17),
                &sampler,
                |root| {
                    root.attrs
                        .iter()
                        .find(|(k, _)| *k == "id")
                        .and_then(|(_, v)| v.parse().ok())
                        .unwrap_or(0)
                },
                |_| false,
            )
            .1
        };
        assert_eq!(run(), run());
        let stats = run();
        assert_eq!(stats.trees_kept + stats.trees_dropped, 200);
        assert!(stats.trees_kept > 30 && stats.trees_kept < 90);
    }
}
