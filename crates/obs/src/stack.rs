//! [`ObsStack`]: the recorder + SLO engine + tail sampler bundle a
//! simulator embeds.
//!
//! The stack owns the recorder the sim feeds, knows the configured
//! objectives (so it can answer "does this latency breach any SLO?"
//! at span-emission time — the tail-sampling keep signal), and keeps
//! the sampling bookkeeping that the ablation asserts on.

use crate::export::{chrome_trace_with_exemplars, dashboard, DashboardSpec};
use crate::recorder::{Recorder, RecorderConfig};
use crate::sampler::{SampleStats, SamplerConfig, TailSampler};
use crate::slo::{Objective, Sli, SloEngine, SloReport};
use prebake_sim::trace::TraceSpan;

/// Everything needed to stand up an [`ObsStack`].
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Recorder shape (window width, ring capacity, default bounds).
    pub recorder: RecorderConfig,
    /// Declarative objectives the SLO engine evaluates.
    pub objectives: Vec<Objective>,
    /// Tail-sampling shape; `None` keeps every trace (keep-all mode).
    pub sampler: Option<SamplerConfig>,
}

/// The composed telemetry stack.
#[derive(Debug, Clone)]
pub struct ObsStack {
    /// The windowed recorder the host feeds.
    pub recorder: Recorder,
    engine: SloEngine,
    sampler: Option<TailSampler>,
    /// Tail-sampling bookkeeping (tree/span keep counts).
    pub sampling: SampleStats,
}

impl ObsStack {
    /// Builds the stack from its configuration.
    pub fn new(config: ObsConfig) -> ObsStack {
        ObsStack {
            recorder: Recorder::new(config.recorder),
            engine: SloEngine::new(config.objectives),
            sampler: config.sampler.map(TailSampler::new),
            sampling: SampleStats::default(),
        }
    }

    /// The configured objectives.
    pub fn objectives(&self) -> &[Objective] {
        self.engine.objectives()
    }

    /// Whether `value_ms` on `metric` breaches any latency objective's
    /// threshold — the "interesting" signal for tail sampling.
    pub fn latency_breach(&self, metric: &str, value_ms: f64) -> bool {
        self.engine.objectives().iter().any(|o| match &o.sli {
            Sli::LatencyUnder {
                metric: m,
                threshold_ms,
            } => m == metric && value_ms > *threshold_ms,
            Sli::EventRatio { .. } => false,
        })
    }

    /// The tail decision for one completed trace tree of `tree_spans`
    /// spans. Always `true` (keep-all) without a sampler. Updates the
    /// sampling stats either way so reduction ratios are comparable.
    pub fn keep_trace(&mut self, trace_id: u64, interesting: bool, tree_spans: u64) -> bool {
        let keep = match &self.sampler {
            None => true,
            Some(s) => s.keep(trace_id, interesting),
        };
        if keep {
            self.sampling.trees_kept += 1;
            self.sampling.spans_kept += tree_spans;
            if interesting {
                self.sampling.interesting_kept += 1;
            }
        } else {
            self.sampling.trees_dropped += 1;
            self.sampling.spans_dropped += tree_spans;
        }
        keep
    }

    /// Folds another stack's recorder ring and sampling stats into this
    /// one — the multi-shard merge path. Objectives are taken from
    /// `self`; absorbing shard stacks in index order is deterministic.
    pub fn absorb(&mut self, other: &ObsStack) {
        self.recorder.absorb(&other.recorder);
        self.sampling.trees_kept += other.sampling.trees_kept;
        self.sampling.trees_dropped += other.sampling.trees_dropped;
        self.sampling.spans_kept += other.sampling.spans_kept;
        self.sampling.spans_dropped += other.sampling.spans_dropped;
        self.sampling.interesting_kept += other.sampling.interesting_kept;
    }

    /// Evaluates the objectives against the current ring.
    pub fn report(&self) -> SloReport {
        self.engine.evaluate(&self.recorder)
    }

    /// The deterministic text dashboard for the current ring.
    pub fn dashboard(&self, spec: &DashboardSpec) -> String {
        dashboard(&self.recorder, &self.report(), spec)
    }

    /// Chrome-trace JSON of `spans` with this stack's exemplars linked in.
    pub fn chrome_trace(&self, spans: &[TraceSpan]) -> String {
        chrome_trace_with_exemplars(spans, &self.recorder)
    }

    /// Prometheus exposition: the ring-aggregated series plus the
    /// stack's own SLO/sampling meta series.
    pub fn render(&self) -> String {
        let mut out = self.recorder.render();
        let report = self.report();
        for s in &report.statuses {
            let labels = format!("objective=\"{}\"", s.name);
            out.push_str(&format!("slo_bad_events_total{{{labels}}} {}\n", s.bad));
            out.push_str(&format!("slo_events_total{{{labels}}} {}\n", s.total));
            out.push_str(&format!("slo_burn_rate{{{labels}}} {:.6}\n", s.burn));
        }
        out.push_str(&format!(
            "obs_trace_trees_kept_total {}\n",
            self.sampling.trees_kept
        ));
        out.push_str(&format!(
            "obs_trace_trees_dropped_total {}\n",
            self.sampling.trees_dropped
        ));
        out.push_str(&format!(
            "obs_trace_spans_kept_total {}\n",
            self.sampling.spans_kept
        ));
        out.push_str(&format!(
            "obs_trace_spans_dropped_total {}\n",
            self.sampling.spans_dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SeriesKey;
    use prebake_sim::time::{SimDuration, SimInstant};

    fn config() -> ObsConfig {
        ObsConfig {
            recorder: RecorderConfig::default(),
            objectives: vec![
                Objective::latency("lat", "fleet_latency_ms", 250.0, 0.9),
                Objective::ratio("cold", "cold_total", "req_total", 0.9),
            ],
            sampler: Some(SamplerConfig {
                keep_fraction: 0.0,
                seed: 1,
            }),
        }
    }

    #[test]
    fn latency_breach_matches_only_latency_objectives() {
        let stack = ObsStack::new(config());
        assert!(stack.latency_breach("fleet_latency_ms", 251.0));
        assert!(!stack.latency_breach("fleet_latency_ms", 250.0));
        assert!(!stack.latency_breach("other_ms", 9999.0));
        assert_eq!(stack.objectives().len(), 2);
    }

    #[test]
    fn keep_trace_tracks_stats() {
        let mut stack = ObsStack::new(config());
        assert!(stack.keep_trace(1, true, 6));
        assert!(!stack.keep_trace(2, false, 4));
        assert_eq!(stack.sampling.trees_kept, 1);
        assert_eq!(stack.sampling.interesting_kept, 1);
        assert_eq!(stack.sampling.spans_kept, 6);
        assert_eq!(stack.sampling.spans_dropped, 4);

        // No sampler = keep-all.
        let mut keep_all = ObsStack::new(ObsConfig::default());
        assert!(keep_all.keep_trace(2, false, 4));
        assert_eq!(keep_all.sampling.trees_dropped, 0);
    }

    #[test]
    fn render_includes_slo_and_sampling_series() {
        let mut stack = ObsStack::new(config());
        let at = SimInstant::EPOCH + SimDuration::from_secs(1);
        stack
            .recorder
            .inc(at, SeriesKey::new("req_total").tenant("a"), 10);
        stack
            .recorder
            .inc(at, SeriesKey::new("cold_total").tenant("a"), 3);
        stack.keep_trace(1, false, 4);
        let text = stack.render();
        assert!(text.contains("slo_burn_rate{objective=\"cold\"} 3.000000"));
        assert!(text.contains("slo_bad_events_total{objective=\"cold\"} 3"));
        assert!(text.contains("obs_trace_trees_dropped_total 1"));
        assert_eq!(text, stack.render());
    }
}
