//! Bridge from the platform gateway's aggregate metrics into the
//! windowed recorder.
//!
//! The platform crate cannot depend on obs (obs reuses its `Histogram`),
//! so the feed runs the other way: a host that owns both — the fleet
//! sim profiling phase, a bench, a gateway driver — periodically calls
//! [`record_platform_metrics`] to fold the gateway's *deltas since the
//! last call* into the current window. The bridge snapshots absolute
//! counter values and diffs them itself, so callers can invoke it at
//! every window edge without double counting.

use std::collections::BTreeMap;

use prebake_platform::metrics::Metrics;
use prebake_sim::time::SimInstant;

use crate::recorder::{Recorder, SeriesKey};

/// Remembers the last-seen absolute counter values per function so each
/// call records only the delta.
#[derive(Debug, Clone, Default)]
pub struct PlatformBridge {
    last: BTreeMap<(String, &'static str), u64>,
}

/// The gateway counters the bridge forwards, with their canonical
/// series names (DESIGN.md §15 naming scheme).
const COUNTERS: &[&str] = &[
    "faas_requests_total",
    "faas_cold_starts_total",
    "faas_replicas_started_total",
    "faas_request_errors_total",
    "prebake_restore_major_faults_total",
    "prebake_restore_minor_faults_total",
    "prebake_restore_cow_breaks_total",
    "prebake_restore_extents_total",
    "prebake_restore_faults_avoided_total",
    "prebake_restore_shards_total",
    "prebake_restore_seek_bytes_avoided_total",
    "prebake_restore_pages_compacted_total",
];

impl PlatformBridge {
    /// A bridge with no history (first call records absolute values).
    pub fn new() -> PlatformBridge {
        PlatformBridge::default()
    }

    /// Folds the gateway registry's growth since the previous call into
    /// the window containing `at`, one series per (metric, function),
    /// optionally node-tagged. Histograms are *not* diffed (the bucket
    /// counts only grow); they are merged wholesale on the final call a
    /// host makes, via [`PlatformBridge::record_histograms`].
    pub fn record_counters(
        &mut self,
        rec: &mut Recorder,
        metrics: &Metrics,
        at: SimInstant,
        node: Option<u32>,
    ) {
        let names: Vec<String> = metrics.names().map(str::to_owned).collect();
        for function in names {
            let m = metrics.get(&function).expect("listed function present");
            let values: [(&'static str, u64); 12] = [
                (COUNTERS[0], m.requests.get()),
                (COUNTERS[1], m.cold_starts.get()),
                (COUNTERS[2], m.replicas_started.get()),
                (COUNTERS[3], m.request_errors.get()),
                (COUNTERS[4], m.restore_major_faults.get()),
                (COUNTERS[5], m.restore_minor_faults.get()),
                (COUNTERS[6], m.restore_cow_breaks.get()),
                (COUNTERS[7], m.restore_extents.get()),
                (COUNTERS[8], m.restore_faults_avoided.get()),
                (COUNTERS[9], m.restore_shards.get()),
                (COUNTERS[10], m.restore_seek_bytes_avoided.get()),
                (COUNTERS[11], m.restore_pages_compacted.get()),
            ];
            for (metric, now) in values {
                let key = (function.clone(), metric);
                let prev = self.last.get(&key).copied().unwrap_or(0);
                if now > prev {
                    let mut sk = SeriesKey::new(metric).tenant(&function);
                    if let Some(n) = node {
                        sk = sk.node(n);
                    }
                    rec.inc(at, sk, now - prev);
                }
                self.last.insert(key, now);
            }
        }
    }

    /// Merges the gateway's cumulative latency/startup/restore
    /// histograms into the window containing `at`. Call once, at the end
    /// of a run (merging twice would double count — histograms carry no
    /// delta marker).
    pub fn record_histograms(
        &self,
        rec: &mut Recorder,
        metrics: &Metrics,
        at: SimInstant,
        node: Option<u32>,
    ) {
        let names: Vec<String> = metrics.names().map(str::to_owned).collect();
        for function in names {
            let m = metrics.get(&function).expect("listed function present");
            for (metric, h) in [
                ("faas_latency_ms", &m.latency),
                ("faas_startup_ms", &m.startup),
                ("prebake_restore_ms", &m.restore_ms),
            ] {
                let mut sk = SeriesKey::new(metric).tenant(&function);
                if let Some(n) = node {
                    sk = sk.node(n);
                }
                rec.merge_histogram(at, sk, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecorderConfig;
    use prebake_sim::time::SimDuration;

    fn at_secs(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    #[test]
    fn counters_are_delta_folded_across_windows() {
        let mut rec = Recorder::new(RecorderConfig::default());
        let mut bridge = PlatformBridge::new();
        let mut metrics = Metrics::new();
        metrics.function("fn").requests.add(5);
        metrics.function("fn").cold_starts.add(2);
        bridge.record_counters(&mut rec, &metrics, at_secs(1), Some(0));
        metrics.function("fn").requests.add(3);
        bridge.record_counters(&mut rec, &metrics, at_secs(61), Some(0));
        // A third call with no growth records nothing.
        bridge.record_counters(&mut rec, &metrics, at_secs(121), Some(0));

        let key = SeriesKey::new("faas_requests_total").tenant("fn").node(0);
        let per_window: Vec<u64> = rec.windows().map(|w| w.counter(&key)).collect();
        assert_eq!(per_window, [5, 3]);
        assert_eq!(rec.counter_total("faas_requests_total"), 8);
        assert_eq!(rec.counter_total("faas_cold_starts_total"), 2);
    }

    #[test]
    fn histograms_merge_with_gateway_bounds() {
        let mut rec = Recorder::new(RecorderConfig::default());
        let bridge = PlatformBridge::new();
        let mut metrics = Metrics::new();
        metrics.function("fn").latency.observe(12.0);
        metrics.function("fn").latency.observe(800.0);
        bridge.record_histograms(&mut rec, &metrics, at_secs(30), None);
        let merged = rec.merged_histogram("faas_latency_ms", Some("fn")).unwrap();
        assert_eq!(merged.count(), 2);
        // Gateway default bounds survive the merge (not the recorder's).
        assert_eq!(merged.bounds().len(), 10);
    }
}
