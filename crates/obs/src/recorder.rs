//! Windowed time-series recorder over the virtual clock.
//!
//! The fleet sim pushes hundreds of thousands of events through a run;
//! end-of-run scalar counters cannot say *when* a cold-start tail
//! spiked or which tenant caused it. The recorder slices virtual time
//! into fixed-width windows (a bounded ring) and keeps, per window,
//! counters and streaming histograms keyed by
//! (metric, tenant, node, gear). Everything is `BTreeMap`-backed so a
//! given event sequence renders byte-identically on every run.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use prebake_platform::metrics::{render_histogram, Histogram};
use prebake_sim::time::{SimDuration, SimInstant};

/// Identity of one time series: a metric name plus the label dimensions
/// the fleet cares about. Empty `tenant`/`gear` and `None` node mean the
/// label is absent (the series is an unsplit aggregate on that axis).
///
/// Ordering is derived — (metric, tenant, node, gear) — which fixes the
/// exposition and dashboard ordering deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name, e.g. `fleet_latency_ms` (see DESIGN.md §15 for the
    /// naming scheme).
    pub metric: String,
    /// Tenant / function name, or empty when unattributed.
    pub tenant: String,
    /// Worker/node index, when the event is node-local.
    pub node: Option<u32>,
    /// Start gear label (`vanilla`, `eager`, ...), or empty.
    pub gear: String,
}

impl SeriesKey {
    /// A key with only the metric name set.
    pub fn new(metric: &str) -> SeriesKey {
        SeriesKey {
            metric: metric.to_owned(),
            ..SeriesKey::default()
        }
    }

    /// Builder-style tenant label.
    pub fn tenant(mut self, tenant: &str) -> SeriesKey {
        self.tenant = tenant.to_owned();
        self
    }

    /// Builder-style node label.
    pub fn node(mut self, node: u32) -> SeriesKey {
        self.node = Some(node);
        self
    }

    /// Builder-style gear label.
    pub fn gear(mut self, gear: &str) -> SeriesKey {
        self.gear = gear.to_owned();
        self
    }

    /// Prometheus label pairs without braces (`tenant="a",node="0"`),
    /// empty when no label is set.
    pub fn labels(&self) -> String {
        let mut parts = Vec::new();
        if !self.tenant.is_empty() {
            parts.push(format!("tenant=\"{}\"", self.tenant));
        }
        if let Some(node) = self.node {
            parts.push(format!("node=\"{node}\""));
        }
        if !self.gear.is_empty() {
            parts.push(format!("gear=\"{}\"", self.gear));
        }
        parts.join(",")
    }

    /// Full series name, `metric{labels}` or bare `metric`.
    pub fn series(&self) -> String {
        let labels = self.labels();
        if labels.is_empty() {
            self.metric.clone()
        } else {
            format!("{}{{{labels}}}", self.metric)
        }
    }
}

/// A link from a histogram bucket to one retained trace: the classic
/// OpenMetrics exemplar, minus the wire format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Trace (request) id the observation came from.
    pub trace_id: u64,
    /// The observed value.
    pub value_ms: f64,
    /// When it was observed.
    pub at: SimInstant,
}

/// A histogram plus one optional exemplar per bucket (`+Inf` included).
/// The kept exemplar is the largest value seen in the bucket — the most
/// interesting trace to follow from a latency bucket — with first-seen
/// winning ties so replays are deterministic.
#[derive(Debug, Clone)]
pub struct WindowHistogram {
    /// The bucketed distribution for this window.
    pub hist: Histogram,
    /// Per-bucket exemplar slots, same length as `hist.bucket_counts()`.
    pub exemplars: Vec<Option<Exemplar>>,
}

impl WindowHistogram {
    fn new(hist: Histogram) -> WindowHistogram {
        let slots = hist.bucket_counts().len();
        WindowHistogram {
            hist,
            exemplars: vec![None; slots],
        }
    }

    fn observe(&mut self, value_ms: f64, at: SimInstant, trace_id: Option<u64>) {
        self.hist.observe(value_ms);
        if let Some(trace_id) = trace_id {
            let idx = self
                .hist
                .bounds()
                .iter()
                .position(|&b| value_ms <= b)
                .unwrap_or(self.hist.bounds().len());
            let slot = &mut self.exemplars[idx];
            let replace = match slot {
                None => true,
                Some(prev) => value_ms > prev.value_ms,
            };
            if replace {
                *slot = Some(Exemplar {
                    trace_id,
                    value_ms,
                    at,
                });
            }
        }
    }
}

/// One fixed-width slice of virtual time.
#[derive(Debug, Clone)]
pub struct Window {
    /// Window ordinal: `floor(t / width)`.
    pub index: u64,
    /// Inclusive window start (`index * width`).
    pub start: SimInstant,
    counters: BTreeMap<SeriesKey, u64>,
    hists: BTreeMap<SeriesKey, WindowHistogram>,
}

impl Window {
    fn new(index: u64, width: SimDuration) -> Window {
        Window {
            index,
            start: SimInstant::EPOCH + SimDuration::from_nanos(index * width.as_nanos()),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// Value of one counter series in this window (0 when absent).
    pub fn counter(&self, key: &SeriesKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// All counter series in this window, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&SeriesKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// One histogram series in this window, if it received observations.
    pub fn histogram(&self, key: &SeriesKey) -> Option<&WindowHistogram> {
        self.hists.get(key)
    }

    /// All histogram series in this window, in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&SeriesKey, &WindowHistogram)> {
        self.hists.iter()
    }

    /// Sum of a counter metric over every label split in this window.
    pub fn counter_metric(&self, metric: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.metric == metric)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Sum of a counter metric restricted to one tenant in this window.
    pub fn counter_metric_tenant(&self, metric: &str, tenant: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.metric == metric && k.tenant == tenant)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merged histogram for a metric (optionally one tenant) in this
    /// window; `None` when no matching series exists.
    pub fn merged_histogram(&self, metric: &str, tenant: Option<&str>) -> Option<Histogram> {
        let mut merged: Option<Histogram> = None;
        for (k, wh) in &self.hists {
            if k.metric != metric {
                continue;
            }
            if let Some(t) = tenant {
                if k.tenant != t {
                    continue;
                }
            }
            match &mut merged {
                None => merged = Some(wh.hist.clone()),
                Some(m) => m.merge(&wh.hist),
            }
        }
        merged
    }
}

/// Recorder shape: window width, ring capacity, default histogram
/// bucket bounds (used by [`Recorder::observe`]; merged-in histograms
/// keep their own bounds).
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Window width in virtual time.
    pub width: SimDuration,
    /// Maximum number of materialized windows kept; older windows roll
    /// off the front of the ring.
    pub capacity: usize,
    /// Bucket bounds for histograms created by `observe`.
    pub bounds: Vec<f64>,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            width: SimDuration::from_secs(60),
            capacity: 64,
            bounds: crate::DEFAULT_LATENCY_BOUNDS_MS.to_vec(),
        }
    }
}

/// The windowed time-series recorder.
///
/// Windows are materialized sparsely: only indices that receive data
/// exist, kept in ascending order in a `VecDeque`. Observations older
/// than the oldest retained window (after a rollover) are dropped and
/// counted in [`Recorder::late_drops`] rather than resurrecting evicted
/// windows.
#[derive(Debug, Clone)]
pub struct Recorder {
    config: RecorderConfig,
    windows: VecDeque<Window>,
    /// Windows evicted off the ring so far.
    pub windows_rolled: u64,
    /// Observations dropped because their window had already rolled off.
    pub late_drops: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(RecorderConfig::default())
    }
}

impl Recorder {
    /// Creates a recorder.
    ///
    /// # Panics
    ///
    /// Panics if the window width is zero or the capacity is zero.
    pub fn new(config: RecorderConfig) -> Recorder {
        assert!(config.width.as_nanos() > 0, "window width must be nonzero");
        assert!(config.capacity > 0, "ring needs at least one window");
        Recorder {
            config,
            windows: VecDeque::new(),
            windows_rolled: 0,
            late_drops: 0,
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// Window ordinal containing `at`.
    pub fn index_of(&self, at: SimInstant) -> u64 {
        at.as_nanos() / self.config.width.as_nanos()
    }

    /// Materialized windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// The materialized window containing `at`, if any.
    pub fn window_containing(&self, at: SimInstant) -> Option<&Window> {
        let idx = self.index_of(at);
        self.windows.iter().find(|w| w.index == idx)
    }

    fn window_mut(&mut self, at: SimInstant) -> Option<&mut Window> {
        let idx = self.index_of(at);
        if let Some(front) = self.windows.front() {
            if idx < front.index && self.windows_rolled > 0 {
                self.late_drops += 1;
                return None;
            }
        }
        // Find the insertion point; most feeds are monotone in virtual
        // time so this is almost always the back.
        let pos = self.windows.partition_point(|w| w.index < idx);
        let exists = self.windows.get(pos).is_some_and(|w| w.index == idx);
        if !exists {
            self.windows
                .insert(pos, Window::new(idx, self.config.width));
            while self.windows.len() > self.config.capacity {
                self.windows.pop_front();
                self.windows_rolled += 1;
            }
        }
        // Re-locate after the possible eviction shifted positions.
        let pos = self.windows.partition_point(|w| w.index < idx);
        if self.windows.get(pos).is_some_and(|w| w.index == idx) {
            self.windows.get_mut(pos)
        } else {
            // The window we just inserted was itself evicted (idx was the
            // oldest index of an already-full ring).
            self.late_drops += 1;
            None
        }
    }

    /// Adds `n` to a counter series at virtual time `at`.
    pub fn inc(&mut self, at: SimInstant, key: SeriesKey, n: u64) {
        if let Some(w) = self.window_mut(at) {
            *w.counters.entry(key).or_insert(0) += n;
        }
    }

    /// Records one histogram observation at virtual time `at`.
    pub fn observe(&mut self, at: SimInstant, key: SeriesKey, value_ms: f64) {
        self.observe_exemplar(at, key, value_ms, None);
    }

    /// Records one histogram observation carrying an optional exemplar
    /// trace id (a retained trace the bucket can link to).
    pub fn observe_exemplar(
        &mut self,
        at: SimInstant,
        key: SeriesKey,
        value_ms: f64,
        trace_id: Option<u64>,
    ) {
        let bounds = self.config.bounds.clone();
        if let Some(w) = self.window_mut(at) {
            w.hists
                .entry(key)
                .or_insert_with(|| WindowHistogram::new(Histogram::new(&bounds)))
                .observe(value_ms, at, trace_id);
        }
    }

    /// Folds a pre-bucketed histogram into a series (bridge path for
    /// platform gateways that aggregate before the recorder sees data).
    /// The series keeps the incoming histogram's bounds; later merges
    /// must match them (see [`Histogram::merge`]).
    pub fn merge_histogram(&mut self, at: SimInstant, key: SeriesKey, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        if let Some(w) = self.window_mut(at) {
            match w.hists.get_mut(&key) {
                Some(wh) => wh.hist.merge(h),
                None => {
                    w.hists.insert(key, WindowHistogram::new(h.clone()));
                }
            }
        }
    }

    /// Sum of a counter metric over every retained window and label split.
    pub fn counter_total(&self, metric: &str) -> u64 {
        self.windows.iter().map(|w| w.counter_metric(metric)).sum()
    }

    /// Tenants that appear on any series of `metric` (counter or
    /// histogram), including the empty tenant when unlabelled series
    /// exist.
    pub fn tenants_of(&self, metric: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for w in &self.windows {
            for (k, _) in w.counters.iter().filter(|(k, _)| k.metric == metric) {
                out.insert(k.tenant.clone());
            }
            for (k, _) in w.hists.iter().filter(|(k, _)| k.metric == metric) {
                out.insert(k.tenant.clone());
            }
        }
        out
    }

    /// Merged histogram for a metric (optionally one tenant) across all
    /// retained windows.
    pub fn merged_histogram(&self, metric: &str, tenant: Option<&str>) -> Option<Histogram> {
        let mut merged: Option<Histogram> = None;
        for w in &self.windows {
            if let Some(h) = w.merged_histogram(metric, tenant) {
                match &mut merged {
                    None => merged = Some(h),
                    Some(m) => m.merge(&h),
                }
            }
        }
        merged
    }

    /// All exemplars across the ring in deterministic order
    /// (window, series, bucket).
    pub fn exemplars(&self) -> Vec<(&Window, &SeriesKey, usize, &Exemplar)> {
        let mut out = Vec::new();
        for w in &self.windows {
            for (k, wh) in &w.hists {
                for (bucket, ex) in wh.exemplars.iter().enumerate() {
                    if let Some(ex) = ex {
                        out.push((w, k, bucket, ex));
                    }
                }
            }
        }
        out
    }

    /// Renders the ring-aggregated series in the Prometheus text
    /// exposition format: counters summed across windows, histograms
    /// merged across windows, plus the recorder's own meta counters.
    pub fn render(&self) -> String {
        let mut counters: BTreeMap<SeriesKey, u64> = BTreeMap::new();
        let mut hists: BTreeMap<SeriesKey, Histogram> = BTreeMap::new();
        for w in &self.windows {
            for (k, &v) in &w.counters {
                *counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, wh) in &w.hists {
                match hists.get_mut(k) {
                    Some(h) => h.merge(&wh.hist),
                    None => {
                        hists.insert(k.clone(), wh.hist.clone());
                    }
                }
            }
        }
        let mut out = String::new();
        for (k, v) in &counters {
            out.push_str(&format!("{} {v}\n", k.series()));
        }
        for (k, h) in &hists {
            render_histogram(&mut out, &k.metric, &k.labels(), h);
        }
        out.push_str(&format!("obs_windows_retained {}\n", self.windows.len()));
        out.push_str(&format!(
            "obs_windows_rolled_total {}\n",
            self.windows_rolled
        ));
        out.push_str(&format!("obs_late_drops_total {}\n", self.late_drops));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_secs(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    fn small_config(capacity: usize) -> RecorderConfig {
        RecorderConfig {
            width: SimDuration::from_secs(60),
            capacity,
            bounds: vec![10.0, 100.0, 1000.0],
        }
    }

    #[test]
    fn series_key_labels_and_ordering() {
        let bare = SeriesKey::new("m");
        assert_eq!(bare.labels(), "");
        assert_eq!(bare.series(), "m");
        let full = SeriesKey::new("m").tenant("a").node(3).gear("cow");
        assert_eq!(full.labels(), "tenant=\"a\",node=\"3\",gear=\"cow\"");
        assert_eq!(full.series(), "m{tenant=\"a\",node=\"3\",gear=\"cow\"}");
        assert!(bare < full, "unlabelled sorts before labelled");
    }

    #[test]
    fn observations_land_in_their_window() {
        let mut r = Recorder::new(small_config(8));
        let key = SeriesKey::new("req").tenant("a");
        r.inc(at_secs(5), key.clone(), 1);
        r.inc(at_secs(59), key.clone(), 2);
        r.inc(at_secs(60), key.clone(), 4);
        let windows: Vec<_> = r.windows().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[0].counter(&key), 3);
        assert_eq!(windows[1].index, 1);
        assert_eq!(windows[1].counter(&key), 4);
        assert_eq!(windows[1].start, at_secs(60));
        assert_eq!(r.counter_total("req"), 7);
    }

    #[test]
    fn sparse_windows_skip_quiet_periods() {
        let mut r = Recorder::new(small_config(8));
        r.inc(at_secs(0), SeriesKey::new("x"), 1);
        r.inc(at_secs(600), SeriesKey::new("x"), 1);
        assert_eq!(r.windows().count(), 2, "quiet windows not materialized");
    }

    #[test]
    fn rollover_evicts_oldest_and_counts_late_drops() {
        let mut r = Recorder::new(small_config(2));
        r.inc(at_secs(0), SeriesKey::new("x"), 1);
        r.inc(at_secs(60), SeriesKey::new("x"), 1);
        r.inc(at_secs(120), SeriesKey::new("x"), 1);
        assert_eq!(r.windows_rolled, 1);
        assert_eq!(r.windows().map(|w| w.index).collect::<Vec<_>>(), [1, 2]);
        // A write into the evicted window is dropped, not resurrected.
        r.inc(at_secs(30), SeriesKey::new("x"), 1);
        assert_eq!(r.late_drops, 1);
        assert_eq!(r.windows().count(), 2);
        assert_eq!(r.counter_total("x"), 2);
    }

    #[test]
    fn out_of_order_before_rollover_backfills() {
        let mut r = Recorder::new(small_config(8));
        r.inc(at_secs(120), SeriesKey::new("x"), 1);
        r.inc(at_secs(0), SeriesKey::new("x"), 1);
        assert_eq!(r.windows().map(|w| w.index).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(r.late_drops, 0);
    }

    #[test]
    fn exemplar_keeps_bucket_max_first_seen_wins() {
        let mut r = Recorder::new(small_config(4));
        let key = SeriesKey::new("lat_ms").tenant("a");
        r.observe_exemplar(at_secs(1), key.clone(), 5.0, Some(11));
        r.observe_exemplar(at_secs(2), key.clone(), 9.0, Some(22));
        r.observe_exemplar(at_secs(3), key.clone(), 9.0, Some(33)); // tie: 22 kept
        r.observe_exemplar(at_secs(4), key.clone(), 50.0, Some(44));
        r.observe(at_secs(5), key.clone(), 70.0); // no trace: bucket max unchanged
        let w = r.window_containing(at_secs(1)).unwrap();
        let wh = w.histogram(&key).unwrap();
        let ex0 = wh.exemplars[0].unwrap();
        assert_eq!((ex0.trace_id, ex0.value_ms), (22, 9.0));
        let ex1 = wh.exemplars[1].unwrap();
        assert_eq!((ex1.trace_id, ex1.value_ms), (44, 50.0));
        assert_eq!(wh.hist.count(), 5);
        let all = r.exemplars();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].2, 0, "bucket order");
    }

    #[test]
    fn merge_histogram_adopts_foreign_bounds() {
        let mut r = Recorder::new(small_config(4));
        let mut h = Histogram::new(&[7.0, 77.0]);
        h.observe(5.0);
        let key = SeriesKey::new("faas_latency_ms").tenant("fn");
        r.merge_histogram(at_secs(0), key.clone(), &h);
        r.merge_histogram(at_secs(0), key.clone(), &h);
        // Empty histograms are skipped entirely (no bounds clash).
        r.merge_histogram(at_secs(0), key.clone(), &Histogram::default());
        let w = r.window_containing(at_secs(0)).unwrap();
        let wh = w.histogram(&key).unwrap();
        assert_eq!(wh.hist.bounds(), &[7.0, 77.0]);
        assert_eq!(wh.hist.count(), 2);
    }

    #[test]
    fn render_aggregates_ring_deterministically() {
        let mut r = Recorder::new(small_config(8));
        r.inc(at_secs(0), SeriesKey::new("req_total").tenant("b"), 2);
        r.inc(at_secs(61), SeriesKey::new("req_total").tenant("a"), 1);
        r.inc(at_secs(61), SeriesKey::new("req_total").tenant("b"), 1);
        r.observe(at_secs(0), SeriesKey::new("lat_ms").tenant("a"), 50.0);
        let text = r.render();
        assert!(text.contains("req_total{tenant=\"a\"} 1\n"));
        assert!(text.contains("req_total{tenant=\"b\"} 3\n"));
        assert!(text.contains("lat_ms_bucket{tenant=\"a\",le=\"100\"} 1\n"));
        assert!(text.contains("obs_windows_retained 2\n"));
        assert!(text.contains("obs_late_drops_total 0\n"));
        // Tenant a sorts before b, twice over renders byte-identically.
        assert!(text.find("tenant=\"a\"").unwrap() < text.find("tenant=\"b\"").unwrap());
        assert_eq!(text, r.render());
    }

    #[test]
    fn merged_histogram_filters_by_tenant() {
        let mut r = Recorder::new(small_config(8));
        r.observe(at_secs(0), SeriesKey::new("lat").tenant("a"), 5.0);
        r.observe(at_secs(0), SeriesKey::new("lat").tenant("b"), 500.0);
        r.observe(at_secs(70), SeriesKey::new("lat").tenant("a"), 50.0);
        assert_eq!(r.merged_histogram("lat", None).unwrap().count(), 3);
        assert_eq!(r.merged_histogram("lat", Some("a")).unwrap().count(), 2);
        assert!(r.merged_histogram("lat", Some("zzz")).is_none());
        assert_eq!(
            r.tenants_of("lat").into_iter().collect::<Vec<_>>(),
            ["a", "b"]
        );
    }
}
