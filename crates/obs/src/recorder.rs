//! Windowed time-series recorder over the virtual clock.
//!
//! The fleet sim pushes hundreds of thousands of events through a run;
//! end-of-run scalar counters cannot say *when* a cold-start tail
//! spiked or which tenant caused it. The recorder slices virtual time
//! into fixed-width windows (a bounded ring) and keeps, per window,
//! counters and streaming histograms keyed by
//! (metric, tenant, node, gear). Everything is `BTreeMap`-backed so a
//! given event sequence renders byte-identically on every run.
//!
//! Series identities are **interned**: the recorder owns a [`KeyTable`]
//! mapping each distinct [`SeriesKey`] to a dense [`SeriesId`], and the
//! per-window maps are keyed by id. Hot paths intern a key once and feed
//! [`Recorder::inc_id`] / [`Recorder::observe_exemplar_id`] with no
//! per-event `String` clones; the key-based entry points remain as
//! intern-and-delegate conveniences. All rendered output is resolved
//! back to keys and sorted by key, so the exposition stays byte-stable
//! regardless of interning order.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use prebake_platform::metrics::{render_histogram, Histogram};
use prebake_sim::time::{SimDuration, SimInstant};

/// Identity of one time series: a metric name plus the label dimensions
/// the fleet cares about. Empty `tenant`/`gear` and `None` node mean the
/// label is absent (the series is an unsplit aggregate on that axis).
///
/// Ordering is derived — (metric, tenant, node, gear) — which fixes the
/// exposition and dashboard ordering deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric name, e.g. `fleet_latency_ms` (see DESIGN.md §15 for the
    /// naming scheme).
    pub metric: String,
    /// Tenant / function name, or empty when unattributed.
    pub tenant: String,
    /// Worker/node index, when the event is node-local.
    pub node: Option<u32>,
    /// Start gear label (`vanilla`, `eager`, ...), or empty.
    pub gear: String,
}

impl SeriesKey {
    /// A key with only the metric name set.
    pub fn new(metric: &str) -> SeriesKey {
        SeriesKey {
            metric: metric.to_owned(),
            ..SeriesKey::default()
        }
    }

    /// Builder-style tenant label.
    pub fn tenant(mut self, tenant: &str) -> SeriesKey {
        self.tenant = tenant.to_owned();
        self
    }

    /// Builder-style node label.
    pub fn node(mut self, node: u32) -> SeriesKey {
        self.node = Some(node);
        self
    }

    /// Builder-style gear label.
    pub fn gear(mut self, gear: &str) -> SeriesKey {
        self.gear = gear.to_owned();
        self
    }

    /// Prometheus label pairs without braces (`tenant="a",node="0"`),
    /// empty when no label is set.
    pub fn labels(&self) -> String {
        let mut parts = Vec::new();
        if !self.tenant.is_empty() {
            parts.push(format!("tenant=\"{}\"", self.tenant));
        }
        if let Some(node) = self.node {
            parts.push(format!("node=\"{node}\""));
        }
        if !self.gear.is_empty() {
            parts.push(format!("gear=\"{}\"", self.gear));
        }
        parts.join(",")
    }

    /// Full series name, `metric{labels}` or bare `metric`.
    pub fn series(&self) -> String {
        let labels = self.labels();
        if labels.is_empty() {
            self.metric.clone()
        } else {
            format!("{}{{{labels}}}", self.metric)
        }
    }
}

/// Dense handle for an interned [`SeriesKey`] — an index into the
/// recorder's [`KeyTable`]. Ids are assigned in first-intern order and
/// are only meaningful against the table that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesId(u32);

impl SeriesId {
    /// The id's table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only intern table mapping [`SeriesKey`]s to dense
/// [`SeriesId`]s and back.
#[derive(Debug, Clone, Default)]
pub struct KeyTable {
    keys: Vec<SeriesKey>,
    ids: BTreeMap<SeriesKey, SeriesId>,
}

impl KeyTable {
    /// The id for `key`, interning it on first sight.
    pub fn intern(&mut self, key: &SeriesKey) -> SeriesId {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = SeriesId(u32::try_from(self.keys.len()).expect("series cardinality fits u32"));
        self.keys.push(key.clone());
        self.ids.insert(key.clone(), id);
        id
    }

    /// The id for `key` if it has been interned.
    pub fn get(&self, key: &SeriesKey) -> Option<SeriesId> {
        self.ids.get(key).copied()
    }

    /// The key an id resolves to.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different table.
    pub fn resolve(&self, id: SeriesId) -> &SeriesKey {
        &self.keys[id.index()]
    }

    /// Number of interned series.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no series has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// A link from a histogram bucket to one retained trace: the classic
/// OpenMetrics exemplar, minus the wire format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Trace (request) id the observation came from.
    pub trace_id: u64,
    /// The observed value.
    pub value_ms: f64,
    /// When it was observed.
    pub at: SimInstant,
}

/// A histogram plus one optional exemplar per bucket (`+Inf` included).
/// The kept exemplar is the largest value seen in the bucket — the most
/// interesting trace to follow from a latency bucket — with first-seen
/// winning ties so replays are deterministic.
#[derive(Debug, Clone)]
pub struct WindowHistogram {
    /// The bucketed distribution for this window.
    pub hist: Histogram,
    /// Per-bucket exemplar slots, same length as `hist.bucket_counts()`.
    pub exemplars: Vec<Option<Exemplar>>,
}

impl WindowHistogram {
    fn new(hist: Histogram) -> WindowHistogram {
        let slots = hist.bucket_counts().len();
        WindowHistogram {
            hist,
            exemplars: vec![None; slots],
        }
    }

    fn observe(&mut self, value_ms: f64, at: SimInstant, trace_id: Option<u64>) {
        self.hist.observe(value_ms);
        if let Some(trace_id) = trace_id {
            let idx = self
                .hist
                .bounds()
                .iter()
                .position(|&b| value_ms <= b)
                .unwrap_or(self.hist.bounds().len());
            let slot = &mut self.exemplars[idx];
            let replace = match slot {
                None => true,
                Some(prev) => value_ms > prev.value_ms,
            };
            if replace {
                *slot = Some(Exemplar {
                    trace_id,
                    value_ms,
                    at,
                });
            }
        }
    }

    /// Folds another window-histogram in: bucket counts add, and each
    /// bucket keeps the larger exemplar (`self` wins ties, so absorbing
    /// shard outputs in shard order is deterministic).
    fn absorb(&mut self, other: &WindowHistogram) {
        self.hist.merge(&other.hist);
        for (slot, incoming) in self.exemplars.iter_mut().zip(&other.exemplars) {
            if let Some(ex) = incoming {
                let replace = match slot {
                    None => true,
                    Some(prev) => ex.value_ms > prev.value_ms,
                };
                if replace {
                    *slot = Some(*ex);
                }
            }
        }
    }
}

/// One fixed-width slice of virtual time. Series data is keyed by
/// [`SeriesId`]; read it through [`WindowView`], which carries the
/// resolving [`KeyTable`].
#[derive(Debug, Clone)]
pub struct Window {
    /// Window ordinal: `floor(t / width)`.
    pub index: u64,
    /// Inclusive window start (`index * width`).
    pub start: SimInstant,
    counters: BTreeMap<SeriesId, u64>,
    hists: BTreeMap<SeriesId, WindowHistogram>,
}

impl Window {
    fn new(index: u64, width: SimDuration) -> Window {
        Window {
            index,
            start: SimInstant::EPOCH + SimDuration::from_nanos(index * width.as_nanos()),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }
}

/// A window paired with the key table that resolves its series ids —
/// what [`Recorder::windows`] yields. Copyable and cheap; all lookups
/// resolve ids lazily and iterate in key order.
#[derive(Debug, Clone, Copy)]
pub struct WindowView<'a> {
    /// Window ordinal: `floor(t / width)`.
    pub index: u64,
    /// Inclusive window start (`index * width`).
    pub start: SimInstant,
    keys: &'a KeyTable,
    win: &'a Window,
}

impl<'a> WindowView<'a> {
    fn new(keys: &'a KeyTable, win: &'a Window) -> WindowView<'a> {
        WindowView {
            index: win.index,
            start: win.start,
            keys,
            win,
        }
    }

    /// Value of one counter series in this window (0 when absent).
    pub fn counter(&self, key: &SeriesKey) -> u64 {
        self.keys
            .get(key)
            .and_then(|id| self.win.counters.get(&id))
            .copied()
            .unwrap_or(0)
    }

    /// All counter series in this window, in key order.
    pub fn counters(&self) -> Vec<(&'a SeriesKey, u64)> {
        let mut out: Vec<(&SeriesKey, u64)> = self
            .win
            .counters
            .iter()
            .map(|(&id, &v)| (self.keys.resolve(id), v))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// One histogram series in this window, if it received observations.
    pub fn histogram(&self, key: &SeriesKey) -> Option<&'a WindowHistogram> {
        self.keys.get(key).and_then(|id| self.win.hists.get(&id))
    }

    /// All histogram series in this window, in key order.
    pub fn histograms(&self) -> Vec<(&'a SeriesKey, &'a WindowHistogram)> {
        let mut out: Vec<(&SeriesKey, &WindowHistogram)> = self
            .win
            .hists
            .iter()
            .map(|(&id, wh)| (self.keys.resolve(id), wh))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Sum of a counter metric over every label split in this window.
    pub fn counter_metric(&self, metric: &str) -> u64 {
        self.win
            .counters
            .iter()
            .filter(|(&id, _)| self.keys.resolve(id).metric == metric)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Sum of a counter metric restricted to one tenant in this window.
    pub fn counter_metric_tenant(&self, metric: &str, tenant: &str) -> u64 {
        self.win
            .counters
            .iter()
            .filter(|(&id, _)| {
                let k = self.keys.resolve(id);
                k.metric == metric && k.tenant == tenant
            })
            .map(|(_, &v)| v)
            .sum()
    }

    /// Merged histogram for a metric (optionally one tenant) in this
    /// window; `None` when no matching series exists. Merge order is
    /// key order, so mixed-bounds series fail deterministically.
    pub fn merged_histogram(&self, metric: &str, tenant: Option<&str>) -> Option<Histogram> {
        let mut merged: Option<Histogram> = None;
        for (k, wh) in self.histograms() {
            if k.metric != metric {
                continue;
            }
            if let Some(t) = tenant {
                if k.tenant != t {
                    continue;
                }
            }
            match &mut merged {
                None => merged = Some(wh.hist.clone()),
                Some(m) => m.merge(&wh.hist),
            }
        }
        merged
    }
}

/// Recorder shape: window width, ring capacity, default histogram
/// bucket bounds (used by [`Recorder::observe`]; merged-in histograms
/// keep their own bounds).
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Window width in virtual time.
    pub width: SimDuration,
    /// Maximum number of materialized windows kept; older windows roll
    /// off the front of the ring.
    pub capacity: usize,
    /// Bucket bounds for histograms created by `observe`.
    pub bounds: Vec<f64>,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            width: SimDuration::from_secs(60),
            capacity: 64,
            bounds: crate::DEFAULT_LATENCY_BOUNDS_MS.to_vec(),
        }
    }
}

/// The windowed time-series recorder.
///
/// Windows are materialized sparsely: only indices that receive data
/// exist, kept in ascending order in a `VecDeque`. Observations older
/// than the oldest retained window (after a rollover) are dropped and
/// counted in [`Recorder::late_drops`] rather than resurrecting evicted
/// windows.
#[derive(Debug, Clone)]
pub struct Recorder {
    config: RecorderConfig,
    keys: KeyTable,
    windows: VecDeque<Window>,
    /// Windows evicted off the ring so far.
    pub windows_rolled: u64,
    /// Observations dropped because their window had already rolled off.
    pub late_drops: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(RecorderConfig::default())
    }
}

impl Recorder {
    /// Creates a recorder.
    ///
    /// # Panics
    ///
    /// Panics if the window width is zero or the capacity is zero.
    pub fn new(config: RecorderConfig) -> Recorder {
        assert!(config.width.as_nanos() > 0, "window width must be nonzero");
        assert!(config.capacity > 0, "ring needs at least one window");
        Recorder {
            config,
            keys: KeyTable::default(),
            windows: VecDeque::new(),
            windows_rolled: 0,
            late_drops: 0,
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// The series intern table.
    pub fn keys(&self) -> &KeyTable {
        &self.keys
    }

    /// Interns a series key, returning the dense id hot paths should
    /// cache and feed to [`Recorder::inc_id`] /
    /// [`Recorder::observe_exemplar_id`].
    pub fn intern(&mut self, key: &SeriesKey) -> SeriesId {
        self.keys.intern(key)
    }

    /// Window ordinal containing `at`.
    pub fn index_of(&self, at: SimInstant) -> u64 {
        at.as_nanos() / self.config.width.as_nanos()
    }

    /// Materialized windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = WindowView<'_>> {
        self.windows.iter().map(|w| WindowView::new(&self.keys, w))
    }

    /// The materialized window containing `at`, if any.
    pub fn window_containing(&self, at: SimInstant) -> Option<WindowView<'_>> {
        let idx = self.index_of(at);
        self.windows
            .iter()
            .find(|w| w.index == idx)
            .map(|w| WindowView::new(&self.keys, w))
    }

    fn window_mut_at_index(&mut self, idx: u64) -> Option<&mut Window> {
        locate_window(
            &mut self.windows,
            &mut self.windows_rolled,
            &mut self.late_drops,
            self.config.capacity,
            self.config.width,
            idx,
        )
    }

    fn window_mut(&mut self, at: SimInstant) -> Option<&mut Window> {
        let idx = self.index_of(at);
        self.window_mut_at_index(idx)
    }

    /// Adds `n` to a counter series at virtual time `at`.
    pub fn inc(&mut self, at: SimInstant, key: SeriesKey, n: u64) {
        let id = self.keys.intern(&key);
        self.inc_id(at, id, n);
    }

    /// Adds `n` to an interned counter series at virtual time `at` —
    /// the allocation-free hot path.
    pub fn inc_id(&mut self, at: SimInstant, id: SeriesId, n: u64) {
        if let Some(w) = self.window_mut(at) {
            *w.counters.entry(id).or_insert(0) += n;
        }
    }

    /// Records one histogram observation at virtual time `at`.
    pub fn observe(&mut self, at: SimInstant, key: SeriesKey, value_ms: f64) {
        self.observe_exemplar(at, key, value_ms, None);
    }

    /// Records one histogram observation carrying an optional exemplar
    /// trace id (a retained trace the bucket can link to).
    pub fn observe_exemplar(
        &mut self,
        at: SimInstant,
        key: SeriesKey,
        value_ms: f64,
        trace_id: Option<u64>,
    ) {
        let id = self.keys.intern(&key);
        self.observe_exemplar_id(at, id, value_ms, trace_id);
    }

    /// Records one histogram observation on an interned series — the
    /// allocation-free hot path.
    pub fn observe_exemplar_id(
        &mut self,
        at: SimInstant,
        id: SeriesId,
        value_ms: f64,
        trace_id: Option<u64>,
    ) {
        // Split-borrow through the free helper so the window lookup and
        // the config bounds never alias.
        let idx = at.as_nanos() / self.config.width.as_nanos();
        let bounds = &self.config.bounds;
        if let Some(w) = locate_window(
            &mut self.windows,
            &mut self.windows_rolled,
            &mut self.late_drops,
            self.config.capacity,
            self.config.width,
            idx,
        ) {
            w.hists
                .entry(id)
                .or_insert_with(|| WindowHistogram::new(Histogram::new(bounds)))
                .observe(value_ms, at, trace_id);
        }
    }

    /// Folds a pre-bucketed histogram into a series (bridge path for
    /// platform gateways that aggregate before the recorder sees data).
    /// The series keeps the incoming histogram's bounds; later merges
    /// must match them (see [`Histogram::merge`]).
    pub fn merge_histogram(&mut self, at: SimInstant, key: SeriesKey, h: &Histogram) {
        if h.count() == 0 {
            return;
        }
        let id = self.keys.intern(&key);
        if let Some(w) = self.window_mut(at) {
            match w.hists.get_mut(&id) {
                Some(wh) => wh.hist.merge(h),
                None => {
                    w.hists.insert(id, WindowHistogram::new(h.clone()));
                }
            }
        }
    }

    /// Folds another recorder's windows into this one — the multi-shard
    /// merge path. Counters add, histograms merge bucket-wise, and each
    /// exemplar bucket keeps the larger value (`self` wins ties, so
    /// absorbing shards in index order is deterministic). Ring
    /// bookkeeping (`windows_rolled`, `late_drops`) is summed.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ (the rings would not align) or
    /// if a shared series carries mismatched histogram bounds.
    pub fn absorb(&mut self, other: &Recorder) {
        assert_eq!(
            self.config.width.as_nanos(),
            other.config.width.as_nanos(),
            "absorb needs matching window widths"
        );
        for w in &other.windows {
            // Resolve through the foreign table, intern into ours.
            let counters: Vec<(SeriesId, u64)> = w
                .counters
                .iter()
                .map(|(&id, &v)| (self.keys.intern(other.keys.resolve(id)), v))
                .collect();
            let hists: Vec<(SeriesId, &WindowHistogram)> = w
                .hists
                .iter()
                .map(|(&id, wh)| (self.keys.intern(other.keys.resolve(id)), wh))
                .collect();
            let Some(mine) = self.window_mut_at_index(w.index) else {
                continue;
            };
            for (id, v) in counters {
                *mine.counters.entry(id).or_insert(0) += v;
            }
            for (id, wh) in hists {
                match mine.hists.get_mut(&id) {
                    Some(target) => target.absorb(wh),
                    None => {
                        mine.hists.insert(id, wh.clone());
                    }
                }
            }
        }
        self.windows_rolled += other.windows_rolled;
        self.late_drops += other.late_drops;
    }

    /// Sum of a counter metric over every retained window and label split.
    pub fn counter_total(&self, metric: &str) -> u64 {
        self.windows().map(|w| w.counter_metric(metric)).sum()
    }

    /// Tenants that appear on any series of `metric` (counter or
    /// histogram), including the empty tenant when unlabelled series
    /// exist.
    pub fn tenants_of(&self, metric: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for w in &self.windows {
            for &id in w.counters.keys() {
                let k = self.keys.resolve(id);
                if k.metric == metric {
                    out.insert(k.tenant.clone());
                }
            }
            for &id in w.hists.keys() {
                let k = self.keys.resolve(id);
                if k.metric == metric {
                    out.insert(k.tenant.clone());
                }
            }
        }
        out
    }

    /// Merged histogram for a metric (optionally one tenant) across all
    /// retained windows.
    pub fn merged_histogram(&self, metric: &str, tenant: Option<&str>) -> Option<Histogram> {
        let mut merged: Option<Histogram> = None;
        for w in self.windows() {
            if let Some(h) = w.merged_histogram(metric, tenant) {
                match &mut merged {
                    None => merged = Some(h),
                    Some(m) => m.merge(&h),
                }
            }
        }
        merged
    }

    /// All exemplars across the ring in deterministic order
    /// (window, series, bucket).
    pub fn exemplars(&self) -> Vec<(WindowView<'_>, &SeriesKey, usize, &Exemplar)> {
        let mut out = Vec::new();
        for w in &self.windows {
            let view = WindowView::new(&self.keys, w);
            for (k, wh) in view.histograms() {
                for (bucket, ex) in wh.exemplars.iter().enumerate() {
                    if let Some(ex) = ex {
                        out.push((view, k, bucket, ex));
                    }
                }
            }
        }
        out
    }

    /// Renders the ring-aggregated series in the Prometheus text
    /// exposition format: counters summed across windows, histograms
    /// merged across windows, plus the recorder's own meta counters.
    pub fn render(&self) -> String {
        let mut counters: BTreeMap<&SeriesKey, u64> = BTreeMap::new();
        let mut hists: BTreeMap<&SeriesKey, Histogram> = BTreeMap::new();
        for w in &self.windows {
            for (&id, &v) in &w.counters {
                *counters.entry(self.keys.resolve(id)).or_insert(0) += v;
            }
            for (&id, wh) in &w.hists {
                let k = self.keys.resolve(id);
                match hists.get_mut(k) {
                    Some(h) => h.merge(&wh.hist),
                    None => {
                        hists.insert(k, wh.hist.clone());
                    }
                }
            }
        }
        let mut out = String::new();
        for (k, v) in &counters {
            out.push_str(&format!("{} {v}\n", k.series()));
        }
        for (k, h) in &hists {
            render_histogram(&mut out, &k.metric, &k.labels(), h);
        }
        out.push_str(&format!("obs_windows_retained {}\n", self.windows.len()));
        out.push_str(&format!(
            "obs_windows_rolled_total {}\n",
            self.windows_rolled
        ));
        out.push_str(&format!("obs_late_drops_total {}\n", self.late_drops));
        out
    }
}

/// Finds (materializing on demand) the window at `idx`, enforcing ring
/// capacity and late-drop semantics. A free function over disjoint field
/// borrows so the id-based hot paths can hold the config bounds at the
/// same time.
fn locate_window<'w>(
    windows: &'w mut VecDeque<Window>,
    windows_rolled: &mut u64,
    late_drops: &mut u64,
    capacity: usize,
    width: SimDuration,
    idx: u64,
) -> Option<&'w mut Window> {
    if let Some(front) = windows.front() {
        if idx < front.index && *windows_rolled > 0 {
            *late_drops += 1;
            return None;
        }
    }
    // Find the insertion point; most feeds are monotone in virtual
    // time so this is almost always the back.
    let pos = windows.partition_point(|w| w.index < idx);
    let exists = windows.get(pos).is_some_and(|w| w.index == idx);
    if !exists {
        windows.insert(pos, Window::new(idx, width));
        while windows.len() > capacity {
            windows.pop_front();
            *windows_rolled += 1;
        }
    }
    // Re-locate after the possible eviction shifted positions.
    let pos = windows.partition_point(|w| w.index < idx);
    if windows.get(pos).is_some_and(|w| w.index == idx) {
        windows.get_mut(pos)
    } else {
        // The window we just inserted was itself evicted (idx was the
        // oldest index of an already-full ring).
        *late_drops += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_secs(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    fn small_config(capacity: usize) -> RecorderConfig {
        RecorderConfig {
            width: SimDuration::from_secs(60),
            capacity,
            bounds: vec![10.0, 100.0, 1000.0],
        }
    }

    #[test]
    fn series_key_labels_and_ordering() {
        let bare = SeriesKey::new("m");
        assert_eq!(bare.labels(), "");
        assert_eq!(bare.series(), "m");
        let full = SeriesKey::new("m").tenant("a").node(3).gear("cow");
        assert_eq!(full.labels(), "tenant=\"a\",node=\"3\",gear=\"cow\"");
        assert_eq!(full.series(), "m{tenant=\"a\",node=\"3\",gear=\"cow\"}");
        assert!(bare < full, "unlabelled sorts before labelled");
    }

    #[test]
    fn interning_reuses_ids_and_resolves_back() {
        let mut r = Recorder::new(small_config(4));
        let a = r.intern(&SeriesKey::new("m").tenant("a"));
        let b = r.intern(&SeriesKey::new("m").tenant("b"));
        assert_ne!(a, b);
        assert_eq!(r.intern(&SeriesKey::new("m").tenant("a")), a);
        assert_eq!(r.keys().len(), 2);
        assert_eq!(r.keys().resolve(a).tenant, "a");
        // The id path and the key path land on the same series.
        r.inc_id(at_secs(0), a, 2);
        r.inc(at_secs(0), SeriesKey::new("m").tenant("a"), 3);
        let w = r.window_containing(at_secs(0)).unwrap();
        assert_eq!(w.counter(&SeriesKey::new("m").tenant("a")), 5);
    }

    #[test]
    fn observations_land_in_their_window() {
        let mut r = Recorder::new(small_config(8));
        let key = SeriesKey::new("req").tenant("a");
        r.inc(at_secs(5), key.clone(), 1);
        r.inc(at_secs(59), key.clone(), 2);
        r.inc(at_secs(60), key.clone(), 4);
        let windows: Vec<_> = r.windows().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[0].counter(&key), 3);
        assert_eq!(windows[1].index, 1);
        assert_eq!(windows[1].counter(&key), 4);
        assert_eq!(windows[1].start, at_secs(60));
        assert_eq!(r.counter_total("req"), 7);
    }

    #[test]
    fn sparse_windows_skip_quiet_periods() {
        let mut r = Recorder::new(small_config(8));
        r.inc(at_secs(0), SeriesKey::new("x"), 1);
        r.inc(at_secs(600), SeriesKey::new("x"), 1);
        assert_eq!(r.windows().count(), 2, "quiet windows not materialized");
    }

    #[test]
    fn rollover_evicts_oldest_and_counts_late_drops() {
        let mut r = Recorder::new(small_config(2));
        r.inc(at_secs(0), SeriesKey::new("x"), 1);
        r.inc(at_secs(60), SeriesKey::new("x"), 1);
        r.inc(at_secs(120), SeriesKey::new("x"), 1);
        assert_eq!(r.windows_rolled, 1);
        assert_eq!(r.windows().map(|w| w.index).collect::<Vec<_>>(), [1, 2]);
        // A write into the evicted window is dropped, not resurrected.
        r.inc(at_secs(30), SeriesKey::new("x"), 1);
        assert_eq!(r.late_drops, 1);
        assert_eq!(r.windows().count(), 2);
        assert_eq!(r.counter_total("x"), 2);
    }

    #[test]
    fn out_of_order_before_rollover_backfills() {
        let mut r = Recorder::new(small_config(8));
        r.inc(at_secs(120), SeriesKey::new("x"), 1);
        r.inc(at_secs(0), SeriesKey::new("x"), 1);
        assert_eq!(r.windows().map(|w| w.index).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(r.late_drops, 0);
    }

    #[test]
    fn exemplar_keeps_bucket_max_first_seen_wins() {
        let mut r = Recorder::new(small_config(4));
        let key = SeriesKey::new("lat_ms").tenant("a");
        r.observe_exemplar(at_secs(1), key.clone(), 5.0, Some(11));
        r.observe_exemplar(at_secs(2), key.clone(), 9.0, Some(22));
        r.observe_exemplar(at_secs(3), key.clone(), 9.0, Some(33)); // tie: 22 kept
        r.observe_exemplar(at_secs(4), key.clone(), 50.0, Some(44));
        r.observe(at_secs(5), key.clone(), 70.0); // no trace: bucket max unchanged
        let w = r.window_containing(at_secs(1)).unwrap();
        let wh = w.histogram(&key).unwrap();
        let ex0 = wh.exemplars[0].unwrap();
        assert_eq!((ex0.trace_id, ex0.value_ms), (22, 9.0));
        let ex1 = wh.exemplars[1].unwrap();
        assert_eq!((ex1.trace_id, ex1.value_ms), (44, 50.0));
        assert_eq!(wh.hist.count(), 5);
        let all = r.exemplars();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].2, 0, "bucket order");
    }

    #[test]
    fn merge_histogram_adopts_foreign_bounds() {
        let mut r = Recorder::new(small_config(4));
        let mut h = Histogram::new(&[7.0, 77.0]);
        h.observe(5.0);
        let key = SeriesKey::new("faas_latency_ms").tenant("fn");
        r.merge_histogram(at_secs(0), key.clone(), &h);
        r.merge_histogram(at_secs(0), key.clone(), &h);
        // Empty histograms are skipped entirely (no bounds clash).
        r.merge_histogram(at_secs(0), key.clone(), &Histogram::default());
        let w = r.window_containing(at_secs(0)).unwrap();
        let wh = w.histogram(&key).unwrap();
        assert_eq!(wh.hist.bounds(), &[7.0, 77.0]);
        assert_eq!(wh.hist.count(), 2);
    }

    #[test]
    fn render_aggregates_ring_deterministically() {
        let mut r = Recorder::new(small_config(8));
        r.inc(at_secs(0), SeriesKey::new("req_total").tenant("b"), 2);
        r.inc(at_secs(61), SeriesKey::new("req_total").tenant("a"), 1);
        r.inc(at_secs(61), SeriesKey::new("req_total").tenant("b"), 1);
        r.observe(at_secs(0), SeriesKey::new("lat_ms").tenant("a"), 50.0);
        let text = r.render();
        assert!(text.contains("req_total{tenant=\"a\"} 1\n"));
        assert!(text.contains("req_total{tenant=\"b\"} 3\n"));
        assert!(text.contains("lat_ms_bucket{tenant=\"a\",le=\"100\"} 1\n"));
        assert!(text.contains("obs_windows_retained 2\n"));
        assert!(text.contains("obs_late_drops_total 0\n"));
        // Tenant a sorts before b, twice over renders byte-identically.
        assert!(text.find("tenant=\"a\"").unwrap() < text.find("tenant=\"b\"").unwrap());
        assert_eq!(text, r.render());
    }

    #[test]
    fn render_is_intern_order_independent() {
        // Two recorders fed the same data in different series order
        // intern different ids but must render the same bytes.
        let feed = |pairs: &[(&str, u64)]| {
            let mut r = Recorder::new(small_config(8));
            for (tenant, n) in pairs {
                r.inc(at_secs(1), SeriesKey::new("req_total").tenant(tenant), *n);
                r.observe(at_secs(1), SeriesKey::new("lat_ms").tenant(tenant), 5.0);
            }
            r
        };
        let fwd = feed(&[("a", 1), ("b", 2)]);
        let rev = feed(&[("b", 2), ("a", 1)]);
        assert_eq!(fwd.render(), rev.render());
    }

    #[test]
    fn absorb_merges_counters_hists_and_exemplars() {
        let mut a = Recorder::new(small_config(8));
        let mut b = Recorder::new(small_config(8));
        // Different intern orders on purpose.
        b.inc(at_secs(61), SeriesKey::new("req").tenant("z"), 7);
        b.inc(at_secs(0), SeriesKey::new("req").tenant("a"), 2);
        b.observe_exemplar(at_secs(0), SeriesKey::new("lat").tenant("a"), 9.0, Some(2));
        a.inc(at_secs(0), SeriesKey::new("req").tenant("a"), 1);
        a.observe_exemplar(at_secs(0), SeriesKey::new("lat").tenant("a"), 5.0, Some(1));
        a.absorb(&b);
        let w0 = a.window_containing(at_secs(0)).unwrap();
        assert_eq!(w0.counter(&SeriesKey::new("req").tenant("a")), 3);
        let wh = w0.histogram(&SeriesKey::new("lat").tenant("a")).unwrap();
        assert_eq!(wh.hist.count(), 2);
        // The larger exemplar (9.0, trace 2) wins the shared bucket.
        assert_eq!(wh.exemplars[0].unwrap().trace_id, 2);
        assert_eq!(a.counter_total("req"), 10);
        assert_eq!(a.windows().count(), 2, "b's window 1 materialized");
        // Absorbing shards in either order renders identically here
        // (exemplar max is symmetric when values differ).
        let mut c = Recorder::new(small_config(8));
        c.inc(at_secs(0), SeriesKey::new("req").tenant("a"), 1);
        c.observe_exemplar(at_secs(0), SeriesKey::new("lat").tenant("a"), 5.0, Some(1));
        let mut b2 = b.clone();
        b2.absorb(&c);
        assert_eq!(a.render(), b2.render());
    }

    #[test]
    fn merged_histogram_filters_by_tenant() {
        let mut r = Recorder::new(small_config(8));
        r.observe(at_secs(0), SeriesKey::new("lat").tenant("a"), 5.0);
        r.observe(at_secs(0), SeriesKey::new("lat").tenant("b"), 500.0);
        r.observe(at_secs(70), SeriesKey::new("lat").tenant("a"), 50.0);
        assert_eq!(r.merged_histogram("lat", None).unwrap().count(), 3);
        assert_eq!(r.merged_histogram("lat", Some("a")).unwrap().count(), 2);
        assert!(r.merged_histogram("lat", Some("zzz")).is_none());
        assert_eq!(
            r.tenants_of("lat").into_iter().collect::<Vec<_>>(),
            ["a", "b"]
        );
    }
}
