//! Deterministic renderings: the text dashboard and the
//! exemplar-annotated Chrome-trace export.
//!
//! Both outputs are byte-stable for a given recorder/report state —
//! fixed field order, fixed float precision, BTreeMap-backed iteration —
//! so they can be golden-tested and double-run `cmp`-gated exactly like
//! the plain span export.

use prebake_platform::metrics::fmt_le;
use prebake_sim::time::SimInstant;
use prebake_sim::trace::{chrome_trace_json, TraceSpan};

use crate::recorder::Recorder;
use crate::slo::{SloEventKind, SloReport};

/// Which columns the dashboard's per-window table shows.
#[derive(Debug, Clone, Default)]
pub struct DashboardSpec {
    /// Counter metrics, one column each (summed over label splits).
    pub counters: Vec<String>,
    /// Histogram metrics with a quantile, one column each
    /// (e.g. `("fleet_latency_ms", 0.99)`).
    pub quantiles: Vec<(String, f64)>,
}

/// Fixed-precision quantile label: `p99`, `p99.9`, `p50`.
fn quantile_label(q: f64) -> String {
    let pct = q * 100.0;
    if (pct - pct.round()).abs() < 1e-9 {
        format!("p{}", pct.round() as u64)
    } else {
        format!("p{pct}")
    }
}

/// A quantile value cell (`inf` for the overflow bucket, `-` when the
/// window has no observations of the metric).
fn quantile_cell(w: &crate::recorder::WindowView<'_>, metric: &str, q: f64) -> String {
    match w.merged_histogram(metric, None) {
        None => "-".to_owned(),
        Some(h) => {
            let v = h.quantile(q);
            if v.is_infinite() {
                "inf".to_owned()
            } else {
                format!("{v:.2}")
            }
        }
    }
}

/// Renders the deterministic text dashboard: ring summary, a per-window
/// table of the requested columns, per-objective status lines with
/// worst-offender attribution, and the ordered SLO event log.
pub fn dashboard(rec: &Recorder, report: &SloReport, spec: &DashboardSpec) -> String {
    let mut out = String::new();
    out.push_str("== prebake obs dashboard ==\n");
    out.push_str(&format!(
        "window {:.3}s x {} retained ({} rolled, {} late drops)\n",
        rec.config().width.as_secs_f64(),
        rec.windows().count(),
        rec.windows_rolled,
        rec.late_drops,
    ));

    out.push_str("\n-- windows --\n");
    let mut headers = vec!["idx".to_owned(), "t+s".to_owned()];
    headers.extend(spec.counters.iter().cloned());
    headers.extend(
        spec.quantiles
            .iter()
            .map(|(m, q)| format!("{m}:{}", quantile_label(*q))),
    );
    let widths: Vec<usize> = headers.iter().map(|h| h.len().max(6)).collect();
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!("{h:>w$}  ", w = *w));
    }
    out.push('\n');
    for win in rec.windows() {
        let mut cells = vec![
            format!("{}", win.index),
            format!(
                "{:.0}",
                win.start
                    .saturating_duration_since(SimInstant::EPOCH)
                    .as_secs_f64()
            ),
        ];
        cells.extend(
            spec.counters
                .iter()
                .map(|m| format!("{}", win.counter_metric(m))),
        );
        cells.extend(
            spec.quantiles
                .iter()
                .map(|(m, q)| quantile_cell(&win, m, *q)),
        );
        for (c, w) in cells.iter().zip(&widths) {
            out.push_str(&format!("{c:>w$}  ", w = *w));
        }
        out.push('\n');
    }

    out.push_str("\n-- objectives --\n");
    if report.statuses.is_empty() {
        out.push_str("(none configured)\n");
    }
    for s in &report.statuses {
        let verdict = if s.burn > 1.0 { "BREACH" } else { "OK" };
        out.push_str(&format!(
            "{}: good {:.2}% target-bad {}/{} burn {:.2}x  {verdict}\n",
            s.name,
            s.good_fraction() * 100.0,
            s.bad,
            s.total,
            s.burn,
        ));
        if let Some(w) = &s.worst {
            out.push_str(&format!(
                "  worst: tenant \"{}\" window {} (t+{:.0}s) burn {:.2}x ({}/{})\n",
                w.tenant,
                w.window_index,
                w.window_start
                    .saturating_duration_since(SimInstant::EPOCH)
                    .as_secs_f64(),
                w.burn,
                w.bad,
                w.total,
            ));
        }
    }

    out.push_str("\n-- events --\n");
    if report.events.is_empty() {
        out.push_str("(none)\n");
    }
    for e in &report.events {
        let at = e
            .window_start
            .saturating_duration_since(SimInstant::EPOCH)
            .as_secs_f64();
        match &e.kind {
            SloEventKind::WindowBreach { burn, bad, total } => {
                out.push_str(&format!(
                    "[t+{at:.0}s w{}] {} tenant=\"{}\" WINDOW_BREACH burn={burn:.2} ({bad}/{total})\n",
                    e.window_index, e.objective, e.tenant,
                ));
            }
            SloEventKind::BurnAlert {
                short_burn,
                long_burn,
            } => {
                out.push_str(&format!(
                    "[t+{at:.0}s w{}] {} tenant=\"{}\" BURN_ALERT short={short_burn:.2} long={long_burn:.2}\n",
                    e.window_index, e.objective, e.tenant,
                ));
            }
        }
    }
    out
}

/// `ts` in trace-event microseconds with fixed 3-decimal precision
/// (mirrors the span exporter's formatting).
fn ts_micros(t: SimInstant) -> String {
    let nanos = t.saturating_duration_since(SimInstant::EPOCH).as_nanos();
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialises spans as Chrome trace-event JSON and appends one instant
/// event per histogram exemplar — the bucket→trace links. Exemplars are
/// emitted in (window, series, bucket) order after the span events, each
/// carrying the bucket (`le`), observed value, window index, series
/// labels, and the retained trace id, so a Perfetto user can jump from a
/// latency bucket to the trace that produced it. Output is byte-stable.
pub fn chrome_trace_with_exemplars(spans: &[TraceSpan], rec: &Recorder) -> String {
    let base = chrome_trace_json(spans);
    let exemplars = rec.exemplars();
    if exemplars.is_empty() {
        return base;
    }
    let mut events: Vec<String> = Vec::with_capacity(exemplars.len());
    for (w, key, bucket, ex) in exemplars {
        let bounds = match w.histogram(key) {
            Some(wh) => wh.hist.bounds(),
            None => continue,
        };
        let le = if bucket < bounds.len() {
            fmt_le(bounds[bucket])
        } else {
            "+Inf".to_owned()
        };
        events.push(format!(
            "{{\"name\":\"exemplar:{}\",\"cat\":\"exemplar\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"le\":\"{}\",\"value_ms\":\"{:.4}\",\"window\":\"{}\",\"series\":\"{}\",\"trace\":\"{}\"}}}}",
            json_escape(&key.metric),
            ts_micros(ex.at),
            json_escape(&le),
            ex.value_ms,
            w.index,
            json_escape(&key.labels()),
            ex.trace_id,
        ));
    }
    if events.is_empty() {
        return base;
    }
    let tail = "]}";
    let head = base
        .strip_suffix(tail)
        .expect("chrome_trace_json ends with ]}");
    let sep = if head.ends_with('[') { "" } else { "," };
    format!("{head}{sep}{}{tail}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{RecorderConfig, SeriesKey};
    use crate::slo::{Objective, SloEngine};
    use prebake_sim::proc::Pid;
    use prebake_sim::time::SimDuration;
    use prebake_sim::trace::Tracer;

    fn at_secs(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    fn seeded_recorder() -> Recorder {
        let mut r = Recorder::new(RecorderConfig {
            width: SimDuration::from_secs(60),
            capacity: 16,
            bounds: vec![10.0, 100.0, 1000.0],
        });
        r.inc(at_secs(1), SeriesKey::new("req_total").tenant("a"), 10);
        r.inc(at_secs(61), SeriesKey::new("req_total").tenant("a"), 5);
        r.inc(at_secs(61), SeriesKey::new("bad_total").tenant("a"), 3);
        r.observe_exemplar(
            at_secs(1),
            SeriesKey::new("lat_ms").tenant("a"),
            42.0,
            Some(9),
        );
        r.observe(at_secs(61), SeriesKey::new("lat_ms").tenant("a"), 9000.0);
        r
    }

    #[test]
    fn dashboard_renders_and_is_stable() {
        let rec = seeded_recorder();
        let engine = SloEngine::new(vec![Objective::ratio(
            "bad-rate",
            "bad_total",
            "req_total",
            0.9,
        )]);
        let report = engine.evaluate(&rec);
        let spec = DashboardSpec {
            counters: vec!["req_total".to_owned()],
            quantiles: vec![("lat_ms".to_owned(), 0.99)],
        };
        let text = dashboard(&rec, &report, &spec);
        assert!(text.contains("== prebake obs dashboard =="));
        assert!(text.contains("window 60.000s x 2 retained"));
        assert!(text.contains("lat_ms:p99"));
        assert!(text.contains("WINDOW_BREACH"));
        assert!(text.contains("worst: tenant \"a\" window 1 (t+60s)"));
        assert_eq!(text, dashboard(&rec, &report, &spec), "byte-stable");
        // Window 1's p99 falls in the overflow bucket.
        assert!(text
            .lines()
            .any(|l| l.trim_start().starts_with('1') && l.contains("inf")));
    }

    #[test]
    fn quantile_label_formats() {
        assert_eq!(quantile_label(0.5), "p50");
        assert_eq!(quantile_label(0.99), "p99");
        assert_eq!(quantile_label(0.999), "p99.9");
    }

    #[test]
    fn exemplar_export_appends_linked_instants() {
        let rec = seeded_recorder();
        let mut tracer = Tracer::new();
        tracer.set_enabled(true);
        let root = tracer.begin("request", Pid(1), at_secs(1));
        tracer.attr(root, "id", "9");
        tracer.end(root, at_secs(2));
        let spans = tracer.take(at_secs(2));

        let text = chrome_trace_with_exemplars(&spans, &rec);
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\""));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"name\":\"exemplar:lat_ms\""));
        assert!(text.contains("\"le\":\"100\""));
        assert!(text.contains("\"trace\":\"9\""));
        assert!(text.contains("\"series\":\"tenant=\\\"a\\\"\""));
        // Exactly one exemplar event (the 9000ms observation had no trace).
        assert_eq!(text.matches("\"cat\":\"exemplar\"").count(), 1);
        // Still a single well-formed JSON object (balanced braces).
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn exemplar_export_with_no_spans_still_valid() {
        let rec = seeded_recorder();
        let text = chrome_trace_with_exemplars(&[], &rec);
        assert!(text.contains("\"traceEvents\":[{\"name\":\"exemplar:lat_ms\""));
        let no_exemplars = chrome_trace_with_exemplars(&[], &Recorder::default());
        assert_eq!(
            no_exemplars,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
