//! Declarative SLOs with error-budget burn-rate evaluation.
//!
//! An objective names an SLI (latency-under-threshold or a good/bad
//! event ratio), a target good fraction, and a pair of evaluation
//! horizons (short + long, in recorder windows). The engine replays the
//! recorder ring and computes, per window and per tenant, the
//! error-budget **burn rate** — `bad_fraction / (1 - target)` — the SRE
//! workbook quantity where 1.0 means "spending budget exactly as fast
//! as the SLO allows". Window breaches and multi-window burn alerts
//! come out as typed [`SloEvent`]s; per-tenant attribution falls out of
//! the label split the recorder already keeps.
//!
//! Latency SLIs count an observation as *good* when it lands in a
//! bucket whose upper bound is `<=` the threshold, so thresholds should
//! sit on a configured bucket bound (e.g. 250 ms with the fleet's
//! default bounds); a threshold between bounds is conservatively
//! rounded *down* to the previous bound.

use std::collections::BTreeMap;

use prebake_sim::time::SimInstant;

use crate::recorder::{Recorder, WindowView};

/// What fraction of events were good, and how it is measured.
#[derive(Debug, Clone, PartialEq)]
pub enum Sli {
    /// Good = histogram observations of `metric` at or under
    /// `threshold_ms` (bucket-bound semantics, see module docs).
    LatencyUnder {
        /// Histogram metric to read.
        metric: String,
        /// Goodness threshold in milliseconds.
        threshold_ms: f64,
    },
    /// Good = `total - bad` over two counter metrics (e.g. cold starts
    /// over requests).
    EventRatio {
        /// Counter metric counting bad events.
        bad: String,
        /// Counter metric counting all events.
        total: String,
    },
}

impl Sli {
    /// The metric whose label splits define the tenant set.
    fn attribution_metric(&self) -> &str {
        match self {
            Sli::LatencyUnder { metric, .. } => metric,
            Sli::EventRatio { total, .. } => total,
        }
    }

    /// (bad, total) for one tenant in one window.
    fn window_tenant(&self, w: &WindowView<'_>, tenant: &str) -> (u64, u64) {
        match self {
            Sli::LatencyUnder {
                metric,
                threshold_ms,
            } => match w.merged_histogram(metric, Some(tenant)) {
                None => (0, 0),
                Some(h) => {
                    let total = h.count();
                    let good: u64 = h
                        .bounds()
                        .iter()
                        .zip(h.bucket_counts())
                        .filter(|(b, _)| **b <= *threshold_ms)
                        .map(|(_, c)| *c)
                        .sum();
                    (total - good, total)
                }
            },
            Sli::EventRatio { bad, total } => (
                w.counter_metric_tenant(bad, tenant),
                w.counter_metric_tenant(total, tenant),
            ),
        }
    }
}

/// One declarative objective.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Objective name, used in events and the dashboard.
    pub name: String,
    /// How goodness is measured.
    pub sli: Sli,
    /// Required good fraction in `(0, 1)`, e.g. `0.9` for "90% of
    /// requests under threshold".
    pub target: f64,
    /// Short burn horizon in windows (the fast-burn confirmation).
    pub short_windows: usize,
    /// Long burn horizon in windows (the sustained-burn signal).
    pub long_windows: usize,
    /// Burn rate both horizons must exceed to fire a [`SloEventKind::BurnAlert`].
    pub fast_burn: f64,
}

impl Objective {
    /// Latency objective: `fraction of metric <= threshold_ms` must be
    /// at least `target`.
    pub fn latency(name: &str, metric: &str, threshold_ms: f64, target: f64) -> Objective {
        Objective {
            name: name.to_owned(),
            sli: Sli::LatencyUnder {
                metric: metric.to_owned(),
                threshold_ms,
            },
            target,
            short_windows: 1,
            long_windows: 6,
            fast_burn: 6.0,
        }
    }

    /// Ratio objective: `bad / total` must stay at or under `1 - target`.
    pub fn ratio(name: &str, bad: &str, total: &str, target: f64) -> Objective {
        Objective {
            name: name.to_owned(),
            sli: Sli::EventRatio {
                bad: bad.to_owned(),
                total: total.to_owned(),
            },
            target,
            short_windows: 1,
            long_windows: 6,
            fast_burn: 6.0,
        }
    }

    /// Builder-style burn-alert horizons.
    pub fn burn_windows(mut self, short: usize, long: usize, fast_burn: f64) -> Objective {
        assert!(short >= 1 && long >= short, "need 1 <= short <= long");
        self.short_windows = short;
        self.long_windows = long;
        self.fast_burn = fast_burn;
        self
    }

    /// The error budget: allowed bad fraction `1 - target`.
    pub fn budget(&self) -> f64 {
        1.0 - self.target
    }
}

/// Burn measured for one (window, tenant) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBurn {
    /// Window ordinal in the recorder ring.
    pub window_index: u64,
    /// Window start in virtual time.
    pub window_start: SimInstant,
    /// Attributed tenant ("" when the series carried no tenant label).
    pub tenant: String,
    /// Bad events in the cell.
    pub bad: u64,
    /// Total events in the cell.
    pub total: u64,
    /// `(bad/total) / budget`; 0 when the cell is empty.
    pub burn: f64,
}

/// What a [`SloEvent`] reports.
#[derive(Debug, Clone, PartialEq)]
pub enum SloEventKind {
    /// A single window burned faster than 1× budget.
    WindowBreach {
        /// The cell's burn rate.
        burn: f64,
        /// Bad events in the window.
        bad: u64,
        /// Total events in the window.
        total: u64,
    },
    /// Short- and long-horizon burn both exceeded `fast_burn`,
    /// evaluated at the end of this window.
    BurnAlert {
        /// Burn over the trailing short horizon.
        short_burn: f64,
        /// Burn over the trailing long horizon.
        long_burn: f64,
    },
}

/// A typed SLO event, attributed to an objective, tenant, and window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvent {
    /// Objective name.
    pub objective: String,
    /// Attributed tenant.
    pub tenant: String,
    /// Window ordinal the event anchors to.
    pub window_index: u64,
    /// That window's start instant.
    pub window_start: SimInstant,
    /// Breach or burn alert.
    pub kind: SloEventKind,
}

/// Whole-ring status of one objective.
#[derive(Debug, Clone)]
pub struct ObjectiveStatus {
    /// Objective name.
    pub name: String,
    /// Bad events across the ring (all tenants).
    pub bad: u64,
    /// Total events across the ring (all tenants).
    pub total: u64,
    /// Overall burn rate across the ring.
    pub burn: f64,
    /// The worst-burning (window, tenant) cell with any bad events —
    /// the engine's attribution of *who* burned the budget *when*.
    pub worst: Option<WindowBurn>,
}

impl ObjectiveStatus {
    /// Overall good fraction (1 when no events).
    pub fn good_fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            1.0 - self.bad as f64 / self.total as f64
        }
    }
}

/// Evaluation output: per-objective statuses plus the ordered event log.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// One status per configured objective, in configuration order.
    pub statuses: Vec<ObjectiveStatus>,
    /// Events ordered by (objective order, window, tenant, kind).
    pub events: Vec<SloEvent>,
}

impl SloReport {
    /// Status of a named objective.
    pub fn status(&self, objective: &str) -> Option<&ObjectiveStatus> {
        self.statuses.iter().find(|s| s.name == objective)
    }

    /// Worst-offender attribution for a named objective.
    pub fn worst_offender(&self, objective: &str) -> Option<&WindowBurn> {
        self.status(objective).and_then(|s| s.worst.as_ref())
    }

    /// Events of a named objective.
    pub fn events_of<'r>(&'r self, objective: &str) -> impl Iterator<Item = &'r SloEvent> {
        let objective = objective.to_owned();
        self.events.iter().filter(move |e| e.objective == objective)
    }
}

/// Evaluates a set of objectives against a recorder ring.
#[derive(Debug, Clone, Default)]
pub struct SloEngine {
    objectives: Vec<Objective>,
}

impl SloEngine {
    /// Creates an engine over the given objectives.
    pub fn new(objectives: Vec<Objective>) -> SloEngine {
        for o in &objectives {
            assert!(
                o.target > 0.0 && o.target < 1.0,
                "target must be in (0,1): {}",
                o.name
            );
        }
        SloEngine { objectives }
    }

    /// The configured objectives.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Replays the recorder ring and produces statuses + events.
    pub fn evaluate(&self, rec: &Recorder) -> SloReport {
        let mut report = SloReport::default();
        let windows: Vec<WindowView<'_>> = rec.windows().collect();
        for o in &self.objectives {
            let budget = o.budget();
            let tenants = rec.tenants_of(o.sli.attribution_metric());
            // cells[tenant] = per-window (bad, total) aligned with `windows`.
            let mut cells: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
            for t in &tenants {
                cells.insert(
                    t.as_str(),
                    windows.iter().map(|w| o.sli.window_tenant(w, t)).collect(),
                );
            }

            let mut status = ObjectiveStatus {
                name: o.name.clone(),
                bad: 0,
                total: 0,
                burn: 0.0,
                worst: None,
            };
            for (wi, w) in windows.iter().enumerate() {
                for (tenant, series) in &cells {
                    let (bad, total) = series[wi];
                    status.bad += bad;
                    status.total += total;
                    let burn = burn_rate(bad, total, budget);
                    if bad > 0 {
                        let cell = WindowBurn {
                            window_index: w.index,
                            window_start: w.start,
                            tenant: (*tenant).to_owned(),
                            bad,
                            total,
                            burn,
                        };
                        // Strictly-greater keeps the earliest window and
                        // first tenant (BTreeMap order) on ties.
                        if status.worst.as_ref().is_none_or(|p| burn > p.burn) {
                            status.worst = Some(cell.clone());
                        }
                        if burn > 1.0 {
                            report.events.push(SloEvent {
                                objective: o.name.clone(),
                                tenant: (*tenant).to_owned(),
                                window_index: w.index,
                                window_start: w.start,
                                kind: SloEventKind::WindowBreach { burn, bad, total },
                            });
                        }
                    }
                    // Multi-window burn alert evaluated at this window's
                    // close: both trailing horizons must exceed fast_burn.
                    let short = trailing_burn(series, wi, o.short_windows, budget);
                    let long = trailing_burn(series, wi, o.long_windows, budget);
                    if short >= o.fast_burn && long >= o.fast_burn {
                        report.events.push(SloEvent {
                            objective: o.name.clone(),
                            tenant: (*tenant).to_owned(),
                            window_index: w.index,
                            window_start: w.start,
                            kind: SloEventKind::BurnAlert {
                                short_burn: short,
                                long_burn: long,
                            },
                        });
                    }
                }
            }
            status.burn = burn_rate(status.bad, status.total, budget);
            report.statuses.push(status);
        }
        report
    }
}

/// `(bad/total) / budget`, 0 for empty cells.
fn burn_rate(bad: u64, total: u64, budget: f64) -> f64 {
    if total == 0 {
        0.0
    } else {
        (bad as f64 / total as f64) / budget
    }
}

/// Burn over the trailing `horizon` materialized windows ending at `end`
/// (inclusive), event-weighted: `(sum bad / sum total) / budget`.
fn trailing_burn(series: &[(u64, u64)], end: usize, horizon: usize, budget: f64) -> f64 {
    let from = (end + 1).saturating_sub(horizon);
    let (mut bad, mut total) = (0u64, 0u64);
    for &(b, t) in &series[from..=end] {
        bad += b;
        total += t;
    }
    burn_rate(bad, total, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{RecorderConfig, SeriesKey};
    use prebake_sim::time::SimDuration;

    fn at_secs(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    fn recorder() -> Recorder {
        Recorder::new(RecorderConfig {
            width: SimDuration::from_secs(60),
            capacity: 32,
            bounds: vec![10.0, 100.0, 250.0, 1000.0],
        })
    }

    #[test]
    fn ratio_objective_attributes_worst_tenant_and_window() {
        let mut r = recorder();
        // Window 0: tenant a clean, tenant b burns 2/10.
        for (t, bad, total) in [("a", 0u64, 10u64), ("b", 2, 10)] {
            r.inc(at_secs(1), SeriesKey::new("cold_total").tenant(t), bad);
            r.inc(at_secs(1), SeriesKey::new("req_total").tenant(t), total);
        }
        // Window 2: tenant b burns harder (5/10).
        r.inc(at_secs(121), SeriesKey::new("cold_total").tenant("b"), 5);
        r.inc(at_secs(121), SeriesKey::new("req_total").tenant("b"), 10);

        let engine = SloEngine::new(vec![Objective::ratio(
            "cold-fraction",
            "cold_total",
            "req_total",
            0.9,
        )]);
        let report = engine.evaluate(&r);
        let status = report.status("cold-fraction").unwrap();
        assert_eq!((status.bad, status.total), (7, 30));
        let worst = status.worst.as_ref().unwrap();
        assert_eq!(worst.tenant, "b");
        assert_eq!(worst.window_index, 2);
        assert!((worst.burn - 5.0).abs() < 1e-9, "0.5/0.1 = 5x budget");
        // Both of b's windows breached (burn > 1), a never did.
        let breaches: Vec<_> = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, SloEventKind::WindowBreach { .. }))
            .collect();
        assert_eq!(breaches.len(), 2);
        assert!(breaches.iter().all(|e| e.tenant == "b"));
    }

    #[test]
    fn latency_objective_counts_bucket_bound_goodness() {
        let mut r = recorder();
        let key = SeriesKey::new("lat_ms").tenant("a");
        for v in [5.0, 50.0, 200.0, 900.0] {
            r.observe(at_secs(1), key.clone(), v);
        }
        // threshold 250: values <= 250-bucket are good => 3 good, 1 bad.
        let engine = SloEngine::new(vec![Objective::latency("p-lat", "lat_ms", 250.0, 0.5)]);
        let status = engine.evaluate(&r);
        let s = status.status("p-lat").unwrap();
        assert_eq!((s.bad, s.total), (1, 4));
        assert!((s.burn - 0.5).abs() < 1e-9);
        assert!((s.good_fraction() - 0.75).abs() < 1e-9);
        // A threshold between bounds rounds down conservatively: 300 still
        // uses the 250 bucket, same result.
        let engine300 = SloEngine::new(vec![Objective::latency("p-lat", "lat_ms", 300.0, 0.5)]);
        assert_eq!(engine300.evaluate(&r).status("p-lat").unwrap().bad, 1);
    }

    #[test]
    fn burn_alert_needs_both_horizons() {
        let mut r = recorder();
        // 6 quiet windows then 2 windows of 100% bad for tenant a.
        for w in 0..6u64 {
            r.inc(at_secs(w * 60 + 1), SeriesKey::new("bad").tenant("a"), 0);
            r.inc(at_secs(w * 60 + 1), SeriesKey::new("all").tenant("a"), 10);
        }
        for w in 6..8u64 {
            r.inc(at_secs(w * 60 + 1), SeriesKey::new("bad").tenant("a"), 10);
            r.inc(at_secs(w * 60 + 1), SeriesKey::new("all").tenant("a"), 10);
        }
        // target 0.9 => budget 0.1 => a fully-bad window burns at 10x.
        // short=1 long=3 fast=2: at window 6 long covers w4..w6 =>
        // (10/30)/0.1 = 3.33 >= 2 => alert fires; with fast=4 it must not.
        let fires = SloEngine::new(vec![
            Objective::ratio("o", "bad", "all", 0.9).burn_windows(1, 3, 2.0)
        ]);
        let alerts: Vec<_> = fires
            .evaluate(&r)
            .events
            .into_iter()
            .filter(|e| matches!(e.kind, SloEventKind::BurnAlert { .. }))
            .collect();
        assert_eq!(alerts.len(), 2, "windows 6 and 7 alert");
        assert_eq!(alerts[0].window_index, 6);

        let quiet = SloEngine::new(vec![
            Objective::ratio("o", "bad", "all", 0.9).burn_windows(1, 3, 4.0)
        ]);
        let alerts: Vec<_> = quiet
            .evaluate(&r)
            .events
            .into_iter()
            .filter(|e| matches!(e.kind, SloEventKind::BurnAlert { .. }))
            .collect();
        assert_eq!(
            alerts.len(),
            1,
            "long horizon at window 7 covers w5..w7 = (20/30)/0.1 = 6.67 >= 4, \
             but window 6's long burn 3.33 < 4"
        );
        assert_eq!(alerts[0].window_index, 7);
    }

    #[test]
    fn empty_recorder_yields_clean_report() {
        let r = recorder();
        let engine = SloEngine::new(vec![Objective::ratio("o", "bad", "all", 0.99)]);
        let report = engine.evaluate(&r);
        let s = report.status("o").unwrap();
        assert_eq!(s.total, 0);
        assert_eq!(s.burn, 0.0);
        assert!(s.worst.is_none());
        assert!(report.events.is_empty());
        assert_eq!(s.good_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "target must be in (0,1)")]
    fn rejects_degenerate_target() {
        SloEngine::new(vec![Objective::ratio("o", "b", "t", 1.0)]);
    }
}
