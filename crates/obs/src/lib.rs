//! # prebake-obs — fleet-scale telemetry
//!
//! The paper's argument is a latency distribution; at fleet scale the
//! interesting questions are *when* the distribution's tail spiked,
//! *which tenant* burned the latency budget, and *which trace* shows
//! why. This crate answers all three deterministically over the
//! virtual clock:
//!
//! - [`recorder`] — a windowed time-series ring: fixed-width windows of
//!   per-(metric, tenant, node, gear) counters and streaming histograms
//!   (reusing `platform::metrics::Histogram`), with per-bucket exemplar
//!   links to retained traces.
//! - [`slo`] — declarative objectives ("cold-start p99 < 250ms over 60s
//!   windows", "cold fraction < 10%") evaluated as SRE-style error-budget
//!   burn rates with multi-window burn alerts and per-tenant worst-offender
//!   attribution, emitted as typed [`SloEvent`](slo::SloEvent)s.
//! - [`sampler`] — tail-based span sampling: keep every SLO-breaching or
//!   erroring trace in full, keep the boring rest with a small seeded
//!   hash probability. Pure function of (seed, trace id) — bit-reproducible.
//! - [`export`] — a deterministic text dashboard and an
//!   exemplar-annotated Chrome-trace export, both golden-testable.
//! - [`bridge`] — delta-folds the platform gateway's aggregate metrics
//!   into the ring (obs cannot be a platform dependency, so the feed
//!   runs host-side).
//! - [`stack`] — the [`ObsStack`] bundle a simulator embeds.
//!
//! Everything is `BTreeMap`-ordered and fixed-precision formatted, so a
//! given event sequence renders byte-identically on every run — the same
//! determinism discipline the rest of the workspace builds on.

pub mod bridge;
pub mod export;
pub mod recorder;
pub mod sampler;
pub mod slo;
pub mod stack;

pub use bridge::PlatformBridge;
pub use export::{chrome_trace_with_exemplars, dashboard, DashboardSpec};
pub use recorder::{
    Exemplar, KeyTable, Recorder, RecorderConfig, SeriesId, SeriesKey, Window, WindowHistogram,
    WindowView,
};
pub use sampler::{sample_trees, SampleStats, SamplerConfig, TailSampler};
pub use slo::{
    Objective, ObjectiveStatus, Sli, SloEngine, SloEvent, SloEventKind, SloReport, WindowBurn,
};
pub use stack::{ObsConfig, ObsStack};

/// Default latency bucket bounds (ms), matching the fleet scheduler's
/// `LATENCY_BOUNDS_MS` so windowed series merge with fleet aggregates.
pub const DEFAULT_LATENCY_BOUNDS_MS: [f64; 12] = [
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 10_000.0,
];
