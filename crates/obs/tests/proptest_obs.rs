//! Property tests for the windowed recorder's ring: rollover against a
//! reference model, conservation of accepted counts, and ordering
//! invariants under arbitrary (non-monotone) write sequences.

use std::collections::BTreeMap;

use proptest::prelude::*;

use prebake_obs::{Recorder, RecorderConfig, SeriesKey};
use prebake_sim::time::{SimDuration, SimInstant};

/// Reference model of the ring: a sparse map of materialized windows
/// plus the same eviction/late-drop rules, written independently of the
/// VecDeque implementation.
#[derive(Default)]
struct Model {
    windows: BTreeMap<u64, u64>,
    rolled: u64,
    late_drops: u64,
    capacity: usize,
}

impl Model {
    // The contains/insert split deliberately mirrors the ring's
    // insert-then-evict order (the inserted window may evict itself);
    // the entry API would obscure that.
    #[allow(clippy::map_entry)]
    fn inc(&mut self, idx: u64, n: u64) {
        if let Some((&front, _)) = self.windows.first_key_value() {
            if idx < front && self.rolled > 0 {
                self.late_drops += 1;
                return;
            }
        }
        if !self.windows.contains_key(&idx) {
            self.windows.insert(idx, 0);
            while self.windows.len() > self.capacity {
                self.windows.pop_first();
                self.rolled += 1;
            }
        }
        match self.windows.get_mut(&idx) {
            Some(c) => *c += n,
            None => self.late_drops += 1, // inserted window was itself evicted
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ring agrees with the reference model write for write:
    /// retained windows, per-window totals, rollover and late-drop
    /// counters.
    #[test]
    fn ring_rollover_matches_reference_model(
        capacity in 1usize..6,
        width_s in 1u64..8,
        writes in proptest::collection::vec((0u64..400, 1u64..10), 1..80),
    ) {
        let width = SimDuration::from_secs(width_s);
        let mut rec = Recorder::new(RecorderConfig {
            width,
            capacity,
            bounds: vec![10.0, 100.0],
        });
        let mut model = Model { capacity, ..Model::default() };
        for &(offset_s, n) in &writes {
            let at = SimInstant::EPOCH + SimDuration::from_secs(offset_s);
            model.inc(offset_s / width_s, n);
            rec.inc(at, SeriesKey::new("events_total").tenant("t"), n);
        }
        let got: BTreeMap<u64, u64> = rec
            .windows()
            .map(|w| (w.index, w.counter_metric("events_total")))
            .collect();
        prop_assert_eq!(&got, &model.windows);
        prop_assert_eq!(rec.windows_rolled, model.rolled);
        prop_assert_eq!(rec.late_drops, model.late_drops);
        // Conservation: retained + rolled-away + dropped accounts for
        // every write (rolled windows lose their counts, but the
        // retained total never exceeds the grand total).
        let retained: u64 = got.values().sum();
        let written: u64 = writes.iter().map(|&(_, n)| n).sum();
        prop_assert!(retained <= written);
        if model.rolled == 0 && model.late_drops == 0 {
            prop_assert_eq!(retained, written, "nothing rolled: all writes retained");
            prop_assert_eq!(rec.counter_total("events_total"), written);
        }
    }

    /// Ring ordering invariants hold under any write sequence: window
    /// indexes strictly ascend, at most `capacity` windows are retained,
    /// and each window's start matches its index.
    #[test]
    fn ring_windows_stay_sorted_and_bounded(
        capacity in 1usize..5,
        width_s in 1u64..5,
        offsets in proptest::collection::vec(0u64..300, 1..60),
    ) {
        let width = SimDuration::from_secs(width_s);
        let mut rec = Recorder::new(RecorderConfig {
            width,
            capacity,
            bounds: vec![50.0],
        });
        for &offset_s in &offsets {
            let at = SimInstant::EPOCH + SimDuration::from_secs(offset_s);
            rec.observe(at, SeriesKey::new("lat_ms"), offset_s as f64);
        }
        let indexes: Vec<u64> = rec.windows().map(|w| w.index).collect();
        prop_assert!(indexes.len() <= capacity);
        prop_assert!(indexes.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        for w in rec.windows() {
            prop_assert_eq!(
                w.start,
                SimInstant::EPOCH + SimDuration::from_secs(w.index * width_s)
            );
        }
        // Histogram observations respect the same ring: total count in
        // retained windows never exceeds the number of writes.
        let counted: u64 = rec
            .windows()
            .filter_map(|w| w.merged_histogram("lat_ms", None))
            .map(|h| h.count())
            .sum();
        prop_assert!(counted <= offsets.len() as u64);
    }
}
