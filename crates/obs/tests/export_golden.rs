//! Golden tests for the deterministic text dashboard and the
//! exemplar-annotated Chrome-trace export: a hand-seeded recorder must
//! render to exactly these bytes. The strings double as the format
//! contract the tier-1 double-run `cmp` gate relies on.

use prebake_obs::{
    chrome_trace_with_exemplars, dashboard, DashboardSpec, Objective, Recorder, RecorderConfig,
    SeriesKey, SloEngine,
};
use prebake_sim::proc::Pid;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_sim::trace::Tracer;

fn at_secs(s: u64) -> SimInstant {
    SimInstant::EPOCH + SimDuration::from_secs(s)
}

/// Two 60s windows: a healthy window 0, then a breaching window 1 where
/// tenant "b" turns 3 of 5 requests bad and latency spikes into the
/// overflow bucket. Exemplars link the healthy observation to trace 3
/// and the spike to trace 7.
fn seeded_recorder() -> Recorder {
    let mut rec = Recorder::new(RecorderConfig {
        width: SimDuration::from_secs(60),
        capacity: 8,
        bounds: vec![10.0, 100.0, 1000.0],
    });
    rec.inc(at_secs(5), SeriesKey::new("req_total").tenant("a"), 8);
    rec.observe_exemplar(
        at_secs(5),
        SeriesKey::new("lat_ms").tenant("a"),
        4.0,
        Some(3),
    );
    rec.inc(at_secs(65), SeriesKey::new("req_total").tenant("b"), 5);
    rec.inc(at_secs(65), SeriesKey::new("bad_total").tenant("b"), 3);
    rec.observe_exemplar(
        at_secs(65),
        SeriesKey::new("lat_ms").tenant("b"),
        2500.0,
        Some(7),
    );
    rec
}

fn engine() -> SloEngine {
    SloEngine::new(vec![Objective::ratio(
        "bad-rate",
        "bad_total",
        "req_total",
        0.9,
    )])
}

#[test]
fn dashboard_matches_golden() {
    let rec = seeded_recorder();
    let report = engine().evaluate(&rec);
    let spec = DashboardSpec {
        counters: vec!["req_total".to_owned()],
        quantiles: vec![("lat_ms".to_owned(), 0.99)],
    };
    let text = dashboard(&rec, &report, &spec);
    let golden = concat!(
        "== prebake obs dashboard ==\n",
        "window 60.000s x 2 retained (0 rolled, 0 late drops)\n",
        "\n",
        "-- windows --\n",
        "   idx     t+s  req_total  lat_ms:p99  \n",
        "     0       0          8       10.00  \n",
        "     1      60          5         inf  \n",
        "\n",
        "-- objectives --\n",
        "bad-rate: good 76.92% target-bad 3/13 burn 2.31x  BREACH\n",
        "  worst: tenant \"b\" window 1 (t+60s) burn 6.00x (3/5)\n",
        "\n",
        "-- events --\n",
        "[t+60s w1] bad-rate tenant=\"b\" WINDOW_BREACH burn=6.00 (3/5)\n",
        "[t+60s w1] bad-rate tenant=\"b\" BURN_ALERT short=6.00 long=6.00\n",
    );
    assert_eq!(text, golden);
}

#[test]
fn exemplar_trace_export_matches_golden() {
    let rec = seeded_recorder();
    // One retained span tree whose root is trace id 7 — the request the
    // exemplar links to.
    let mut tracer = Tracer::new();
    tracer.set_enabled(true);
    let root = tracer.begin("sched_invocation", Pid(1), at_secs(65));
    tracer.attr(root, "id", "7");
    tracer.end(root, at_secs(67));
    let spans = tracer.take(at_secs(67));

    let json = chrome_trace_with_exemplars(&spans, &rec);
    let golden = concat!(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
        "{\"name\":\"sched_invocation\",\"cat\":\"prebake\",\"ph\":\"X\",",
        "\"ts\":65000000.000,\"dur\":2000000.000,\"pid\":1,\"tid\":1,",
        "\"args\":{\"span\":1,\"parent\":0,\"id\":\"7\"}},",
        "{\"name\":\"exemplar:lat_ms\",\"cat\":\"exemplar\",\"ph\":\"i\",",
        "\"ts\":5000000.000,\"pid\":0,\"tid\":0,\"s\":\"g\",",
        "\"args\":{\"le\":\"10\",\"value_ms\":\"4.0000\",\"window\":\"0\",",
        "\"series\":\"tenant=\\\"a\\\"\",\"trace\":\"3\"}},",
        "{\"name\":\"exemplar:lat_ms\",\"cat\":\"exemplar\",\"ph\":\"i\",",
        "\"ts\":65000000.000,\"pid\":0,\"tid\":0,\"s\":\"g\",",
        "\"args\":{\"le\":\"+Inf\",\"value_ms\":\"2500.0000\",\"window\":\"1\",",
        "\"series\":\"tenant=\\\"b\\\"\",\"trace\":\"7\"}}",
        "]}"
    );
    assert_eq!(json, golden);
}

#[test]
fn renders_are_byte_stable_across_evaluations() {
    let rec = seeded_recorder();
    let spec = DashboardSpec {
        counters: vec!["req_total".to_owned(), "bad_total".to_owned()],
        quantiles: vec![("lat_ms".to_owned(), 0.5), ("lat_ms".to_owned(), 0.999)],
    };
    let once = dashboard(&rec, &engine().evaluate(&rec), &spec);
    let twice = dashboard(&rec, &engine().evaluate(&rec), &spec);
    assert_eq!(once, twice);
    assert_eq!(
        chrome_trace_with_exemplars(&[], &rec),
        chrome_trace_with_exemplars(&[], &rec)
    );
}
