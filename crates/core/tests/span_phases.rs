//! The span tree and the flat probe trace are two views of the same
//! start-up window, so the Fig. 4 phase decomposition derived from spans
//! must equal the `PhaseTracker` output *bit-for-bit* — same integer
//! nanoseconds in every phase, for every start mode. This is the
//! acceptance gate for the tracing subsystem: if a span drifts off its
//! probe instants by even one charge, these tests fail.

use prebake_core::{phases_from_span_tree, StartMode, TrialRunner};
use prebake_functions::{FunctionSpec, SyntheticSize};
use prebake_sim::trace::{probe_events, TraceSummary};

fn modes() -> [StartMode; 5] {
    [
        StartMode::Vanilla,
        StartMode::PrebakeWarmup(1),
        StartMode::PrebakeLazy(1),
        StartMode::PrebakePrefetch(1),
        StartMode::PrebakeCow(1),
    ]
}

#[test]
fn span_derived_phases_match_phase_tracker_exactly() {
    for mode in modes() {
        let runner = TrialRunner::new(FunctionSpec::noop(), mode).unwrap();
        let (trial, spans) = runner.traced_trial(7).unwrap();
        let from_spans = phases_from_span_tree(&spans)
            .unwrap_or_else(|| panic!("{}: no startup root span", mode.label()));
        assert_eq!(
            from_spans,
            trial.phases,
            "{}: span-derived phases diverge from the probe fold",
            mode.label()
        );
    }
}

#[test]
fn traced_trial_reports_the_same_timings_as_untraced() {
    // Span recording must not perturb the virtual timeline: the same
    // seed gives identical startup and first-response times with and
    // without the tracer.
    for mode in modes() {
        let runner = TrialRunner::new(FunctionSpec::noop(), mode).unwrap();
        let plain = runner.startup_trial(11).unwrap();
        let (traced, _) = runner.traced_trial(11).unwrap();
        assert_eq!(plain.startup_ms, traced.startup_ms, "{}", mode.label());
        assert_eq!(
            plain.first_response_ms,
            traced.first_response_ms,
            "{}",
            mode.label()
        );
        assert_eq!(plain.phases, traced.phases, "{}", mode.label());
    }
}

#[test]
fn startup_root_span_carries_the_measured_duration() {
    for mode in modes() {
        let runner = TrialRunner::new(FunctionSpec::synthetic(SyntheticSize::Small), mode).unwrap();
        let (trial, spans) = runner.traced_trial(3).unwrap();
        let root = spans
            .iter()
            .find(|s| s.name == "startup" && s.parent.is_none())
            .unwrap_or_else(|| panic!("{}: missing startup root", mode.label()));
        assert_eq!(
            root.duration().as_millis_f64(),
            trial.startup_ms,
            "{}: root span and trial disagree on startup time",
            mode.label()
        );

        // Both trees land in the artifact: the summary's wall is the
        // startup plus the first request, and annotations reconstruct a
        // time-ordered probe stream.
        let summary = TraceSummary::from_spans(&spans);
        assert!(spans.iter().any(|s| s.name == "first_request"));
        assert!(summary.wall >= root.duration());
        let flat = probe_events(&spans);
        assert!(!flat.is_empty());
        assert!(flat.windows(2).all(|w| w[0].time <= w[1].time));
    }
}

#[test]
fn restore_modes_produce_their_signature_spans() {
    let expect = [
        (StartMode::PrebakeWarmup(1), "restore_eager_copy"),
        (StartMode::PrebakeLazy(1), "restore_lazy_register"),
        (StartMode::PrebakePrefetch(1), "restore_lazy_register"),
        (StartMode::PrebakeCow(1), "restore_cow_map"),
    ];
    for (mode, wanted) in expect {
        let runner = TrialRunner::new(FunctionSpec::noop(), mode).unwrap();
        let (_, spans) = runner.traced_trial(5).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(
            names.contains(&wanted),
            "{}: expected a {wanted:?} span, got {names:?}",
            mode.label()
        );
        for stage in ["criu_restore", "image_parse", "restore_vmas", "restore_fds"] {
            assert!(
                names.contains(&stage),
                "{}: missing {stage:?} in {names:?}",
                mode.label()
            );
        }
    }
}
