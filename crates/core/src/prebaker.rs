//! The prebaker: build-time snapshot generation.
//!
//! Per the paper's §3.1, the Function Builder — not the request path —
//! triggers snapshot creation when a new function version is deployed:
//! boot a replica, optionally warm it with requests (forcing class
//! loading and JIT compilation), then `criu dump` it into the function's
//! container image. The same snapshot then seeds every future replica.

use prebake_criu::{dump, DumpOptions, DumpStats};
use prebake_runtime::Replica;
use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;
use prebake_sim::proc::{CapSet, Pid};
use prebake_sim::time::SimDuration;

use crate::env::{Deployment, RUNTIME_BIN};

/// When, in the function's lifecycle, the snapshot is taken — the paper's
/// central design knob (§4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnapshotPolicy {
    /// Right after the function becomes ready to serve
    /// (PB-NoWarmup): the runtime is booted but classes are unloaded and
    /// nothing is JIT-compiled.
    AfterReady,
    /// After serving `n` warm-up requests (PB-Warmup): class loading and
    /// JIT state ride along in the snapshot. The paper uses `n = 1`.
    AfterWarmup(u32),
}

impl SnapshotPolicy {
    /// Label used in reports.
    pub fn label(&self) -> String {
        match self {
            SnapshotPolicy::AfterReady => "pb-nowarmup".to_owned(),
            SnapshotPolicy::AfterWarmup(n) => {
                if *n == 1 {
                    "pb-warmup".to_owned()
                } else {
                    format!("pb-warmup-{n}")
                }
            }
        }
    }
}

/// Outcome of a bake.
#[derive(Debug, Clone)]
pub struct BakeReport {
    /// Where the images were written.
    pub images_dir: String,
    /// The policy used.
    pub policy: SnapshotPolicy,
    /// Dump statistics (page counts, image bytes).
    pub dump: DumpStats,
    /// Virtual time the whole bake took (boot + warm-up + dump). Build
    /// time, not start-up time — reported for completeness.
    pub bake_time: SimDuration,
}

impl BakeReport {
    /// Total snapshot size in bytes.
    pub fn snapshot_bytes(&self) -> u64 {
        self.dump.image_bytes
    }
}

/// Bakes a snapshot of `dep` under `policy` into `images_dir`.
///
/// Boots a throwaway replica exactly like a vanilla start, optionally
/// serves warm-up requests to it, dumps it (killing it — its job is
/// done), and leaves the images on the builder's filesystem.
///
/// # Errors
///
/// Propagates kernel/runtime/CRIU errors.
pub fn bake(
    kernel: &mut Kernel,
    builder: Pid,
    dep: &Deployment,
    policy: SnapshotPolicy,
    images_dir: &str,
) -> SysResult<BakeReport> {
    let t0 = kernel.now();

    // Boot the function exactly as production would.
    let pid = kernel.sys_clone(builder)?;
    kernel.process_mut(pid)?.caps = CapSet::empty();
    let config = dep.jlvm_config();
    kernel.sys_execve(
        pid,
        RUNTIME_BIN,
        &[
            RUNTIME_BIN.to_owned(),
            config.archive_path.clone(),
            dep.port.to_string(),
        ],
    )?;
    let handler = dep.spec.make_handler(&dep.app_dir);
    let mut replica = Replica::boot(kernel, pid, config, handler)?;

    // Warm-up: "sending one request to the serverless function, which
    // triggers the code compilation".
    if let SnapshotPolicy::AfterWarmup(n) = policy {
        let req = dep.spec.sample_request();
        for _ in 0..n {
            replica.handle(kernel, &req)?;
        }
    }

    // Dump; the baked process is killed (its port frees for replicas).
    let dump_stats = dump(kernel, builder, &DumpOptions::new(pid, images_dir))?;

    Ok(BakeReport {
        images_dir: images_dir.to_owned(),
        policy,
        dump: dump_stats,
        bake_time: kernel.now() - t0,
    })
}

/// Bake-time working-set recording (the `prebake-lazy` record pass):
/// restores the just-baked snapshot in record mode, drives one sample
/// invocation through a re-attached replica — exactly what a production
/// first request does — and persists the ordered fault log as `ws.img`
/// beside the other images. The record replica is retired afterwards so
/// its port frees for real replicas.
///
/// # Errors
///
/// Propagates restore/runtime/filesystem errors.
pub fn record_working_set(
    kernel: &mut Kernel,
    builder: Pid,
    dep: &Deployment,
    images_dir: &str,
) -> SysResult<prebake_lazy::RecordOutcome> {
    let handler = dep.spec.make_handler(&dep.app_dir);
    let config = dep.jlvm_config();
    let req = dep.spec.sample_request();
    let outcome =
        prebake_lazy::record_working_set(kernel, builder, images_dir, move |kernel, pid| {
            let mut replica = Replica::attach(kernel, pid, config, handler)?;
            replica.handle(kernel, &req)?;
            Ok(())
        })?;
    kernel.sys_exit(outcome.pid, 0)?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{provision_machine, Deployment};
    use prebake_functions::{FunctionSpec, SyntheticSize};

    fn deployed(spec: FunctionSpec, seed: u64) -> (Kernel, Pid, Deployment) {
        let mut kernel = Kernel::new(seed);
        let watchdog = provision_machine(&mut kernel).unwrap();
        let dep = Deployment::install(&mut kernel, spec, 8080).unwrap();
        (kernel, watchdog, dep)
    }

    #[test]
    fn policy_labels() {
        assert_eq!(SnapshotPolicy::AfterReady.label(), "pb-nowarmup");
        assert_eq!(SnapshotPolicy::AfterWarmup(1).label(), "pb-warmup");
        assert_eq!(SnapshotPolicy::AfterWarmup(4).label(), "pb-warmup-4");
    }

    #[test]
    fn noop_snapshot_is_about_13mb() {
        let (mut kernel, watchdog, dep) = deployed(FunctionSpec::noop(), 1);
        let report = bake(
            &mut kernel,
            watchdog,
            &dep,
            SnapshotPolicy::AfterReady,
            "/snap",
        )
        .unwrap();
        let mb = report.snapshot_bytes() as f64 / 1e6;
        // Paper §4.2.1: NOOP snapshot ≈ 13 MB.
        assert!((11.0..16.0).contains(&mb), "NOOP snapshot {mb} MB");
        assert!(kernel.fs_exists("/snap/pages.img"));
        // builder's throwaway replica is gone and the port is free
        assert_eq!(kernel.port_owner(8080), None);
    }

    #[test]
    fn warmup_snapshot_is_larger_than_nowarmup() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let (mut k1, w1, d1) = deployed(spec.clone(), 2);
        let cold = bake(&mut k1, w1, &d1, SnapshotPolicy::AfterReady, "/snap").unwrap();

        let (mut k2, w2, d2) = deployed(spec, 3);
        let warm = bake(&mut k2, w2, &d2, SnapshotPolicy::AfterWarmup(1), "/snap").unwrap();

        assert!(
            warm.snapshot_bytes() > cold.snapshot_bytes() + 2_000_000,
            "warm {} vs cold {}: classes+JIT must ride along",
            warm.snapshot_bytes(),
            cold.snapshot_bytes()
        );
    }

    #[test]
    fn record_pass_writes_ws_beside_the_images() {
        let (mut kernel, watchdog, dep) = deployed(FunctionSpec::noop(), 11);
        bake(
            &mut kernel,
            watchdog,
            &dep,
            SnapshotPolicy::AfterWarmup(1),
            "/snap",
        )
        .unwrap();
        let outcome = record_working_set(&mut kernel, watchdog, &dep, "/snap").unwrap();
        assert!(!outcome.ws.is_empty(), "attach+invoke touches pages");
        assert_eq!(outcome.major_faults, outcome.ws.len() as u64);
        assert!(kernel.fs_exists("/snap/ws.img"));
        // The record replica is retired: its port is free again.
        assert_eq!(kernel.port_owner(8080), None);
    }

    #[test]
    fn bake_is_repeatable_after_failure_free_run() {
        let (mut kernel, watchdog, dep) = deployed(FunctionSpec::noop(), 4);
        bake(
            &mut kernel,
            watchdog,
            &dep,
            SnapshotPolicy::AfterReady,
            "/s1",
        )
        .unwrap();
        // A second bake (new function version) works on the same machine.
        bake(
            &mut kernel,
            watchdog,
            &dep,
            SnapshotPolicy::AfterWarmup(1),
            "/s2",
        )
        .unwrap();
        assert!(kernel.fs_exists("/s1/pages.img"));
        assert!(kernel.fs_exists("/s2/pages.img"));
    }
}
