//! # prebake-core
//!
//! The paper's contribution: **prebaking** — starting serverless function
//! replicas by restoring CRIU snapshots of previously started processes
//! instead of the fork-exec + bootstrap path.
//!
//! - [`prebaker`] — build-time snapshot generation with the paper's two
//!   policies: [`SnapshotPolicy::AfterReady`] (PB-NoWarmup) and
//!   [`SnapshotPolicy::AfterWarmup`] (PB-Warmup, which captures class
//!   loading and JIT state)
//! - [`starter`] — [`VanillaStarter`] (fork-exec) vs [`PrebakeStarter`]
//!   (restore) behind one trait
//! - [`phases`] — the Figure-4 CLONE/EXEC/RTS/APPINIT decomposition from
//!   kernel probe traces
//! - [`measure`] — the repeated-trial harness behind every figure and
//!   table (fresh machine per repetition, snapshot baked once)
//! - [`mod@env`] — machine provisioning and container-image modelling
//!
//! ## Example: the paper's headline comparison
//!
//! ```
//! use prebake_core::measure::{StartMode, TrialRunner};
//! use prebake_functions::FunctionSpec;
//!
//! let vanilla = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
//! let prebake = TrialRunner::new(FunctionSpec::noop(), StartMode::PrebakeNoWarmup).unwrap();
//!
//! let v = vanilla.startup_trial(1).unwrap().startup_ms;
//! let p = prebake.startup_trial(1).unwrap().startup_ms;
//! assert!(p < v, "prebaking must beat the vanilla cold start");
//! ```

#![warn(missing_docs)]

pub mod env;
pub mod measure;
pub mod phases;
pub mod prebaker;
pub mod starter;

pub use env::{provision_machine, Deployment};
pub use measure::{StartMode, StartupTrial, TrialRunner};
pub use phases::{phases_from_span_tree, PhaseTracker, Phases};
pub use prebaker::{bake, BakeReport, SnapshotPolicy};
pub use starter::{PrebakeStarter, Started, Starter, VanillaStarter};
