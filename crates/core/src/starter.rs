//! Start-up mechanisms: the paper's *Vanilla* fork-exec path and the
//! *Prebaking* restore path, behind one [`Starter`] abstraction.

use prebake_criu::{restore, RestoreMode, RestoreOptions, RestoreStats};
use prebake_functions::FunctionSpec;
use prebake_runtime::Replica;
use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;
use prebake_sim::probe::ProbeEvent;
use prebake_sim::proc::{CapSet, Pid};
use prebake_sim::time::SimDuration;
use prebake_sim::trace::TraceSpan;

use crate::env::{Deployment, RUNTIME_BIN};
use crate::phases::{PhaseTracker, Phases};

/// A started replica plus its start-up measurements.
#[derive(Debug)]
pub struct Started {
    /// The ready-to-serve replica.
    pub replica: Replica,
    /// Time from the start command to readiness.
    pub startup: SimDuration,
    /// The Figure-4 phase decomposition.
    pub phases: Phases,
    /// The raw probe trace of the start-up window (syscalls, markers,
    /// page faults) — fold it with
    /// [`ProbeCounters::from_events`](prebake_sim::probe::ProbeCounters).
    pub trace: Vec<ProbeEvent>,
    /// The span tree of the start-up window, rooted at a `"startup"`
    /// span, when the kernel had span tracing enabled. Empty when span
    /// tracing was off, and also when an enclosing tracing session (a
    /// platform cold-start span or a traced trial) owns the tree — the
    /// starter then leaves its spans in the kernel for the session to
    /// drain as one tree.
    pub spans: Vec<TraceSpan>,
    /// Restore statistics when the start-up was a snapshot restore
    /// (`None` for the vanilla fork-exec path).
    pub restore: Option<RestoreStats>,
}

/// A mechanism for starting function replicas.
pub trait Starter {
    /// Short label for reports (`"vanilla"`, `"prebake"`).
    fn label(&self) -> &'static str;

    /// Starts one replica of `dep` on `kernel`, driven by `supervisor`
    /// (the watchdog process).
    ///
    /// # Errors
    ///
    /// Propagates kernel/runtime errors.
    fn start(&self, kernel: &mut Kernel, supervisor: Pid, dep: &Deployment) -> SysResult<Started>;
}

impl std::fmt::Debug for dyn Starter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Starter({})", self.label())
    }
}

/// The state-of-the-practice start-up: `clone` + `execve` of the runtime
/// launcher, runtime bootstrap, application initialisation.
#[derive(Debug, Clone, Copy, Default)]
pub struct VanillaStarter;

impl Starter for VanillaStarter {
    fn label(&self) -> &'static str {
        "vanilla"
    }

    fn start(&self, kernel: &mut Kernel, supervisor: Pid, dep: &Deployment) -> SysResult<Started> {
        // Probe tracing is always on for the start window (the paper's
        // bpftrace session); span recording stays at whatever the caller
        // configured. An enclosing session (platform cold-start span,
        // traced trial) owns the tree, so only a standalone start drains
        // the tracer into `Started::spans`.
        kernel.set_tracing(true);
        let outer = kernel.open_spans() > 0;
        let t0 = kernel.now();
        let root = kernel.span_begin("startup", supervisor);
        kernel.span_attr(root, "starter", self.label());

        let pid = kernel.sys_clone(supervisor)?;
        // Replicas run unprivileged.
        kernel.process_mut(pid)?.caps = CapSet::empty();
        let config = dep.jlvm_config();
        kernel.sys_execve(
            pid,
            RUNTIME_BIN,
            &[
                RUNTIME_BIN.to_owned(),
                config.archive_path.clone(),
                dep.port.to_string(),
            ],
        )?;
        let handler = dep.spec.make_handler(&dep.app_dir);
        let replica = Replica::boot(kernel, pid, config, handler)?;

        let ready = kernel.now();
        kernel.span_end(root);
        let trace = kernel.take_trace();
        kernel.set_tracing(false);
        let spans = if outer {
            Vec::new()
        } else {
            kernel.take_spans()
        };
        Ok(Started {
            replica,
            startup: ready - t0,
            phases: PhaseTracker::new(t0, ready).phases(&trace),
            trace,
            spans,
            restore: None,
        })
    }
}

/// The paper's prebaking start-up: `criu restore` of a snapshot baked at
/// build time, then handler re-attachment. No exec, no RTS, no class
/// loading, no JIT beyond what the snapshot lacks.
///
/// The restore [`mode`](PrebakeStarter::mode) selects the eager page
/// reinstatement the paper measured or the lazy/prefetch refinements
/// (`prebake-lazy`); prefetch requires a `ws.img` recorded at bake time.
#[derive(Debug, Clone)]
pub struct PrebakeStarter {
    /// Override for the images directory; defaults to
    /// [`Deployment::images_dir`].
    pub images_dir: Option<String>,
    /// How restore reinstates memory.
    pub mode: RestoreMode,
    /// Reinstate memory run-at-a-time from the snapshot's extent table
    /// (on by default); off selects the page-granular baseline.
    pub vectored: bool,
    /// Fault-around window for the uffd-backed modes (1 = none).
    pub fault_around: usize,
    /// Restorer worker threads for the sharded parallel install
    /// (1 = serial).
    pub threads: usize,
}

impl Default for PrebakeStarter {
    fn default() -> PrebakeStarter {
        PrebakeStarter {
            images_dir: None,
            mode: RestoreMode::default(),
            vectored: true,
            fault_around: 1,
            threads: 1,
        }
    }
}

impl PrebakeStarter {
    /// Starts from the deployment's default snapshot directory, eagerly.
    pub fn new() -> PrebakeStarter {
        PrebakeStarter::default()
    }

    /// Same, restoring with the given memory mode.
    pub fn with_mode(mode: RestoreMode) -> PrebakeStarter {
        PrebakeStarter {
            mode,
            ..PrebakeStarter::default()
        }
    }

    /// Selects the page-granular restore paths (no extent vectoring).
    #[must_use]
    pub fn page_granular(mut self) -> PrebakeStarter {
        self.vectored = false;
        self
    }

    /// Sets the fault-around window for uffd-backed restore modes.
    #[must_use]
    pub fn fault_around(mut self, window: usize) -> PrebakeStarter {
        self.fault_around = window;
        self
    }

    /// Sets the restorer worker-thread count for the sharded parallel
    /// install (values below 2 keep the serial path).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> PrebakeStarter {
        self.threads = threads;
        self
    }
}

impl Starter for PrebakeStarter {
    fn label(&self) -> &'static str {
        match self.mode {
            RestoreMode::Eager => "prebake",
            RestoreMode::Lazy => "prebake-lazy",
            RestoreMode::Record => "prebake-record",
            RestoreMode::Prefetch => "prebake-prefetch",
            RestoreMode::Cow => "prebake-cow",
            RestoreMode::CowPrefetch => "prebake-cow-prefetch",
        }
    }

    fn start(&self, kernel: &mut Kernel, supervisor: Pid, dep: &Deployment) -> SysResult<Started> {
        kernel.set_tracing(true);
        let outer = kernel.open_spans() > 0;
        let t0 = kernel.now();
        let root = kernel.span_begin("startup", supervisor);
        kernel.span_attr(root, "starter", self.label());

        let dir = self.images_dir.clone().unwrap_or_else(|| dep.images_dir());
        let mut opts = RestoreOptions::with_mode(&dir, self.mode);
        opts.vectored = self.vectored;
        opts.fault_around = self.fault_around;
        opts.threads = self.threads;
        let stats = restore(kernel, supervisor, &opts)?;
        let handler = dep.spec.make_handler(&dep.app_dir);
        let replica = Replica::attach(kernel, stats.pid, dep.jlvm_config(), handler)?;
        kernel.emit_marker(stats.pid, "ready");

        let ready = kernel.now();
        kernel.span_end(root);
        let trace = kernel.take_trace();
        kernel.set_tracing(false);
        let spans = if outer {
            Vec::new()
        } else {
            kernel.take_spans()
        };
        Ok(Started {
            replica,
            startup: ready - t0,
            phases: PhaseTracker::new(t0, ready).phases(&trace),
            trace,
            spans,
            restore: Some(stats),
        })
    }
}

/// Convenience: start a replica of `spec` the vanilla way on a fresh
/// throwaway machine (quickstart/demo path, not a measured experiment).
///
/// # Errors
///
/// Propagates kernel/runtime errors.
pub fn quick_start(spec: FunctionSpec, seed: u64) -> SysResult<(Kernel, Started)> {
    let mut kernel = Kernel::new(seed);
    let watchdog = crate::env::provision_machine(&mut kernel)?;
    let dep = Deployment::install(&mut kernel, spec, 8080)?;
    let started = VanillaStarter.start(&mut kernel, watchdog, &dep)?;
    Ok((kernel, started))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::provision_machine;
    use crate::prebaker::{bake, SnapshotPolicy};
    use prebake_runtime::Request;

    fn deployed(seed: u64) -> (Kernel, Pid, Deployment) {
        let mut kernel = Kernel::new(seed);
        let watchdog = provision_machine(&mut kernel).unwrap();
        let dep = Deployment::install(&mut kernel, FunctionSpec::noop(), 8080).unwrap();
        (kernel, watchdog, dep)
    }

    #[test]
    fn vanilla_start_produces_serving_replica() {
        let (mut kernel, watchdog, dep) = deployed(1);
        let mut started = VanillaStarter.start(&mut kernel, watchdog, &dep).unwrap();
        assert!(started.replica.is_ready());
        let resp = started
            .replica
            .handle(&mut kernel, &Request::empty())
            .unwrap();
        assert!(resp.is_success());
        // Paper Fig. 3: NOOP vanilla ≈ 103 ms.
        let ms = started.startup.as_millis_f64();
        assert!((90.0..120.0).contains(&ms), "vanilla NOOP startup {ms}ms");
        // Fig. 4: RTS ≈ 70 ms, clone+exec tiny.
        assert!((60.0..80.0).contains(&started.phases.rts.as_millis_f64()));
        assert!(started.phases.clone.as_millis_f64() < 2.0);
        assert!(started.phases.exec.as_millis_f64() < 3.0);
    }

    #[test]
    fn prebake_start_skips_rts() {
        let (mut kernel, watchdog, dep) = deployed(2);
        bake(
            &mut kernel,
            watchdog,
            &dep,
            SnapshotPolicy::AfterReady,
            &dep.images_dir(),
        )
        .unwrap();
        let mut started = PrebakeStarter::new()
            .start(&mut kernel, watchdog, &dep)
            .unwrap();
        assert!(started.replica.is_ready());
        assert_eq!(started.phases.rts, SimDuration::ZERO);
        assert_eq!(started.phases.exec, SimDuration::ZERO);
        let resp = started
            .replica
            .handle(&mut kernel, &Request::empty())
            .unwrap();
        assert!(resp.is_success());
    }

    #[test]
    fn prebake_beats_vanilla_on_noop() {
        // Two fresh machines with the same seed-class noise.
        let (mut k1, w1, d1) = deployed(3);
        let vanilla = VanillaStarter.start(&mut k1, w1, &d1).unwrap();

        let (mut k2, w2, d2) = deployed(4);
        bake(
            &mut k2,
            w2,
            &d2,
            SnapshotPolicy::AfterReady,
            &d2.images_dir(),
        )
        .unwrap();
        crate::env::fresh_container(&mut k2, &d2.image_paths()).unwrap();
        let prebake = PrebakeStarter::new().start(&mut k2, w2, &d2).unwrap();

        let v = vanilla.startup.as_millis_f64();
        let p = prebake.startup.as_millis_f64();
        assert!(p < v, "prebake {p}ms !< vanilla {v}ms");
        // Paper Fig. 3: ≈40% improvement for NOOP.
        let improvement = (v - p) / v;
        assert!(
            (0.25..0.55).contains(&improvement),
            "improvement {improvement} (v={v}, p={p})"
        );
    }

    #[test]
    fn quick_start_helper() {
        let (mut kernel, mut started) = quick_start(FunctionSpec::noop(), 9).unwrap();
        let resp = started
            .replica
            .handle(&mut kernel, &Request::empty())
            .unwrap();
        assert!(resp.is_success());
    }
}
