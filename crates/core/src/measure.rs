//! The experiment harness: repeated cold-start trials on fresh machines.
//!
//! One [`TrialRunner`] fixes a function and a start mode; each call to
//! [`TrialRunner::startup_trial`] provisions a *fresh machine* (fresh
//! page cache, fresh pids — the paper restarts the runtime and load
//! generator before every run), deploys the function, and measures one
//! cold start. Prebake modes bake the snapshot **once** on a builder
//! machine (that is the whole point of build-time snapshotting) and ship
//! the images into every trial machine's container image.

use bytes::Bytes;

use prebake_criu::{repack, ImageSet, RepackOptions, RepackStats, RestoreMode};
use prebake_functions::FunctionSpec;
use prebake_sim::error::{Errno, SysResult};
use prebake_sim::kernel::Kernel;
use prebake_sim::probe::ProbeCounters;
use prebake_sim::proc::Pid;
use prebake_sim::time::SimDuration;
use prebake_sim::trace::TraceSpan;

use crate::env::{export_images, fresh_container, import_images, provision_machine, Deployment};
use crate::phases::Phases;
use crate::prebaker::{bake, record_working_set, SnapshotPolicy};
use crate::starter::{PrebakeStarter, Started, Starter, VanillaStarter};

/// How a trial's replica is started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StartMode {
    /// fork-exec + full boot.
    Vanilla,
    /// Restore a snapshot taken after readiness (PB-NoWarmup).
    PrebakeNoWarmup,
    /// Restore a snapshot taken after `n` warm-up requests (PB-Warmup;
    /// the paper uses 1).
    PrebakeWarmup(u32),
    /// Restore the `n`-warm-up snapshot lazily: the address space maps
    /// empty and every page demand-faults on first touch
    /// (`prebake-lazy`, no prefetch). `n = 0` bakes after readiness.
    PrebakeLazy(u32),
    /// Restore the `n`-warm-up snapshot with working-set prefetch: bake
    /// records the first invocation's fault order as `ws.img`, restores
    /// bulk-load exactly those pages and demand-fault the rest
    /// (`prebake-lazy`, REAP-style). `n = 0` bakes after readiness.
    PrebakePrefetch(u32),
    /// Restore the `n`-warm-up snapshot copy-on-write from the machine's
    /// content-addressed page store: every stored page is mapped as a
    /// shared frame, replicas pay the copy only on first write
    /// (`pagestore.img`). `n = 0` bakes after readiness.
    PrebakeCow(u32),
    /// As [`StartMode::PrebakeCow`] for the recorded working set, with
    /// residual pages left behind the fault handler as in
    /// [`StartMode::PrebakePrefetch`]. `n = 0` bakes after readiness.
    PrebakeCowPrefetch(u32),
}

impl StartMode {
    /// The snapshot policy this mode bakes with, if any.
    pub fn policy(&self) -> Option<SnapshotPolicy> {
        match self {
            StartMode::Vanilla => None,
            StartMode::PrebakeNoWarmup => Some(SnapshotPolicy::AfterReady),
            StartMode::PrebakeWarmup(n) => Some(SnapshotPolicy::AfterWarmup(*n)),
            StartMode::PrebakeLazy(n)
            | StartMode::PrebakePrefetch(n)
            | StartMode::PrebakeCow(n)
            | StartMode::PrebakeCowPrefetch(n) => Some(if *n == 0 {
                SnapshotPolicy::AfterReady
            } else {
                SnapshotPolicy::AfterWarmup(*n)
            }),
        }
    }

    /// How the restore reinstates memory, if this mode restores at all.
    pub fn restore_mode(&self) -> Option<RestoreMode> {
        match self {
            StartMode::Vanilla => None,
            StartMode::PrebakeNoWarmup | StartMode::PrebakeWarmup(_) => Some(RestoreMode::Eager),
            StartMode::PrebakeLazy(_) => Some(RestoreMode::Lazy),
            StartMode::PrebakePrefetch(_) => Some(RestoreMode::Prefetch),
            StartMode::PrebakeCow(_) => Some(RestoreMode::Cow),
            StartMode::PrebakeCowPrefetch(_) => Some(RestoreMode::CowPrefetch),
        }
    }

    /// Whether baking must also run the working-set record pass.
    pub fn needs_working_set(&self) -> bool {
        self.restore_mode().is_some_and(RestoreMode::needs_ws)
    }

    /// Label used in reports (matches the paper's terminology).
    pub fn label(&self) -> String {
        match self {
            StartMode::Vanilla => "vanilla".to_owned(),
            StartMode::PrebakeNoWarmup => "pb-nowarmup".to_owned(),
            StartMode::PrebakeWarmup(1) => "pb-warmup".to_owned(),
            StartMode::PrebakeWarmup(n) => format!("pb-warmup-{n}"),
            StartMode::PrebakeLazy(1) => "pb-lazy".to_owned(),
            StartMode::PrebakeLazy(n) => format!("pb-lazy-{n}"),
            StartMode::PrebakePrefetch(1) => "pb-prefetch".to_owned(),
            StartMode::PrebakePrefetch(n) => format!("pb-prefetch-{n}"),
            StartMode::PrebakeCow(1) => "pb-cow".to_owned(),
            StartMode::PrebakeCow(n) => format!("pb-cow-{n}"),
            StartMode::PrebakeCowPrefetch(1) => "pb-cow-prefetch".to_owned(),
            StartMode::PrebakeCowPrefetch(n) => format!("pb-cow-prefetch-{n}"),
        }
    }

    /// The three modes of the paper's full-factorial §4.2.2 experiment.
    pub fn all_three() -> [StartMode; 3] {
        [
            StartMode::Vanilla,
            StartMode::PrebakeNoWarmup,
            StartMode::PrebakeWarmup(1),
        ]
    }

    /// The lazy-restore ablation trio: the paper's eager warm restore
    /// against the two `prebake-lazy` refinements, all over the same
    /// 1-warm-up snapshot.
    pub fn lazy_ablation() -> [StartMode; 3] {
        [
            StartMode::PrebakeWarmup(1),
            StartMode::PrebakeLazy(1),
            StartMode::PrebakePrefetch(1),
        ]
    }

    /// The page-store ablation trio: the paper's eager warm restore
    /// against the two copy-on-write strategies, all over the same
    /// 1-warm-up snapshot (`ablation_pagestore`).
    pub fn cow_ablation() -> [StartMode; 3] {
        [
            StartMode::PrebakeWarmup(1),
            StartMode::PrebakeCow(1),
            StartMode::PrebakeCowPrefetch(1),
        ]
    }
}

/// One cold-start observation.
#[derive(Debug, Clone, Copy)]
pub struct StartupTrial {
    /// Start command → ready to serve, in milliseconds (Fig. 3's
    /// "start-up time").
    pub startup_ms: f64,
    /// Start command → first response completed, in milliseconds (the
    /// §4.2.2 measurement: lazily-linking functions do their class
    /// loading inside the first request).
    pub first_response_ms: f64,
    /// Phase decomposition of the start-up (Fig. 4).
    pub phases: Phases,
    /// Snapshot size behind this start (0 for vanilla).
    pub snapshot_bytes: u64,
    /// Stored (non-zero) pages in the snapshot behind this start (0 for
    /// vanilla).
    pub pages_stored: usize,
    /// Distinct page contents among those stored pages — the page-store
    /// frame count the dedup view collapses them to (equals
    /// `pages_stored` when nothing dedups; 0 for vanilla).
    pub pages_unique: usize,
    /// Probe counters over the whole window (start-up **and** first
    /// request): syscalls, markers, and — under lazy restore modes —
    /// major/minor page faults and copy-on-write breaks.
    pub probes: ProbeCounters,
    /// Install shards the restore ran with (1 on the serial path, 0 for
    /// vanilla starts that restore nothing).
    pub restore_shards: usize,
    /// Payload bytes the prefetch read streamed instead of seeking for —
    /// non-zero only once the image is laid out in fault order.
    pub seek_bytes_avoided: u64,
    /// Stored pages the restore found compacted into the fallback layer
    /// (0 unless the image was repacked with compaction).
    pub pages_compacted: usize,
}

impl StartupTrial {
    /// Fraction of stored pages that another stored page's content
    /// already covers (`0.0` when nothing dedups or nothing is stored).
    pub fn dedup_ratio(&self) -> f64 {
        if self.pages_stored == 0 {
            0.0
        } else {
            (self.pages_stored - self.pages_unique) as f64 / self.pages_stored as f64
        }
    }

    /// Copy-on-write breaks taken across start-up and first request
    /// (non-zero only under the CoW restore modes).
    pub fn cow_breaks(&self) -> u64 {
        self.probes.cow_breaks
    }
}

/// A fixed (function, mode) pair that can run many independent trials.
///
/// `TrialRunner` is `Sync`: trials only need `&self`, so repetitions can
/// fan out across threads, each building its own machine.
#[derive(Debug)]
pub struct TrialRunner {
    spec: FunctionSpec,
    mode: StartMode,
    port: u16,
    baked_images: Option<Vec<(String, Bytes)>>,
    snapshot_bytes: u64,
    pages_stored: usize,
    pages_unique: usize,
    vectored: bool,
    fault_around: usize,
    threads: usize,
    repack: Option<RepackStats>,
}

impl TrialRunner {
    /// Prepares a runner; prebake modes bake the snapshot once here.
    ///
    /// # Errors
    ///
    /// Propagates build/bake errors.
    pub fn new(spec: FunctionSpec, mode: StartMode) -> SysResult<TrialRunner> {
        let port = 8080;
        let (baked_images, snapshot_bytes, pages_stored, pages_unique) = match mode.policy() {
            None => (None, 0, 0, 0),
            Some(policy) => {
                // The builder machine: where `faas-cli build` would run.
                let mut kernel = Kernel::new(0xBA5E);
                let builder = provision_machine(&mut kernel)?;
                let dep = Deployment::install(&mut kernel, spec.clone(), port)?;
                let report = bake(&mut kernel, builder, &dep, policy, &dep.images_dir())?;
                if mode.needs_working_set() {
                    // Record pass: restore once in record mode, drive the
                    // first invocation, persist `ws.img` beside the other
                    // images so export ships it automatically.
                    record_working_set(&mut kernel, builder, &dep, &dep.images_dir())?;
                }
                let files = export_images(&mut kernel, &dep.images_dir())?;
                (
                    Some(files),
                    report.snapshot_bytes(),
                    report.dump.pages_stored,
                    report.dump.pages_unique,
                )
            }
        };
        Ok(TrialRunner {
            spec,
            mode,
            port,
            baked_images,
            snapshot_bytes,
            pages_stored,
            pages_unique,
            vectored: true,
            fault_around: 1,
            threads: 1,
            repack: None,
        })
    }

    /// Selects the page-granular restore paths for every trial (the
    /// pre-extent baseline; vectored extent restore is the default).
    #[must_use]
    pub fn page_granular(mut self) -> TrialRunner {
        self.vectored = false;
        self
    }

    /// Sets the fault-around window trials restore with (uffd-backed
    /// modes only; 1 = no fault-around).
    #[must_use]
    pub fn fault_around(mut self, window: usize) -> TrialRunner {
        self.fault_around = window;
        self
    }

    /// Restores with `threads` parallel install shards per trial. Values
    /// below 2 take the serial path bit-for-bit.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> TrialRunner {
        self.threads = threads;
        self
    }

    /// Rewrites the baked images into recorded fault order (the offline
    /// `repack` pass, run once on a builder machine). Modes that do not
    /// record a working set get a record pass first.
    ///
    /// # Errors
    ///
    /// Propagates repack errors; [`Errno::Einval`] for vanilla runners,
    /// which have no images to rewrite.
    pub fn fault_order(mut self) -> SysResult<TrialRunner> {
        self.repack_images(false)?;
        Ok(self)
    }

    /// As [`TrialRunner::fault_order`], additionally compacting pages the
    /// recorded first invocation never touched into the fallback layer.
    ///
    /// # Errors
    ///
    /// Propagates repack errors; [`Errno::Einval`] for vanilla runners.
    pub fn compact(mut self) -> SysResult<TrialRunner> {
        self.repack_images(true)?;
        Ok(self)
    }

    /// Runs the offline repack on a scratch builder machine: import the
    /// baked images, record `ws.img` if this mode never did, repack in
    /// place, re-export. Trial machines then ship the rewritten images.
    fn repack_images(&mut self, compact: bool) -> SysResult<()> {
        let Some(files) = self.baked_images.take() else {
            return Err(Errno::Einval);
        };
        let mut kernel = Kernel::new(0x5EC0);
        let builder = provision_machine(&mut kernel)?;
        let dep = Deployment::install(&mut kernel, self.spec.clone(), self.port)?;
        import_images(&mut kernel, &dep.images_dir(), &files)?;
        if !files.iter().any(|(name, _)| name == ImageSet::WS_NAME) {
            record_working_set(&mut kernel, builder, &dep, &dep.images_dir())?;
        }
        let mut opts = RepackOptions::new(dep.images_dir());
        opts.compact = compact;
        let stats = repack(&mut kernel, &opts)?;
        self.baked_images = Some(export_images(&mut kernel, &dep.images_dir())?);
        self.repack = Some(stats);
        Ok(())
    }

    /// Stats of the offline repack pass, if [`TrialRunner::fault_order`]
    /// or [`TrialRunner::compact`] ran.
    pub fn repack_stats(&self) -> Option<RepackStats> {
        self.repack
    }

    /// The mode this runner measures.
    pub fn mode(&self) -> StartMode {
        self.mode
    }

    /// The function this runner measures.
    pub fn spec(&self) -> &FunctionSpec {
        &self.spec
    }

    /// Size of the baked snapshot (0 for vanilla).
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// Stored pages in the baked snapshot (0 for vanilla).
    pub fn pages_stored(&self) -> usize {
        self.pages_stored
    }

    /// Distinct page contents in the baked snapshot's dedup view (0 for
    /// vanilla).
    pub fn pages_unique(&self) -> usize {
        self.pages_unique
    }

    /// Builds the trial machine: provision, deploy, ship snapshot images,
    /// then reset to fresh-container cache state.
    fn setup(&self, seed: u64) -> SysResult<(Kernel, Pid, Deployment)> {
        let mut kernel = Kernel::new(seed);
        let watchdog = provision_machine(&mut kernel)?;
        let dep = Deployment::install(&mut kernel, self.spec.clone(), self.port)?;
        let mut warm = Vec::new();
        if let Some(files) = &self.baked_images {
            import_images(&mut kernel, &dep.images_dir(), files)?;
            warm = dep.image_paths();
        }
        fresh_container(&mut kernel, &warm)?;
        Ok((kernel, watchdog, dep))
    }

    fn starter(&self) -> Box<dyn Starter> {
        match self.mode.restore_mode() {
            None => Box::new(VanillaStarter),
            Some(mode) => {
                let mut starter = PrebakeStarter::with_mode(mode);
                starter.vectored = self.vectored;
                starter.fault_around = self.fault_around;
                starter.threads = self.threads;
                Box::new(starter)
            }
        }
    }

    /// Runs one cold-start trial on a fresh machine.
    ///
    /// # Errors
    ///
    /// Propagates kernel/runtime errors.
    pub fn startup_trial(&self, seed: u64) -> SysResult<StartupTrial> {
        let (mut kernel, watchdog, dep) = self.setup(seed)?;
        let t0 = kernel.now();
        let Started {
            mut replica,
            startup,
            phases,
            trace,
            restore,
            ..
        } = self.starter().start(&mut kernel, watchdog, &dep)?;

        // First request (held until readiness by the load generator),
        // traced too: lazy modes take their demand faults here.
        kernel.set_tracing(true);
        let req = dep.spec.sample_request();
        replica.handle(&mut kernel, &req)?;
        let first_response = kernel.now() - t0;
        let request_trace = kernel.take_trace();
        kernel.set_tracing(false);

        let mut probes = ProbeCounters::from_events(&trace);
        probes.merge(&ProbeCounters::from_events(&request_trace));

        Ok(StartupTrial {
            startup_ms: startup.as_millis_f64(),
            first_response_ms: first_response.as_millis_f64(),
            phases,
            snapshot_bytes: self.snapshot_bytes,
            pages_stored: self.pages_stored,
            pages_unique: self.pages_unique,
            probes,
            restore_shards: restore.as_ref().map_or(0, |r| r.shards),
            seek_bytes_avoided: restore.as_ref().map_or(0, |r| r.seek_bytes_avoided),
            pages_compacted: restore.as_ref().map_or(0, |r| r.pages_compacted),
        })
    }

    /// As [`TrialRunner::startup_trial`], additionally recording the
    /// span trees of the start-up window (rooted at `"startup"`) and the
    /// first request (rooted at `"first_request"`). Span ids are unique
    /// across the two trees, so they concatenate into one artifact —
    /// feed it to [`prebake_sim::trace::chrome_trace_json`] or
    /// [`prebake_sim::trace::TraceSummary`].
    ///
    /// Kept separate from `startup_trial` so the big repetition sweeps
    /// stay free of span-recording overhead.
    ///
    /// # Errors
    ///
    /// Propagates kernel/runtime errors.
    pub fn traced_trial(&self, seed: u64) -> SysResult<(StartupTrial, Vec<TraceSpan>)> {
        let (mut kernel, watchdog, dep) = self.setup(seed)?;
        kernel.set_span_tracing(true);
        let t0 = kernel.now();
        let Started {
            mut replica,
            startup,
            phases,
            trace,
            spans: mut all_spans,
            restore,
        } = self.starter().start(&mut kernel, watchdog, &dep)?;

        kernel.set_tracing(true);
        let root = kernel.span_begin("first_request", replica.pid());
        let req = dep.spec.sample_request();
        replica.handle(&mut kernel, &req)?;
        kernel.span_end(root);
        let first_response = kernel.now() - t0;
        let request_trace = kernel.take_trace();
        kernel.set_tracing(false);
        all_spans.extend(kernel.take_spans());
        kernel.set_span_tracing(false);

        let mut probes = ProbeCounters::from_events(&trace);
        probes.merge(&ProbeCounters::from_events(&request_trace));

        Ok((
            StartupTrial {
                startup_ms: startup.as_millis_f64(),
                first_response_ms: first_response.as_millis_f64(),
                phases,
                snapshot_bytes: self.snapshot_bytes,
                pages_stored: self.pages_stored,
                pages_unique: self.pages_unique,
                probes,
                restore_shards: restore.as_ref().map_or(0, |r| r.shards),
                seek_bytes_avoided: restore.as_ref().map_or(0, |r| r.seek_bytes_avoided),
                pages_compacted: restore.as_ref().map_or(0, |r| r.pages_compacted),
            },
            all_spans,
        ))
    }

    /// Starts once and serves `requests` sequential invocations at a
    /// constant rate, returning each service time in milliseconds (the
    /// paper's Fig. 7 methodology).
    ///
    /// # Errors
    ///
    /// Propagates kernel/runtime errors.
    pub fn service_trial(
        &self,
        seed: u64,
        requests: usize,
        inter_arrival: SimDuration,
    ) -> SysResult<Vec<f64>> {
        let (mut kernel, watchdog, dep) = self.setup(seed)?;
        let Started { mut replica, .. } = self.starter().start(&mut kernel, watchdog, &dep)?;
        let req = dep.spec.sample_request();
        let mut times = Vec::with_capacity(requests);
        for _ in 0..requests {
            let t0 = kernel.now();
            replica.handle(&mut kernel, &req)?;
            times.push((kernel.now() - t0).as_millis_f64());
            kernel.advance(inter_arrival);
        }
        Ok(times)
    }

    /// Runs `reps` startup trials with consecutive seeds, collecting
    /// `startup_ms` (Fig. 3/4 measurement).
    ///
    /// # Errors
    ///
    /// Propagates trial errors.
    pub fn startup_samples(&self, reps: usize, seed0: u64) -> SysResult<Vec<StartupTrial>> {
        (0..reps)
            .map(|i| self.startup_trial(seed0 + i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_functions::SyntheticSize;

    #[test]
    fn mode_labels_and_policies() {
        assert_eq!(StartMode::Vanilla.label(), "vanilla");
        assert_eq!(StartMode::PrebakeNoWarmup.label(), "pb-nowarmup");
        assert_eq!(StartMode::PrebakeWarmup(1).label(), "pb-warmup");
        assert_eq!(StartMode::PrebakeWarmup(3).label(), "pb-warmup-3");
        assert!(StartMode::Vanilla.policy().is_none());
        assert_eq!(
            StartMode::PrebakeWarmup(1).policy(),
            Some(SnapshotPolicy::AfterWarmup(1))
        );
        assert_eq!(StartMode::all_three().len(), 3);
    }

    #[test]
    fn lazy_mode_labels_policies_and_restore_modes() {
        assert_eq!(StartMode::PrebakeLazy(1).label(), "pb-lazy");
        assert_eq!(StartMode::PrebakeLazy(2).label(), "pb-lazy-2");
        assert_eq!(StartMode::PrebakePrefetch(1).label(), "pb-prefetch");
        assert_eq!(StartMode::PrebakePrefetch(0).label(), "pb-prefetch-0");
        assert_eq!(
            StartMode::PrebakeLazy(0).policy(),
            Some(SnapshotPolicy::AfterReady)
        );
        assert_eq!(
            StartMode::PrebakePrefetch(2).policy(),
            Some(SnapshotPolicy::AfterWarmup(2))
        );
        assert_eq!(
            StartMode::PrebakeWarmup(1).restore_mode(),
            Some(RestoreMode::Eager)
        );
        assert_eq!(
            StartMode::PrebakeLazy(1).restore_mode(),
            Some(RestoreMode::Lazy)
        );
        assert_eq!(
            StartMode::PrebakePrefetch(1).restore_mode(),
            Some(RestoreMode::Prefetch)
        );
        assert!(StartMode::Vanilla.restore_mode().is_none());
        assert!(StartMode::PrebakePrefetch(1).needs_working_set());
        assert!(!StartMode::PrebakeLazy(1).needs_working_set());
        assert_eq!(StartMode::lazy_ablation().len(), 3);
    }

    #[test]
    fn cow_mode_labels_policies_and_restore_modes() {
        assert_eq!(StartMode::PrebakeCow(1).label(), "pb-cow");
        assert_eq!(StartMode::PrebakeCow(2).label(), "pb-cow-2");
        assert_eq!(StartMode::PrebakeCowPrefetch(1).label(), "pb-cow-prefetch");
        assert_eq!(
            StartMode::PrebakeCow(0).policy(),
            Some(SnapshotPolicy::AfterReady)
        );
        assert_eq!(
            StartMode::PrebakeCowPrefetch(2).policy(),
            Some(SnapshotPolicy::AfterWarmup(2))
        );
        assert_eq!(
            StartMode::PrebakeCow(1).restore_mode(),
            Some(RestoreMode::Cow)
        );
        assert_eq!(
            StartMode::PrebakeCowPrefetch(1).restore_mode(),
            Some(RestoreMode::CowPrefetch)
        );
        assert!(StartMode::PrebakeCowPrefetch(1).needs_working_set());
        assert!(!StartMode::PrebakeCow(1).needs_working_set());
        assert_eq!(StartMode::cow_ablation().len(), 3);
    }

    #[test]
    fn cow_trials_report_dedup_and_break_counters() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let eager = TrialRunner::new(spec.clone(), StartMode::PrebakeWarmup(1)).unwrap();
        let cow = TrialRunner::new(spec, StartMode::PrebakeCow(1)).unwrap();
        let t_e = eager.startup_trial(1).unwrap();
        let t_c = cow.startup_trial(1).unwrap();

        // The dedup view is a property of the snapshot, not the restore
        // strategy: both runners bake the same function and report the
        // same unique/total page split.
        assert_eq!(t_e.pages_stored, t_c.pages_stored);
        assert_eq!(t_e.pages_unique, t_c.pages_unique);
        assert!(t_c.pages_unique > 0);
        assert!(
            t_c.pages_unique < t_c.pages_stored,
            "runtime images carry duplicate pages ({} unique of {})",
            t_c.pages_unique,
            t_c.pages_stored
        );
        assert!(t_c.dedup_ratio() > 0.0 && t_c.dedup_ratio() < 1.0);

        // Only the CoW restore takes write-protect breaks; the first
        // invocation writes some shared pages but far from all of them.
        assert_eq!(t_e.cow_breaks(), 0);
        assert!(t_c.cow_breaks() > 0, "first request breaks written pages");
        assert!(
            (t_c.cow_breaks() as usize) < t_c.pages_stored,
            "read-mostly pages stay shared"
        );
    }

    #[test]
    fn vanilla_trials_have_no_dedup_view() {
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
        assert_eq!(runner.pages_stored(), 0);
        assert_eq!(runner.pages_unique(), 0);
        let t = runner.startup_trial(3).unwrap();
        assert_eq!(t.dedup_ratio(), 0.0);
        assert_eq!(t.cow_breaks(), 0);
    }

    #[test]
    fn prefetch_avoids_the_lazy_modes_major_faults() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let lazy = TrialRunner::new(spec.clone(), StartMode::PrebakeLazy(1)).unwrap();
        let prefetch = TrialRunner::new(spec, StartMode::PrebakePrefetch(1)).unwrap();
        let t_l = lazy.startup_trial(1).unwrap();
        let t_p = prefetch.startup_trial(1).unwrap();
        assert!(
            t_l.probes.major_faults > 100,
            "pure lazy demand-faults its working set ({} major faults)",
            t_l.probes.major_faults
        );
        assert_eq!(
            t_p.probes.major_faults, 0,
            "the recorded working set covers the whole first invocation"
        );
        assert!(
            t_p.first_response_ms < t_l.first_response_ms,
            "prefetch {} !< lazy {}",
            t_p.first_response_ms,
            t_l.first_response_ms
        );
    }

    #[test]
    fn page_granular_restore_is_slower_and_issues_no_extents() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let vectored = TrialRunner::new(spec.clone(), StartMode::PrebakeWarmup(1)).unwrap();
        let per_page = TrialRunner::new(spec, StartMode::PrebakeWarmup(1))
            .unwrap()
            .page_granular();
        let t_v = vectored.startup_trial(1).unwrap();
        let t_p = per_page.startup_trial(1).unwrap();
        assert!(
            t_v.probes.extents_restored > 0,
            "vectored restore copies runs"
        );
        assert_eq!(t_p.probes.extents_restored, 0);
        assert!(
            t_v.startup_ms < t_p.startup_ms,
            "vectored {} !< per-page {}",
            t_v.startup_ms,
            t_p.startup_ms
        );
    }

    #[test]
    fn fault_around_cuts_lazy_major_faults() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let narrow = TrialRunner::new(spec.clone(), StartMode::PrebakeLazy(1)).unwrap();
        let wide = TrialRunner::new(spec, StartMode::PrebakeLazy(1))
            .unwrap()
            .fault_around(16);
        let t_n = narrow.startup_trial(1).unwrap();
        let t_w = wide.startup_trial(1).unwrap();
        assert_eq!(t_n.probes.faults_avoided, 0);
        assert!(t_w.probes.faults_avoided > 0);
        assert!(
            t_w.probes.major_faults < t_n.probes.major_faults / 4,
            "window 16 traps a fraction of the faults: {} vs {}",
            t_w.probes.major_faults,
            t_n.probes.major_faults
        );
    }

    #[test]
    fn vanilla_noop_trials_match_paper_scale() {
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
        let trials = runner.startup_samples(5, 100).unwrap();
        for t in &trials {
            assert!(
                (90.0..120.0).contains(&t.startup_ms),
                "startup {}ms",
                t.startup_ms
            );
            assert!(t.first_response_ms > t.startup_ms);
            assert_eq!(t.snapshot_bytes, 0);
        }
        // Trials differ (noise) but only slightly.
        assert_ne!(trials[0].startup_ms, trials[1].startup_ms);
    }

    #[test]
    fn prebake_runner_bakes_once_and_reuses() {
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::PrebakeNoWarmup).unwrap();
        assert!(runner.snapshot_bytes() > 10_000_000);
        let a = runner.startup_trial(1).unwrap();
        let b = runner.startup_trial(2).unwrap();
        assert!(a.startup_ms < 80.0, "prebaked NOOP {}ms", a.startup_ms);
        assert!(b.startup_ms < 80.0);
        assert_eq!(a.snapshot_bytes, b.snapshot_bytes);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
        let a = runner.startup_trial(7).unwrap();
        let b = runner.startup_trial(7).unwrap();
        assert_eq!(a.startup_ms, b.startup_ms);
        assert_eq!(a.first_response_ms, b.first_response_ms);
    }

    #[test]
    fn warmup_beats_nowarmup_on_synthetic_small() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let nw = TrialRunner::new(spec.clone(), StartMode::PrebakeNoWarmup).unwrap();
        let w = TrialRunner::new(spec, StartMode::PrebakeWarmup(1)).unwrap();
        let t_nw = nw.startup_trial(1).unwrap();
        let t_w = w.startup_trial(1).unwrap();
        assert!(
            t_w.first_response_ms < t_nw.first_response_ms / 2.0,
            "warmup {} vs nowarmup {}",
            t_w.first_response_ms,
            t_nw.first_response_ms
        );
    }

    #[test]
    fn parallel_restore_threads_cut_eager_startup() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let serial = TrialRunner::new(spec.clone(), StartMode::PrebakeWarmup(1)).unwrap();
        let sharded = TrialRunner::new(spec, StartMode::PrebakeWarmup(1))
            .unwrap()
            .threads(4);
        let t_s = serial.startup_trial(1).unwrap();
        let t_p = sharded.startup_trial(1).unwrap();
        assert_eq!(t_s.restore_shards, 1);
        assert_eq!(t_p.restore_shards, 4);
        assert!(
            t_p.startup_ms < t_s.startup_ms,
            "4 shards {} !< serial {}",
            t_p.startup_ms,
            t_s.startup_ms
        );
    }

    #[test]
    fn fault_order_layout_streams_the_prefetch_read() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let dump_order = TrialRunner::new(spec.clone(), StartMode::PrebakePrefetch(1)).unwrap();
        let ordered = TrialRunner::new(spec, StartMode::PrebakePrefetch(1))
            .unwrap()
            .fault_order()
            .unwrap();
        let stats = ordered.repack_stats().unwrap();
        assert_eq!(stats.pages_compacted, 0, "layout-only pass keeps all pages");
        let t_d = dump_order.startup_trial(1).unwrap();
        let t_o = ordered.startup_trial(1).unwrap();
        assert!(
            t_o.seek_bytes_avoided > t_d.seek_bytes_avoided,
            "ordered layout avoids more seeks: {} !> {}",
            t_o.seek_bytes_avoided,
            t_d.seek_bytes_avoided
        );
        assert!(
            t_o.first_response_ms < t_d.first_response_ms,
            "ordered {} !< dump-order {}",
            t_o.first_response_ms,
            t_d.first_response_ms
        );
        assert_eq!(t_o.probes.major_faults, 0, "prefetch still covers the ws");
    }

    #[test]
    fn compaction_shrinks_the_hot_image_and_keeps_trials_working() {
        let spec = FunctionSpec::synthetic(SyntheticSize::Small);
        let full = TrialRunner::new(spec.clone(), StartMode::PrebakeWarmup(1)).unwrap();
        // Eager warmup never records a ws: compact() runs the record pass.
        let compacted = TrialRunner::new(spec, StartMode::PrebakeWarmup(1))
            .unwrap()
            .compact()
            .unwrap();
        let stats = compacted.repack_stats().unwrap();
        assert!(stats.pages_compacted > 0, "first request skips some pages");
        assert!(stats.hot_bytes_after < stats.hot_bytes_before);
        let t_f = full.startup_trial(1).unwrap();
        let t_c = compacted.startup_trial(1).unwrap();
        assert_eq!(t_f.pages_compacted, 0);
        assert_eq!(t_c.pages_compacted, stats.pages_compacted);
        assert!(
            t_c.startup_ms < t_f.startup_ms,
            "smaller hot image starts faster: {} !< {}",
            t_c.startup_ms,
            t_f.startup_ms
        );
    }

    #[test]
    fn vanilla_runner_has_no_images_to_repack() {
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
        assert_eq!(runner.fault_order().unwrap_err(), Errno::Einval);
    }

    #[test]
    fn service_trial_returns_requested_count() {
        let runner = TrialRunner::new(FunctionSpec::noop(), StartMode::Vanilla).unwrap();
        let times = runner
            .service_trial(5, 10, SimDuration::from_millis(10))
            .unwrap();
        assert_eq!(times.len(), 10);
        assert!(times.iter().all(|&t| t > 0.0));
        // steady-state requests are fast and similar
        let tail = &times[2..];
        let max = tail.iter().cloned().fold(0.0f64, f64::max);
        let min = tail.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.5, "service times vary too much: {times:?}");
    }
}
