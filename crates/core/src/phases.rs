//! Start-up phase decomposition (the paper's Figure 4).
//!
//! The paper instruments start-up with `bpftrace` syscall probes and
//! runtime log lines, splitting it into four components:
//!
//! 1. **CLONE** — the `clone(2)` call;
//! 2. **EXEC** — the `execve(2)` call;
//! 3. **RTS** — end of exec to the first line of `main()` (runtime
//!    bootstrap);
//! 4. **APPINIT** — `main()` to ready-to-serve.
//!
//! [`PhaseTracker`] folds a kernel probe trace into those components. On
//! the prebake path there is no exec and no runtime bootstrap, so EXEC
//! and RTS collapse to zero and the restore work lands in APPINIT —
//! matching the paper's observation that restored start-up is "almost
//! totally dictated by the APPINIT phase".

use prebake_sim::probe::ProbeEvent;
use prebake_sim::time::{SimDuration, SimInstant};
use prebake_sim::trace::TraceSpan;

/// Durations of the four start-up components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Phases {
    /// `clone(2)` duration.
    pub clone: SimDuration,
    /// `execve(2)` duration (zero on the restore path).
    pub exec: SimDuration,
    /// Runtime bootstrap (zero on the restore path).
    pub rts: SimDuration,
    /// Application initialisation (includes restore work on the prebake
    /// path).
    pub appinit: SimDuration,
}

impl Phases {
    /// Sum of all components.
    pub fn total(&self) -> SimDuration {
        self.clone + self.exec + self.rts + self.appinit
    }

    /// Components as `(label, millis)` rows for reports.
    pub fn rows(&self) -> [(&'static str, f64); 4] {
        [
            ("CLONE", self.clone.as_millis_f64()),
            ("EXEC", self.exec.as_millis_f64()),
            ("RTS", self.rts.as_millis_f64()),
            ("APPINIT", self.appinit.as_millis_f64()),
        ]
    }
}

impl std::fmt::Display for Phases {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CLONE {:.2}ms | EXEC {:.2}ms | RTS {:.2}ms | APPINIT {:.2}ms",
            self.clone.as_millis_f64(),
            self.exec.as_millis_f64(),
            self.rts.as_millis_f64(),
            self.appinit.as_millis_f64()
        )
    }
}

/// Folds a probe trace into [`Phases`].
///
/// `start` is when the start command was issued; `ready` is when the
/// replica could serve. The tracker is robust to missing events (e.g. no
/// `execve` on the restore path): a missing boundary collapses the
/// corresponding phase to zero and attributes the time to the next one.
#[derive(Debug)]
pub struct PhaseTracker {
    start: SimInstant,
    ready: SimInstant,
}

impl PhaseTracker {
    /// Creates a tracker over a `[start, ready]` window.
    pub fn new(start: SimInstant, ready: SimInstant) -> PhaseTracker {
        PhaseTracker { start, ready }
    }

    /// Computes the phase decomposition from the recorded events.
    pub fn phases(&self, trace: &[ProbeEvent]) -> Phases {
        let window = |t: SimInstant| t >= self.start && t <= self.ready;
        let find_enter = |name: &str| {
            trace
                .iter()
                .find(|e| window(e.time) && e.kind.as_enter() == Some(name))
                .map(|e| e.time)
        };
        let find_exit = |name: &str| {
            trace
                .iter()
                .find(|e| window(e.time) && e.kind.as_exit() == Some(name))
                .map(|e| e.time)
        };
        let find_marker = |name: &str| {
            trace
                .iter()
                .find(|e| window(e.time) && e.kind.as_marker() == Some(name))
                .map(|e| e.time)
        };

        let clone_enter = find_enter("clone").unwrap_or(self.start);
        let clone_exit = find_exit("clone").unwrap_or(clone_enter);
        let clone = clone_exit.saturating_duration_since(clone_enter);

        let (exec, exec_end) = match (find_enter("execve"), find_exit("execve")) {
            (Some(enter), Some(exit)) => (exit.saturating_duration_since(enter), exit),
            _ => (SimDuration::ZERO, clone_exit),
        };

        let (rts, rts_end) = match find_marker("main-entry") {
            Some(main_entry) => (main_entry.saturating_duration_since(exec_end), main_entry),
            None => (SimDuration::ZERO, exec_end),
        };

        let ready = find_marker("ready").unwrap_or(self.ready);
        // Work before the clone (on the restore path, reading the images
        // and preparing the restorer) and after the RTS boundary both
        // belong to application initialisation — the paper's observation
        // that restored start-up is "almost totally dictated by APPINIT".
        let pre_clone = clone_enter.saturating_duration_since(self.start);
        let appinit = ready.saturating_duration_since(rts_end) + pre_clone;

        Phases {
            clone,
            exec,
            rts,
            appinit,
        }
    }

    /// Computes the phase decomposition from a recorded span tree instead
    /// of the flat probe stream.
    ///
    /// The kernel opens its `sys_clone`/`sys_execve` spans at the same
    /// instants it records the corresponding enter/exit probes, and
    /// markers ride on spans as annotations, so this yields *exactly* the
    /// same [`Phases`] as [`PhaseTracker::phases`] over the probe trace
    /// of the same window — the cross-check `trace_startup` asserts.
    pub fn phases_from_spans(&self, spans: &[TraceSpan]) -> Phases {
        let window = |t: SimInstant| t >= self.start && t <= self.ready;
        let find_span = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name && window(s.start) && window(s.end))
        };
        let find_marker = |name: &str| {
            spans
                .iter()
                .flat_map(|s| s.events.iter())
                .filter(|e| window(e.time) && e.kind.as_marker() == Some(name))
                .map(|e| e.time)
                .min()
        };

        let (clone_enter, clone_exit) = match find_span("sys_clone") {
            Some(s) => (s.start, s.end),
            None => (self.start, self.start),
        };
        let clone = clone_exit.saturating_duration_since(clone_enter);

        let (exec, exec_end) = match find_span("sys_execve") {
            Some(s) => (s.end.saturating_duration_since(s.start), s.end),
            None => (SimDuration::ZERO, clone_exit),
        };

        let (rts, rts_end) = match find_marker("main-entry") {
            Some(main_entry) => (main_entry.saturating_duration_since(exec_end), main_entry),
            None => (SimDuration::ZERO, exec_end),
        };

        let ready = find_marker("ready").unwrap_or(self.ready);
        let pre_clone = clone_enter.saturating_duration_since(self.start);
        let appinit = ready.saturating_duration_since(rts_end) + pre_clone;

        Phases {
            clone,
            exec,
            rts,
            appinit,
        }
    }
}

/// Derives [`Phases`] from a span tree containing a `"startup"` root span
/// (as recorded by the starters): the root's interval is the measurement
/// window. Returns `None` when no such root exists.
pub fn phases_from_span_tree(spans: &[TraceSpan]) -> Option<Phases> {
    let root = spans
        .iter()
        .filter(|s| s.name == "startup")
        .min_by_key(|s| s.start)?;
    Some(PhaseTracker::new(root.start, root.end).phases_from_spans(spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_sim::probe::ProbeKind;
    use prebake_sim::proc::Pid;

    fn ev(ms: u64, kind: ProbeKind) -> ProbeEvent {
        ProbeEvent {
            time: SimInstant::from_nanos(ms * 1_000_000),
            pid: Pid(2),
            kind,
        }
    }

    #[test]
    fn vanilla_trace_decomposes() {
        let trace = vec![
            ev(0, ProbeKind::SyscallEnter("clone")),
            ev(1, ProbeKind::SyscallExit("clone")),
            ev(1, ProbeKind::SyscallEnter("execve")),
            ev(3, ProbeKind::SyscallExit("execve")),
            ev(3, ProbeKind::marker("rts-start")),
            ev(73, ProbeKind::marker("main-entry")),
            ev(103, ProbeKind::marker("ready")),
        ];
        let p = PhaseTracker::new(SimInstant::EPOCH, SimInstant::from_nanos(103 * 1_000_000))
            .phases(&trace);
        assert_eq!(p.clone.as_millis(), 1);
        assert_eq!(p.exec.as_millis(), 2);
        assert_eq!(p.rts.as_millis(), 70);
        assert_eq!(p.appinit.as_millis(), 30);
        assert_eq!(p.total().as_millis(), 103);
    }

    #[test]
    fn restore_trace_has_zero_exec_and_rts() {
        let trace = vec![
            ev(0, ProbeKind::SyscallEnter("clone")),
            ev(1, ProbeKind::SyscallExit("clone")),
            // restore work... no execve, no main-entry
            ev(60, ProbeKind::marker("ready")),
        ];
        let p = PhaseTracker::new(SimInstant::EPOCH, SimInstant::from_nanos(60 * 1_000_000))
            .phases(&trace);
        assert_eq!(p.exec, SimDuration::ZERO);
        assert_eq!(p.rts, SimDuration::ZERO);
        assert_eq!(p.clone.as_millis(), 1);
        assert_eq!(p.appinit.as_millis(), 59);
        assert_eq!(p.total().as_millis(), 60);
    }

    #[test]
    fn events_outside_window_ignored() {
        let trace = vec![
            ev(0, ProbeKind::SyscallEnter("clone")),
            ev(1, ProbeKind::SyscallExit("clone")),
            ev(5, ProbeKind::marker("ready")),
            // a later unrelated start
            ev(100, ProbeKind::SyscallEnter("clone")),
            ev(105, ProbeKind::SyscallExit("clone")),
        ];
        let p = PhaseTracker::new(SimInstant::EPOCH, SimInstant::from_nanos(5 * 1_000_000))
            .phases(&trace);
        assert_eq!(p.clone.as_millis(), 1);
        assert_eq!(p.total().as_millis(), 5);
    }

    #[test]
    fn empty_trace_collapses_to_appinit() {
        let p = PhaseTracker::new(SimInstant::EPOCH, SimInstant::from_nanos(42 * 1_000_000))
            .phases(&[]);
        assert_eq!(p.clone, SimDuration::ZERO);
        assert_eq!(p.exec, SimDuration::ZERO);
        assert_eq!(p.rts, SimDuration::ZERO);
        assert_eq!(p.appinit.as_millis(), 42);
    }

    #[test]
    fn rows_and_display() {
        let p = Phases {
            clone: SimDuration::from_millis(1),
            exec: SimDuration::from_millis(2),
            rts: SimDuration::from_millis(70),
            appinit: SimDuration::from_millis(30),
        };
        let rows = p.rows();
        assert_eq!(rows[0], ("CLONE", 1.0));
        assert_eq!(rows[3], ("APPINIT", 30.0));
        let s = p.to_string();
        assert!(s.contains("RTS 70.00ms"), "{s}");
    }
}
