//! Machine provisioning shared by experiments and the platform.
//!
//! Each cold-start trial runs on a fresh machine ([`prebake_sim::Kernel`])
//! modelling a freshly provisioned container: the runtime layer of the
//! container image is pre-pulled (warm), the function artifact is not.

use bytes::Bytes;
use prebake_sim::error::SysResult;
use prebake_sim::fs::join_path;
use prebake_sim::kernel::{Kernel, INIT_PID};
use prebake_sim::proc::Pid;

use prebake_functions::FunctionSpec;
use prebake_runtime::gen::SplitMix64;
use prebake_runtime::JlvmConfig;

/// Guest path of the runtime launcher binary.
pub const RUNTIME_BIN: &str = "/bin/jlvm";

/// Size of the runtime binary (kept small and pre-warmed: the paper's
/// EXEC phase is ≈1 ms).
pub const RUNTIME_BIN_LEN: usize = 512 << 10;

/// Installs the runtime binary and spawns the supervisor (watchdog)
/// process that starts replicas and runs CRIU. The supervisor inherits
/// init's full capability set (the paper's §5 `--privileged` /
/// `CAP_CHECKPOINT_RESTORE` requirement).
///
/// # Errors
///
/// Propagates filesystem and process errors.
pub fn provision_machine(kernel: &mut Kernel) -> SysResult<Pid> {
    kernel.fs_create_dir_all("/bin")?;
    kernel.fs_write_file(
        RUNTIME_BIN,
        SplitMix64::new(0x4A4C_564D).nonzero_bytes(RUNTIME_BIN_LEN),
    )?;
    let watchdog = kernel.sys_clone(INIT_PID)?;
    kernel.process_mut(watchdog)?.comm = "watchdog".to_owned();
    Ok(watchdog)
}

/// Models "fresh container, pre-pulled base image": evicts the page
/// cache, then re-warms the runtime binary and any snapshot images under
/// `warm_paths` (they ship in the container image and were paged in when
/// the image was pulled). The function's own artifact stays cold.
/// Absent paths are skipped: `ws.img` only exists for prefetch-recorded
/// functions.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn fresh_container(kernel: &mut Kernel, warm_paths: &[String]) -> SysResult<()> {
    kernel.drop_caches();
    kernel.fs_read_file(RUNTIME_BIN)?;
    for path in warm_paths {
        if kernel.fs_exists(path) {
            kernel.fs_read_file(path)?;
        }
    }
    Ok(())
}

/// A function deployed on a machine: artifacts installed under a
/// directory, with the port its replicas bind.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The function.
    pub spec: FunctionSpec,
    /// Directory the artifacts were installed under.
    pub app_dir: String,
    /// Port replicas bind.
    pub port: u16,
}

impl Deployment {
    /// Installs `spec` under `/app/<name>` and returns the deployment.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn install(kernel: &mut Kernel, spec: FunctionSpec, port: u16) -> SysResult<Deployment> {
        let app_dir = format!("/app/{}", spec.name());
        spec.install(kernel, &app_dir)?;
        Ok(Deployment {
            spec,
            app_dir,
            port,
        })
    }

    /// Runtime configuration for a replica of this deployment.
    pub fn jlvm_config(&self) -> JlvmConfig {
        self.spec.jlvm_config(&self.app_dir, self.port)
    }

    /// Directory where this deployment's snapshot images live.
    pub fn images_dir(&self) -> String {
        join_path(&self.app_dir, "snapshot")
    }

    /// Paths of the snapshot image files (for cache pre-warming).
    pub fn image_paths(&self) -> Vec<String> {
        use prebake_criu::ImageSet;
        let dir = self.images_dir();
        [
            ImageSet::CORE_NAME,
            ImageSet::MM_NAME,
            ImageSet::PAGEMAP_NAME,
            ImageSet::PAGES_NAME,
            ImageSet::FILES_NAME,
            ImageSet::WS_NAME,
        ]
        .iter()
        .map(|name| join_path(&dir, name))
        .collect()
    }
}

/// Copies a directory of snapshot images out of a (builder) machine so
/// they can ship inside the function's container image. Uncharged: image
/// distribution happens outside any measured start-up path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_images(kernel: &mut Kernel, dir: &str) -> SysResult<Vec<(String, Bytes)>> {
    let names = kernel.fs().list_dir(dir)?;
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let path = join_path(dir, &name);
        let (data, _) = kernel.fs_mut().read_file(&path)?;
        out.push((name, data));
    }
    Ok(out)
}

/// Installs exported snapshot images into a (replica) machine's
/// filesystem. Uncharged, same rationale as [`export_images`].
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn import_images(kernel: &mut Kernel, dir: &str, files: &[(String, Bytes)]) -> SysResult<()> {
    kernel.fs_mut().create_dir_all(dir)?;
    for (name, data) in files {
        kernel
            .fs_mut()
            .write_file(&join_path(dir, name), data.clone())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provision_creates_runtime_and_watchdog() {
        let mut k = Kernel::free(1);
        let watchdog = provision_machine(&mut k).unwrap();
        assert!(k.fs_exists(RUNTIME_BIN));
        let proc = k.process(watchdog).unwrap();
        assert_eq!(proc.comm, "watchdog");
        assert!(proc.caps.can_checkpoint());
    }

    #[test]
    fn fresh_container_warms_selected_paths() {
        let mut k = Kernel::free(2);
        provision_machine(&mut k).unwrap();
        k.fs_create_dir_all("/app").unwrap();
        k.fs_write_file("/app/fn.jlar", vec![1u8; 100]).unwrap();
        k.fs_write_file("/app/snap.img", vec![2u8; 100]).unwrap();
        fresh_container(&mut k, &["/app/snap.img".to_owned()]).unwrap();
        assert!(k.fs().stat(RUNTIME_BIN).unwrap().cached);
        assert!(k.fs().stat("/app/snap.img").unwrap().cached);
        assert!(
            !k.fs().stat("/app/fn.jlar").unwrap().cached,
            "jar stays cold"
        );
    }

    #[test]
    fn deployment_install_layout() {
        let mut k = Kernel::free(3);
        let dep = Deployment::install(&mut k, FunctionSpec::noop(), 8080).unwrap();
        assert_eq!(dep.app_dir, "/app/noop");
        assert!(k.fs_exists("/app/noop/fn.jlar"));
        assert_eq!(dep.images_dir(), "/app/noop/snapshot");
        assert_eq!(dep.image_paths().len(), 6);
        assert_eq!(dep.jlvm_config().port, 8080);
    }

    #[test]
    fn image_export_import_roundtrip() {
        let mut src = Kernel::free(4);
        src.fs_create_dir_all("/snap").unwrap();
        src.fs_write_file("/snap/core.img", vec![1, 2, 3]).unwrap();
        src.fs_write_file("/snap/pages.img", vec![4; 1000]).unwrap();
        let files = export_images(&mut src, "/snap").unwrap();
        assert_eq!(files.len(), 2);

        let mut dst = Kernel::free(5);
        import_images(&mut dst, "/app/fn/snapshot", &files).unwrap();
        assert!(dst.fs_exists("/app/fn/snapshot/core.img"));
        let (data, cached) = dst
            .fs_mut()
            .read_file("/app/fn/snapshot/pages.img")
            .unwrap();
        assert_eq!(data.len(), 1000);
        assert!(cached, "imported images are page-cache resident");
    }
}
