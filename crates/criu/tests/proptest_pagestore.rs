//! Property tests for the content-addressed page store: the dedup view
//! must mirror the pages image for arbitrary page mixtures, and a
//! copy-on-write restore must never let one replica's writes alias into
//! another replica sharing the same frames.

use proptest::prelude::*;

use prebake_criu::dump::{dump, DumpOptions};
use prebake_criu::image::{PageStoreImage, PagesImage};
use prebake_criu::restore::{restore, RestoreMode, RestoreOptions};
use prebake_sim::kernel::{Kernel, INIT_PID};
use prebake_sim::mem::{Page, Prot, VmaKind, PAGE_SIZE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dedup view matches the pages image byte-for-byte across
    /// arbitrary mixtures of zero, duplicate and distinct pages, and
    /// survives its codec.
    #[test]
    fn pagestore_mirrors_pages_image(
        entries in prop::collection::vec((0u64..64, 0u8..6), 0..32),
    ) {
        let mut pages = PagesImage::default();
        let mut seen = std::collections::BTreeSet::new();
        for (idx, fill) in entries {
            if !seen.insert(idx) {
                continue;
            }
            // Few distinct fills so duplicates are common; fill 0 keeps
            // the page zero (never stored).
            let mut page = Page::zeroed();
            if fill != 0 {
                page.bytes_mut().fill(fill);
            }
            pages.push(idx, &page);
        }
        let store = PageStoreImage::from_pages(&pages).unwrap();
        prop_assert_eq!(store.total_refs(), pages.stored_pages());
        prop_assert!(store.unique_pages() <= store.total_refs());
        prop_assert_eq!(
            store.unique_bytes(),
            (store.unique_pages() * PAGE_SIZE) as u64
        );
        store.verify_against(&pages).unwrap();
        // Metadata-only codec: the payload comes back from the pages
        // image, bit-identical to the pre-encode store.
        let back = PageStoreImage::parse(&store.encode(), &pages).unwrap();
        prop_assert_eq!(back, store);
    }

    /// Dump → dedup → CoW-restore two replicas → overwrite every page of
    /// one: the sibling still observes the original memory, bit-equal to
    /// an eager (private-copy) restore of the same snapshot.
    #[test]
    fn cow_break_never_aliases_across_replicas(
        regions in prop::collection::vec(
            (1u64..6, prop::collection::vec(any::<u8>(), 1..1500)),
            1..4,
        ),
        seed in any::<u64>(),
    ) {
        let mut kernel = Kernel::free(seed);
        let tracer = kernel.sys_clone(INIT_PID).unwrap();
        let target = kernel.sys_clone(INIT_PID).unwrap();
        let mut writes = Vec::new();
        for (pages, data) in &regions {
            let len = pages * PAGE_SIZE as u64;
            let addr = kernel
                .sys_mmap(target, len, Prot::RW, VmaKind::RuntimeHeap)
                .unwrap();
            let data = &data[..data.len().min(len as usize)];
            kernel.mem_write(target, addr, data).unwrap();
            writes.push((addr, len, data.to_vec()));
        }
        dump(&mut kernel, tracer, &DumpOptions::new(target, "/img")).unwrap();

        let cow = RestoreOptions::with_mode("/img", RestoreMode::Cow);
        let a = restore(&mut kernel, tracer, &cow).unwrap();
        let b = restore(&mut kernel, tracer, &cow).unwrap();
        let eager = restore(&mut kernel, tracer, &RestoreOptions::new("/img")).unwrap();

        // Scribble over replica A completely — every shared frame it
        // references breaks into a private copy.
        for (addr, len, _) in &writes {
            let junk: Vec<u8> = (0..*len).map(|i| (i % 249) as u8 ^ 0x5A).collect();
            kernel.mem_write(a.pid, *addr, &junk).unwrap();
        }

        // Replica B still reads the checkpointed bytes...
        for (addr, _, data) in &writes {
            let back = kernel.mem_read(b.pid, *addr, data.len() as u64).unwrap();
            prop_assert_eq!(&back, data);
        }
        // ...and its whole address space is observably identical to the
        // eager restore's private copies.
        let b_mem = &kernel.process(b.pid).unwrap().mem;
        let eager_mem = &kernel.process(eager.pid).unwrap().mem;
        prop_assert!(b_mem.observably_equal(eager_mem));
    }
}
