//! End-to-end tests of the incremental (pre-dump + `--track-mem`)
//! checkpoint flow — the paper's §7 plan for reducing checkpoint cost on
//! big functions.

use prebake_criu::cli::{CliOutcome, CriuCli};
use prebake_criu::dump::{dump, pre_dump, DumpOptions};
use prebake_criu::restore::{restore, RestoreOptions};
use prebake_sim::cost::CostModel;
use prebake_sim::kernel::{Kernel, INIT_PID};
use prebake_sim::mem::{Prot, VirtAddr, VmaKind, PAGE_SIZE};
use prebake_sim::noise::Noise;
use prebake_sim::proc::Pid;

/// A target with `pages` resident pages of distinct content.
fn setup(pages: u64) -> (Kernel, Pid, Pid, VirtAddr) {
    let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
    let tracer = k.sys_clone(INIT_PID).unwrap();
    let target = k.sys_clone(INIT_PID).unwrap();
    let addr = k
        .sys_mmap(
            target,
            pages * PAGE_SIZE as u64,
            Prot::RW,
            VmaKind::RuntimeHeap,
        )
        .unwrap();
    for i in 0..pages {
        let fill = vec![(i % 250 + 1) as u8; PAGE_SIZE];
        k.mem_write(target, addr.add(i * PAGE_SIZE as u64), &fill)
            .unwrap();
    }
    (k, tracer, target, addr)
}

#[test]
fn incremental_dump_defers_clean_pages() {
    let (mut k, tracer, target, addr) = setup(64);

    // Pre-dump stages all 64 pages without freezing.
    let pre = pre_dump(&mut k, tracer, &DumpOptions::new(target, "/pre")).unwrap();
    assert_eq!(pre.pages_stored, 64);
    assert!(pre.frozen_for.is_zero(), "pre-dump never freezes");
    assert!(k.process(target).is_ok(), "target keeps running");

    // The task keeps working: dirty 4 pages.
    for i in 0..4u64 {
        k.mem_write(target, addr.add(i * PAGE_SIZE as u64), &[0xEE; 64])
            .unwrap();
    }

    // Final incremental dump only carries the dirty residue.
    let mut opts = DumpOptions::new(target, "/final");
    opts.parent = Some("/pre".to_owned());
    let fin = dump(&mut k, tracer, &opts).unwrap();
    assert_eq!(fin.pages_stored, 4, "only dirtied pages stored");
    assert_eq!(fin.parent_pages, 60, "clean pages deferred to parent");
    assert!(
        fin.image_bytes < pre.image_bytes / 4,
        "incremental image {} !<< full {}",
        fin.image_bytes,
        pre.image_bytes
    );
}

#[test]
fn incremental_restore_is_byte_faithful() {
    let (mut k, tracer, target, addr) = setup(32);
    pre_dump(&mut k, tracer, &DumpOptions::new(target, "/pre")).unwrap();

    // Mutate a few pages, then snapshot incrementally.
    k.mem_write(target, addr, b"mutated-after-predump").unwrap();
    k.mem_write(target, addr.add(9 * PAGE_SIZE as u64), &[0x42; 128])
        .unwrap();
    let expected: Vec<u8> = k.mem_read(target, addr, 32 * PAGE_SIZE as u64).unwrap();

    let mut opts = DumpOptions::new(target, "/final");
    opts.parent = Some("/pre".to_owned());
    dump(&mut k, tracer, &opts).unwrap();

    let stats = restore(&mut k, tracer, &RestoreOptions::new("/final")).unwrap();
    let restored = k.mem_read(stats.pid, addr, 32 * PAGE_SIZE as u64).unwrap();
    assert_eq!(restored, expected, "parent + residue reassemble exactly");
}

#[test]
fn incremental_freeze_window_is_much_shorter() {
    // Full dump of 4096 pages vs incremental with 32 dirty pages.
    let (mut k, tracer, target, _) = setup(4096);
    let mut full_opts = DumpOptions::new(target, "/full");
    full_opts.leave_running = true;
    let full = dump(&mut k, tracer, &full_opts).unwrap();

    let (mut k, tracer, target, addr) = setup(4096);
    pre_dump(&mut k, tracer, &DumpOptions::new(target, "/pre")).unwrap();
    for i in 0..32u64 {
        k.mem_write(target, addr.add(i * PAGE_SIZE as u64), &[1; 8])
            .unwrap();
    }
    let mut inc_opts = DumpOptions::new(target, "/final");
    inc_opts.parent = Some("/pre".to_owned());
    let inc = dump(&mut k, tracer, &inc_opts).unwrap();

    // The freeze window keeps its fixed costs (parasite injection, dump
    // preparation, pagemap walks) but sheds the per-page transfer of the
    // 4064 clean pages.
    assert!(
        inc.frozen_for.as_nanos() * 2 < full.frozen_for.as_nanos(),
        "incremental freeze {} !<< full freeze {}",
        inc.frozen_for,
        full.frozen_for
    );
    assert!(
        inc.frozen_for.as_millis_f64() < 5.0,
        "incremental freeze should be fixed-cost bound, got {}",
        inc.frozen_for
    );
}

#[test]
fn cli_drives_the_incremental_flow() {
    let (mut k, tracer, target, addr) = setup(16);
    let cli = CriuCli::new(tracer);
    let pid_str = target.0.to_string();

    let out = cli
        .run(&mut k, &["criu", "pre-dump", "-t", &pid_str, "-D", "/pre"])
        .unwrap();
    assert!(matches!(out, CliOutcome::Dumped(s) if s.frozen_for.is_zero()));

    k.mem_write(target, addr, &[7; 100]).unwrap();
    let out = cli
        .run(
            &mut k,
            &[
                "criu",
                "dump",
                "-t",
                &pid_str,
                "-D",
                "/final",
                "--track-mem",
                "--prev-images-dir",
                "/pre",
            ],
        )
        .unwrap();
    match out {
        CliOutcome::Dumped(s) => {
            assert_eq!(s.pages_stored, 1);
            assert_eq!(s.parent_pages, 15);
        }
        other => panic!("expected dump, got {other:?}"),
    }

    let out = cli
        .run(&mut k, &["criu", "restore", "-D", "/final"])
        .unwrap();
    match out {
        CliOutcome::Restored(s) => {
            let bytes = k.mem_read(s.pid, addr, 100).unwrap();
            assert_eq!(bytes, vec![7; 100]);
        }
        other => panic!("expected restore, got {other:?}"),
    }
}

#[test]
fn prev_images_dir_requires_track_mem() {
    let (mut k, tracer, target, _) = setup(4);
    let cli = CriuCli::new(tracer);
    let pid_str = target.0.to_string();
    let err = cli
        .run(
            &mut k,
            &[
                "dump",
                "-t",
                &pid_str,
                "-D",
                "/x",
                "--prev-images-dir",
                "/pre",
            ],
        )
        .unwrap_err();
    assert!(err.to_string().contains("--track-mem"), "{err}");
}

#[test]
fn restore_without_parent_resolution_refuses() {
    use prebake_criu::image::PagesImage;
    use prebake_criu::restore::restore_set;
    use prebake_criu::ImageSet;

    let (mut k, tracer, target, _) = setup(4);
    let mut opts = DumpOptions::new(target, "/full");
    opts.leave_running = true;
    dump(&mut k, tracer, &opts).unwrap();
    let mut set = prebake_criu::read_images(&mut k, "/full").unwrap();

    // Forge an unresolved parent reference.
    let mut pages = PagesImage::default();
    pages.push_parent_ref(set.mm.vmas[0].first_page());
    set.pages = pages;
    let err = restore_set(&mut k, tracer, &set, &RestoreOptions::new("/full")).unwrap_err();
    assert_eq!(err, prebake_sim::Errno::Einval);
    let _ = ImageSet::PARENT_LINK;
}
