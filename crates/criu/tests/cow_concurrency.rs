//! Shared-frame lifecycle across many concurrent replicas: N processes
//! CoW-restored from one snapshot reference each distinct page frame
//! exactly once machine-wide, and when the last replica exits the pool
//! reclaims everything — no leaked shared pages.

use prebake_criu::dump::{dump, DumpOptions};
use prebake_criu::restore::{restore, RestoreMode, RestoreOptions, RestoreStats};
use prebake_sim::kernel::{Kernel, INIT_PID};
use prebake_sim::mem::{Prot, VmaKind, PAGE_SIZE};
use prebake_sim::proc::Pid;

const REPLICAS: usize = 8;
const PAGES: u64 = 32;
const DISTINCT: u64 = 16; // each content appears on two pages

fn baked_kernel() -> (Kernel, Pid) {
    let mut k = Kernel::free(0xC0C0);
    let tracer = k.sys_clone(INIT_PID).unwrap();
    let target = k.sys_clone(INIT_PID).unwrap();
    let addr = k
        .sys_mmap(
            target,
            PAGES * PAGE_SIZE as u64,
            Prot::RW,
            VmaKind::RuntimeHeap,
        )
        .unwrap();
    for i in 0..PAGES {
        let fill = (i % DISTINCT) as u8 + 1;
        k.mem_write(target, addr.add(i * PAGE_SIZE as u64), &[fill; PAGE_SIZE])
            .unwrap();
    }
    dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
    (k, tracer)
}

#[test]
fn refcounts_drop_to_zero_after_all_replicas_exit() {
    let (mut k, tracer) = baked_kernel();
    let opts = RestoreOptions::with_mode("/img", RestoreMode::Cow);
    let replicas: Vec<RestoreStats> = (0..REPLICAS)
        .map(|_| restore(&mut k, tracer, &opts).unwrap())
        .collect();

    // Every replica maps all 32 stored pages onto the same 16 frames.
    for r in &replicas {
        assert_eq!(r.pages_cow, PAGES as usize);
    }
    assert_eq!(k.page_store().frame_count(), DISTINCT as usize);
    assert_eq!(
        k.page_store().external_refs(),
        (REPLICAS as u64) * PAGES,
        "one mapping per stored page per replica"
    );

    // Half the replicas dirty their first page: each break releases one
    // frame reference and nothing else.
    let vma = k
        .process(replicas[0].pid)
        .unwrap()
        .mem
        .vmas()
        .next()
        .unwrap()
        .clone();
    for r in replicas.iter().take(REPLICAS / 2) {
        k.mem_write(r.pid, vma.start, &[0xFF; 8]).unwrap();
    }
    assert_eq!(
        k.page_store().external_refs(),
        (REPLICAS as u64) * PAGES - (REPLICAS as u64) / 2
    );
    assert_eq!(k.page_store().frame_count(), DISTINCT as usize);

    // Retire replicas one by one; the pool drains monotonically and the
    // frames stay resident while anyone still maps them.
    for (i, r) in replicas.iter().enumerate() {
        k.sys_exit(r.pid, 0).unwrap();
        if i < REPLICAS - 1 {
            assert!(
                k.page_store().frame_count() > 0,
                "frames alive with mappers"
            );
        }
    }
    assert_eq!(k.page_store().external_refs(), 0, "no dangling frame refs");
    assert!(k.page_store().is_empty(), "all shared pages reclaimed");
}

#[test]
fn replicas_from_distinct_snapshots_share_common_content() {
    // Cross-snapshot dedup: two different functions whose snapshots
    // overlap in content (same runtime pages, different app pages) share
    // the overlapping frames in the machine pool.
    let mut k = Kernel::free(0xD0D0);
    let tracer = k.sys_clone(INIT_PID).unwrap();
    for (dir, app_fill) in [("/img-a", 0x21u8), ("/img-b", 0x42u8)] {
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 8 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        // Four "runtime" pages identical across both functions...
        for i in 0..4u64 {
            k.mem_write(
                target,
                addr.add(i * PAGE_SIZE as u64),
                &[(i as u8) + 1; PAGE_SIZE],
            )
            .unwrap();
        }
        // ...and four app pages unique to each.
        for i in 4..8u64 {
            k.mem_write(
                target,
                addr.add(i * PAGE_SIZE as u64),
                &[app_fill ^ (i as u8); PAGE_SIZE],
            )
            .unwrap();
        }
        dump(&mut k, tracer, &DumpOptions::new(target, dir)).unwrap();
    }

    let a = restore(
        &mut k,
        tracer,
        &RestoreOptions::with_mode("/img-a", RestoreMode::Cow),
    )
    .unwrap();
    let b = restore(
        &mut k,
        tracer,
        &RestoreOptions::with_mode("/img-b", RestoreMode::Cow),
    )
    .unwrap();
    assert_eq!(a.pages_cow, 8);
    assert_eq!(b.pages_cow, 8);
    assert_eq!(
        k.page_store().frame_count(),
        12,
        "4 shared runtime frames + 2x4 app frames"
    );

    k.sys_exit(a.pid, 0).unwrap();
    assert_eq!(
        k.page_store().frame_count(),
        8,
        "b's frames survive a's exit"
    );
    k.sys_exit(b.pid, 0).unwrap();
    assert!(k.page_store().is_empty());
}
