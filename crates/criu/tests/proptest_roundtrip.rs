//! Property tests for the checkpoint machinery: image codecs and the
//! dump→restore pipeline over randomly shaped processes.

use proptest::prelude::*;

use prebake_criu::dump::{dump, repack, DumpOptions, RepackOptions};
use prebake_criu::image::{CoreImage, FilesImage, MmImage, PagesImage, ThreadImage, WsImage};
use prebake_criu::restore::{restore, RestoreMode, RestoreOptions};
use prebake_sim::kernel::{Kernel, INIT_PID};
use prebake_sim::mem::{Page, Prot, Vma, VmaKind, PAGE_SIZE};
use prebake_sim::proc::{FdEntry, Pid, Regs, Tid};

/// Deterministic Fisher–Yates driven by a splitmix stream, so property
/// inputs choose the permutation without pulling in an RNG dependency.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Core/mm/pages/files images round-trip for arbitrary contents.
    #[test]
    fn image_codecs_roundtrip(
        pid in 2u32..100_000,
        comm in "[a-z]{1,15}",
        args in prop::collection::vec("[ -~]{0,30}", 0..5),
        caps in any::<u8>(),
        threads in prop::collection::vec((any::<u32>(), any::<u64>(), any::<u64>()), 1..5),
        vmas in prop::collection::vec((0u64..1000, 1u64..64), 0..10),
        fds in prop::collection::vec((3i32..100, 0u8..4), 0..8),
    ) {
        let core = CoreImage {
            pid: Pid(pid),
            comm,
            cmdline: args,
            cap_bits: caps & 0b111,
            threads: threads
                .into_iter()
                .map(|(tid, ip, sp)| ThreadImage { tid: Tid(tid), regs: Regs { ip, sp } })
                .collect(),
        };
        prop_assert_eq!(CoreImage::parse(&core.encode()).unwrap(), core);

        // Non-overlapping VMAs from (slot, len) pairs.
        let mut mm = MmImage::default();
        let mut cursor = 0x1000_0000u64;
        for (gap, len) in vmas {
            cursor += gap * PAGE_SIZE as u64;
            mm.vmas.push(Vma {
                start: prebake_sim::mem::VirtAddr(cursor),
                len: len * PAGE_SIZE as u64,
                prot: Prot::RW,
                kind: VmaKind::Anon,
            });
            cursor += (len + 1) * PAGE_SIZE as u64;
        }
        prop_assert_eq!(MmImage::parse(&mm.encode()).unwrap(), mm);

        let mut files = FilesImage::default();
        let mut used = std::collections::BTreeSet::new();
        for (fd, kind) in fds {
            if !used.insert(fd) {
                continue;
            }
            let entry = match kind {
                0 => FdEntry::File { path: format!("/f{fd}"), offset: fd as u64 },
                1 => FdEntry::PipeRead { pipe: fd as u64 },
                2 => FdEntry::PipeWrite { pipe: fd as u64 },
                _ => FdEntry::Listener { port: 1000 + fd as u16 },
            };
            files.fds.push((fd, entry));
        }
        prop_assert_eq!(FilesImage::parse(&files.encode()).unwrap(), files);
    }

    /// Pages image: zero pages are deduplicated, payload pages preserved,
    /// for arbitrary mixtures.
    #[test]
    fn pages_image_roundtrip(entries in prop::collection::vec((any::<u64>(), any::<bool>(), any::<u8>()), 0..32)) {
        let mut pages = PagesImage::default();
        let mut seen = std::collections::BTreeSet::new();
        for (idx, zero, fill) in entries {
            if !seen.insert(idx) {
                continue;
            }
            let mut page = Page::zeroed();
            if !zero {
                page.bytes_mut().fill(fill.max(1));
            }
            pages.push(idx, &page);
        }
        let back = PagesImage::parse(&pages.encode_pagemap(), &pages.encode_pages()).unwrap();
        prop_assert_eq!(&back, &pages);
        prop_assert_eq!(back.stored_pages() + back.zero_pages(), back.entries.len());
    }

    /// Dump→restore over a randomly shaped process reproduces every byte
    /// of observable memory and every descriptor.
    #[test]
    fn dump_restore_preserves_process(
        regions in prop::collection::vec((1u64..12, prop::collection::vec(any::<u8>(), 1..2000)), 1..5),
        port in 2000u16..60_000,
        seed in any::<u64>(),
    ) {
        let mut kernel = Kernel::free(seed);
        let tracer = kernel.sys_clone(INIT_PID).unwrap();
        let target = kernel.sys_clone(INIT_PID).unwrap();
        let mut writes = Vec::new();
        for (pages, data) in &regions {
            let len = pages * PAGE_SIZE as u64;
            let addr = kernel.sys_mmap(target, len, Prot::RW, VmaKind::RuntimeHeap).unwrap();
            let data = &data[..data.len().min(len as usize)];
            kernel.mem_write(target, addr, data).unwrap();
            writes.push((addr, data.to_vec()));
        }
        kernel.sys_listen(target, port).unwrap();

        dump(&mut kernel, tracer, &DumpOptions::new(target, "/img")).unwrap();
        prop_assert!(kernel.process(target).is_err(), "dump kills the bakee");
        prop_assert_eq!(kernel.port_owner(port), None);

        let stats = restore(&mut kernel, tracer, &RestoreOptions::new("/img")).unwrap();
        for (addr, data) in writes {
            let back = kernel.mem_read(stats.pid, addr, data.len() as u64).unwrap();
            prop_assert_eq!(back, data);
        }
        prop_assert_eq!(kernel.port_owner(port), Some(stats.pid));
    }

    /// An extent-coalesced dump restores bit-identically to the
    /// page-granular path in all four restore modes, and a legacy image
    /// set without `extents.img` still round-trips (the vectored path
    /// recoalesces runs from the pagemap).
    #[test]
    fn extent_restore_is_bit_identical_across_modes(
        regions in prop::collection::vec((1u64..10, prop::collection::vec(any::<u8>(), 1..2000)), 1..4),
        window in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut kernel = Kernel::free(seed);
        let tracer = kernel.sys_clone(INIT_PID).unwrap();
        let target = kernel.sys_clone(INIT_PID).unwrap();
        let mut writes = Vec::new();
        for (pages, data) in &regions {
            let len = pages * PAGE_SIZE as u64;
            let addr = kernel.sys_mmap(target, len, Prot::RW, VmaKind::RuntimeHeap).unwrap();
            let data = &data[..data.len().min(len as usize)];
            kernel.mem_write(target, addr, data).unwrap();
            writes.push((addr, data.to_vec()));
        }
        dump(&mut kernel, tracer, &DumpOptions::new(target, "/img")).unwrap();

        // Record a working set so the Prefetch mode has a `ws.img`.
        {
            let opts = RestoreOptions::with_mode("/img", RestoreMode::Record);
            let stats = restore(&mut kernel, tracer, &opts).unwrap();
            for (addr, data) in &writes {
                kernel.mem_read(stats.pid, *addr, data.len() as u64).unwrap();
            }
            let log = kernel.uffd_take_log(stats.pid).unwrap();
            kernel.fs_write_file("/img/ws.img", WsImage::from_fault_log(log).encode()).unwrap();
            kernel.sys_exit(stats.pid, 0).unwrap();
            kernel.reap(stats.pid).unwrap();
        }

        let expected: Vec<u8> = writes.iter().flat_map(|(_, d)| d.clone()).collect();
        for mode in [RestoreMode::Eager, RestoreMode::Lazy, RestoreMode::Cow, RestoreMode::Prefetch] {
            let mut restored = Vec::new();
            for vectored in [true, false] {
                let mut opts = RestoreOptions::with_mode("/img", mode);
                opts.vectored = vectored;
                opts.fault_around = window;
                let stats = restore(&mut kernel, tracer, &opts).unwrap();
                let mut bytes = Vec::new();
                for (addr, data) in &writes {
                    bytes.extend(kernel.mem_read(stats.pid, *addr, data.len() as u64).unwrap());
                }
                restored.push(bytes);
                kernel.sys_exit(stats.pid, 0).unwrap();
                kernel.reap(stats.pid).unwrap();
            }
            prop_assert_eq!(
                &restored[0], &restored[1],
                "vectored and page-granular restores diverge in {:?}", mode
            );
            prop_assert_eq!(&restored[0], &expected);
        }

        // Legacy image set: drop the extent table (absent entirely in
        // pre-extent dumps) and restore on the default vectored path.
        let _ = kernel.fs_remove_file("/img/extents.img");
        let stats = restore(&mut kernel, tracer, &RestoreOptions::new("/img")).unwrap();
        for (addr, data) in &writes {
            let back = kernel.mem_read(stats.pid, *addr, data.len() as u64).unwrap();
            prop_assert_eq!(&back, data);
        }
    }

    /// A fault-order repack under an arbitrary recorded order restores
    /// bit-identically to the original image in all four memory modes:
    /// the layout pass may permute the payload, never the contents.
    #[test]
    fn repacked_image_restores_identically_across_modes(
        regions in prop::collection::vec((1u64..8, prop::collection::vec(1u8..=255, 1..1500)), 1..4),
        order_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut kernel = Kernel::free(seed);
        let tracer = kernel.sys_clone(INIT_PID).unwrap();
        let target = kernel.sys_clone(INIT_PID).unwrap();
        let mut writes = Vec::new();
        for (pages, data) in &regions {
            let len = pages * PAGE_SIZE as u64;
            let addr = kernel.sys_mmap(target, len, Prot::RW, VmaKind::RuntimeHeap).unwrap();
            let data = &data[..data.len().min(len as usize)];
            kernel.mem_write(target, addr, data).unwrap();
            writes.push((addr, data.to_vec()));
        }
        dump(&mut kernel, tracer, &DumpOptions::new(target, "/img")).unwrap();

        // An arbitrary fault order over every written page.
        let mut ws_pages: Vec<u64> = writes
            .iter()
            .flat_map(|(addr, data)| {
                let pages = (data.len() as u64).div_ceil(PAGE_SIZE as u64);
                (0..pages).map(move |i| addr.0 / PAGE_SIZE as u64 + i)
            })
            .collect();
        shuffle(&mut ws_pages, order_seed);
        kernel
            .fs_write_file("/img/ws.img", WsImage::from_fault_log(ws_pages).encode())
            .unwrap();

        let stats = repack(&mut kernel, &RepackOptions::new("/img")).unwrap();
        prop_assert_eq!(stats.pages_compacted, 0, "layout-only pass keeps all pages hot");
        prop_assert_eq!(stats.hot_bytes_after, stats.hot_bytes_before);

        let expected: Vec<u8> = writes.iter().flat_map(|(_, d)| d.clone()).collect();
        for mode in [RestoreMode::Eager, RestoreMode::Lazy, RestoreMode::Cow, RestoreMode::Prefetch] {
            let opts = RestoreOptions::with_mode("/img", mode);
            let stats = restore(&mut kernel, tracer, &opts).unwrap();
            let mut bytes = Vec::new();
            for (addr, data) in &writes {
                bytes.extend(kernel.mem_read(stats.pid, *addr, data.len() as u64).unwrap());
            }
            prop_assert_eq!(&bytes, &expected, "repacked restore diverges in {:?}", mode);
            kernel.sys_exit(stats.pid, 0).unwrap();
            kernel.reap(stats.pid).unwrap();
        }
    }

    /// A compacted image plus its fallback layer restores bit-identically
    /// to the full image whatever order the pages fault back in.
    #[test]
    fn compacted_image_restores_identically_under_any_fault_order(
        regions in prop::collection::vec((1u64..6, prop::collection::vec(1u8..=255, 1..1200)), 2..5),
        order_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut kernel = Kernel::free(seed);
        let tracer = kernel.sys_clone(INIT_PID).unwrap();
        let target = kernel.sys_clone(INIT_PID).unwrap();
        let mut writes = Vec::new();
        for (pages, data) in &regions {
            let len = pages * PAGE_SIZE as u64;
            let addr = kernel.sys_mmap(target, len, Prot::RW, VmaKind::RuntimeHeap).unwrap();
            let data = &data[..data.len().min(len as usize)];
            kernel.mem_write(target, addr, data).unwrap();
            writes.push((addr, data.to_vec()));
        }
        dump(&mut kernel, tracer, &DumpOptions::new(target, "/img")).unwrap();

        // The recorded working set covers only the first region: every
        // other stored page gets compacted into the fallback layer.
        let (ws_addr, ws_data) = &writes[0];
        let ws_pages: Vec<u64> = (0..(ws_data.len() as u64).div_ceil(PAGE_SIZE as u64))
            .map(|i| ws_addr.0 / PAGE_SIZE as u64 + i)
            .collect();
        kernel
            .fs_write_file("/img/ws.img", WsImage::from_fault_log(ws_pages).encode())
            .unwrap();

        let mut opts = RepackOptions::new("/img");
        opts.compact = true;
        let stats = repack(&mut kernel, &opts).unwrap();
        prop_assert!(stats.pages_compacted > 0, "regions past the ws compact");
        prop_assert!(stats.hot_bytes_after < stats.hot_bytes_before);

        // Fault the memory back in an arbitrary order, eagerly and
        // lazily: contents must match the full image bit for bit.
        let mut order: Vec<usize> = (0..writes.len()).collect();
        shuffle(&mut order, order_seed);
        for mode in [RestoreMode::Eager, RestoreMode::Lazy] {
            let opts = RestoreOptions::with_mode("/img", mode);
            let stats = restore(&mut kernel, tracer, &opts).unwrap();
            for &i in &order {
                let (addr, data) = &writes[i];
                let back = kernel.mem_read(stats.pid, *addr, data.len() as u64).unwrap();
                prop_assert_eq!(&back, data, "fallback fault diverges in {:?}", mode);
            }
            prop_assert!(
                kernel.uffd_fallback_faults(stats.pid) > 0,
                "compacted pages fault through the fallback layer"
            );
            kernel.sys_exit(stats.pid, 0).unwrap();
            kernel.reap(stats.pid).unwrap();
        }
    }

    /// `ws.img` round-trips arbitrary fault logs, preserving order and
    /// repeats exactly.
    #[test]
    fn ws_image_roundtrip(log in prop::collection::vec(any::<u64>(), 0..256)) {
        let ws = WsImage::from_fault_log(log.clone());
        prop_assert_eq!(&ws.pages, &log);
        let back = WsImage::parse(&ws.encode()).unwrap();
        prop_assert_eq!(back, ws);
    }

    /// A record-mode restore over the same seed and process shape yields
    /// the identical fault sequence and identical fault counters: the
    /// demand-paging path is deterministic.
    #[test]
    fn recorded_fault_sequence_is_deterministic(
        regions in prop::collection::vec((1u64..8, prop::collection::vec(any::<u8>(), 1..1500)), 1..4),
        seed in any::<u64>(),
    ) {
        let run = |seed: u64| -> (Vec<u64>, (u64, u64)) {
            let mut kernel = Kernel::new(seed);
            let tracer = kernel.sys_clone(INIT_PID).unwrap();
            let target = kernel.sys_clone(INIT_PID).unwrap();
            let mut writes = Vec::new();
            for (pages, data) in &regions {
                let len = pages * PAGE_SIZE as u64;
                let addr = kernel.sys_mmap(target, len, Prot::RW, VmaKind::RuntimeHeap).unwrap();
                let data = &data[..data.len().min(len as usize)];
                kernel.mem_write(target, addr, data).unwrap();
                writes.push((addr, data.len() as u64));
            }
            dump(&mut kernel, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let opts = RestoreOptions::with_mode("/img", RestoreMode::Record);
            let stats = restore(&mut kernel, tracer, &opts).unwrap();
            // Drive the "first invocation": touch every region in order.
            for (addr, len) in writes {
                kernel.mem_read(stats.pid, addr, len).unwrap();
            }
            let log = kernel.uffd_take_log(stats.pid).unwrap();
            let counts = kernel.uffd_fault_counts(stats.pid);
            (log, counts)
        };
        let (log_a, counts_a) = run(seed);
        let (log_b, counts_b) = run(seed);
        prop_assert_eq!(&log_a, &log_b, "fault order differs across identical runs");
        prop_assert_eq!(counts_a, counts_b);
        prop_assert_eq!(log_a.len() as u64, counts_a.0, "every major fault is logged");
    }
}
