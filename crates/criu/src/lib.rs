//! # prebake-criu
//!
//! Checkpoint/Restore In Userspace over the [`prebake-sim`](prebake_sim)
//! kernel — the mechanism at the heart of *"Prebaking Functions to Warm
//! the Serverless Cold Start"*.
//!
//! The implementation follows the pipeline the paper describes in §3.2:
//!
//! 1. **Freeze** — `PTRACE_SEIZE` + interrupt of every target thread;
//! 2. **Parasite injection** — a blob mapped and poked into the target's
//!    address space performs the memory reads "from inside";
//! 3. **Pagemap walk** — `/proc/<pid>/pagemap` reveals resident pages;
//!    all-zero pages are deduplicated (never stored);
//! 4. **Page transfer** — page contents stream through a pipe to the
//!    dumper, which writes checksummed image files (`core.img`, `mm.img`,
//!    `pagemap.img`, `pages.img`, `files.img`);
//! 5. **Cure** — the parasite unmaps itself and the target resumes (or is
//!    killed, as the prebaking builder does);
//! 6. **Restore** — a privileged process re-creates the task: mappings at
//!    their dumped addresses, page contents, descriptors (listeners
//!    re-bound), registers, then resumes it.
//!
//! Restore honours the `CAP_CHECKPOINT_RESTORE` capability model the
//! paper highlights, and [`cache::ImageCache`] implements the §7
//! future-work in-memory restore optimisation.
//!
//! ## Example
//!
//! ```
//! use prebake_criu::{criu_dump, criu_restore};
//! use prebake_sim::kernel::{Kernel, INIT_PID};
//! use prebake_sim::mem::{Prot, VmaKind};
//!
//! let mut k = Kernel::new(11);
//! let worker = k.sys_clone(INIT_PID).unwrap();
//! let addr = k.sys_mmap(worker, 1 << 16, Prot::RW, VmaKind::RuntimeHeap).unwrap();
//! k.mem_write(worker, addr, b"warm state worth keeping").unwrap();
//!
//! criu_dump(&mut k, INIT_PID, worker, "/snapshots/fn").unwrap();
//! let restored = criu_restore(&mut k, INIT_PID, "/snapshots/fn").unwrap();
//! let bytes = k.mem_read(restored.pid, addr, 24).unwrap();
//! assert_eq!(&bytes, b"warm state worth keeping");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod check;
pub mod cli;
pub mod costs;
pub mod dump;
pub mod image;
pub mod restore;

pub use cache::ImageCache;
pub use check::{check, CheckReport};
pub use cli::{criu_dump, criu_restore, CliOutcome, CriuCli};
pub use costs::CriuCosts;
pub use dump::{
    collect_images, dump, pre_dump, read_images, read_images_lazy, repack, DumpOptions, DumpStats,
    RepackOptions, RepackStats,
};
pub use image::{
    page_content_hash, ExtentsImage, ImageError, ImageSet, PageExtent, PageStoreImage, PagesImage,
    WsImage,
};
pub use restore::{restore, restore_set, RestoreMode, RestoreOptions, RestorePid, RestoreStats};
