//! The dump pipeline: freeze → parasite → pagemap walk → page transfer →
//! image write → cure.
//!
//! Mirrors the CRIU procedure the paper describes in §3.2: seize and
//! freeze every thread with ptrace, inject the parasite blob into the
//! target's address space, walk `/proc/<pid>/pagemap` to find resident
//! pages, stream their contents through a pipe to the dumper, write the
//! image files, then cure (remove the parasite) and detach.

use prebake_sim::error::{Errno, SysResult};
use prebake_sim::kernel::Kernel;
use prebake_sim::mem::{VmaKind, PAGE_SIZE};
use prebake_sim::proc::Pid;
use prebake_sim::time::SimDuration;

use crate::costs::CriuCosts;
use crate::image::{
    CoreImage, ExtentsImage, FilesImage, ImageSet, MmImage, PageStoreImage, PagesImage, ThreadImage,
};

/// Options for a dump.
#[derive(Debug, Clone)]
pub struct DumpOptions {
    /// Process to checkpoint.
    pub target: Pid,
    /// Guest directory to write image files into.
    pub images_dir: String,
    /// Keep the target running afterwards (`criu dump --leave-running`).
    /// The prebaking builder kills the baked process instead.
    pub leave_running: bool,
    /// Incremental dump (`criu dump --track-mem --prev-images-dir`):
    /// pages clean since the last [`pre_dump`] are recorded as parent
    /// references instead of payload, shrinking the final image and the
    /// freeze window.
    pub parent: Option<String>,
    /// Cost table.
    pub costs: CriuCosts,
}

impl DumpOptions {
    /// Paper-calibrated options for a full (non-incremental) dump.
    pub fn new(target: Pid, images_dir: impl Into<String>) -> DumpOptions {
        DumpOptions {
            target,
            images_dir: images_dir.into(),
            leave_running: false,
            parent: None,
            costs: CriuCosts::paper_calibrated(),
        }
    }
}

/// Statistics of a completed dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpStats {
    /// Mappings dumped.
    pub vmas: usize,
    /// Resident pages visited.
    pub pages_total: usize,
    /// Pages stored in `pages.img` (non-zero, not deferred).
    pub pages_stored: usize,
    /// Zero pages deduplicated away.
    pub zero_pages: usize,
    /// Pages deferred to the parent snapshot (incremental dump).
    pub parent_pages: usize,
    /// Distinct page contents among the stored pages (the page-store
    /// frame count). Equals `pages_stored` when no dedup view was built.
    pub pages_unique: usize,
    /// Stored pages whose content another stored page already carries
    /// (`pages_stored - pages_unique`).
    pub pages_duplicate: usize,
    /// Total bytes across image files.
    pub image_bytes: u64,
    /// Virtual time the dump took.
    pub elapsed: SimDuration,
    /// Virtual time the target spent frozen (the downtime an incremental
    /// dump minimises; zero for [`pre_dump`]).
    pub frozen_for: SimDuration,
}

/// Builds the in-memory [`ImageSet`] of a (frozen) process without writing
/// it to the filesystem. Shared by [`dump`] and the in-memory cache
/// ablation.
///
/// # Errors
///
/// Propagates kernel/ptrace errors.
pub fn collect_images(
    kernel: &mut Kernel,
    tracer: Pid,
    target: Pid,
    costs: &CriuCosts,
) -> SysResult<ImageSet> {
    collect_images_inner(kernel, tracer, target, costs, false)
}

fn collect_images_inner(
    kernel: &mut Kernel,
    tracer: Pid,
    target: Pid,
    costs: &CriuCosts,
    incremental: bool,
) -> SysResult<ImageSet> {
    let span = kernel.span_begin("criu_dump_collect", target);
    // Parasite injection: a scratch mapping plus the blob poke.
    let inject = kernel.span_begin("parasite_inject", target);
    kernel.charge(costs.parasite_inject);
    let parasite = kernel.remote_mmap(tracer, target, 2 * PAGE_SIZE as u64, VmaKind::Parasite)?;
    let blob: Vec<u8> = (0..512u32).map(|i| (i % 251 + 1) as u8).collect();
    kernel.ptrace_poke(tracer, target, parasite, &blob)?;
    kernel.span_end(inject);

    kernel.charge(costs.dump_prepare);

    // Task identity.
    let (comm, cmdline, cap_bits, threads, fds, vmas) = {
        let proc = kernel.process(target)?;
        let threads: Vec<ThreadImage> = proc
            .threads
            .iter()
            .map(|t| ThreadImage {
                tid: t.tid,
                regs: t.regs,
            })
            .collect();
        let fds: Vec<_> = proc.fds.iter().map(|(fd, e)| (fd, e.clone())).collect();
        let vmas: Vec<_> = proc
            .mem
            .vmas()
            .filter(|v| v.kind != VmaKind::Parasite)
            .cloned()
            .collect();
        (
            proc.comm.clone(),
            proc.cmdline.clone(),
            raw_caps(proc.caps),
            threads,
            fds,
            vmas,
        )
    };

    // Page transfer: pagemap walk, then parasite reads each resident page
    // and streams it through the pipe. Incremental dumps skip pages whose
    // soft-dirty bit is clear — their payload already sits in the parent
    // snapshot from the pre-dump.
    let walk = kernel.span_begin("pagemap_walk", target);
    let mut pages = PagesImage::default();
    for vma in &vmas {
        let present = kernel.proc_pagemap(target, vma.start)?;
        let dirty: std::collections::BTreeSet<u64> = if incremental {
            kernel
                .proc_pagemap_soft_dirty(target, vma.start)?
                .into_iter()
                .collect()
        } else {
            Default::default()
        };
        for page_index in present {
            if incremental && !dirty.contains(&page_index) {
                pages.push_parent_ref(page_index);
                continue;
            }
            let page = kernel.ptrace_peek_page(tracer, target, page_index)?;
            kernel.pipe_xfer(PAGE_SIZE as u64);
            pages.push(page_index, &page);
        }
    }
    kernel.span_attr(walk, "pages", pages.entries.len().to_string());
    kernel.span_end(walk);

    // Cure: drop the parasite mapping.
    kernel.remote_munmap(tracer, target, parasite)?;

    // Dedup view: hash every stored page and collapse identical contents
    // to one frame. Incremental dumps defer payload to a parent and so
    // carry no store (`from_pages` returns `None` for them).
    let hash = kernel.span_begin("pagestore_hash", target);
    let pagestore = PageStoreImage::from_pages(&pages);
    kernel.span_end(hash);

    // Coalesce the pagemap into extent runs so restore can move whole
    // runs per scatter-gather op instead of dispatching per page.
    let coalesce = kernel.span_begin("extent_coalesce", target);
    let extents = ExtentsImage::from_pages(&pages);
    kernel.span_attr(coalesce, "runs", extents.len().to_string());
    kernel.span_end(coalesce);
    kernel.span_end(span);

    Ok(ImageSet {
        core: CoreImage {
            pid: target,
            comm,
            cmdline,
            cap_bits,
            threads,
        },
        mm: MmImage { vmas },
        pages,
        files: FilesImage { fds },
        ws: None,
        pagestore,
        extents: Some(extents),
        fallback: None,
    })
}

fn raw_caps(caps: prebake_sim::proc::CapSet) -> u8 {
    use prebake_sim::proc::Cap;
    (caps.has(Cap::SysAdmin) as u8)
        | ((caps.has(Cap::SysPtrace) as u8) << 1)
        | ((caps.has(Cap::CheckpointRestore) as u8) << 2)
}

/// Checkpoints `opts.target` into `opts.images_dir` (the `criu dump`
/// entry point). The tracer must hold a checkpoint-capable capability or
/// be the target's parent.
///
/// # Errors
///
/// [`Errno::Eperm`] without permission, [`Errno::Esrch`] for a missing
/// target, plus filesystem errors writing the images.
pub fn dump(kernel: &mut Kernel, tracer: Pid, opts: &DumpOptions) -> SysResult<DumpStats> {
    let t0 = kernel.now();
    let target = opts.target;

    let span = kernel.span_begin("criu_dump", target);
    kernel.ptrace_seize(tracer, target)?;
    kernel.ptrace_freeze(tracer, target)?;
    let freeze_start = kernel.now();

    let set = collect_images_inner(kernel, tracer, target, &opts.costs, opts.parent.is_some())?;
    let frozen_for = kernel.now() - freeze_start;

    // Write the image files (the target could already run again here,
    // but our single-threaded driver finishes the writes first).
    let write = kernel.span_begin("image_write", target);
    kernel.fs_create_dir_all(&opts.images_dir)?;
    let dir = &opts.images_dir;
    let mut files = vec![
        (ImageSet::CORE_NAME, set.core.encode()),
        (ImageSet::MM_NAME, set.mm.encode()),
        (ImageSet::PAGEMAP_NAME, set.pages.encode_pagemap()),
        (ImageSet::PAGES_NAME, set.pages.encode_pages()),
        (ImageSet::FILES_NAME, set.files.encode()),
    ];
    if let Some(store) = &set.pagestore {
        files.push((ImageSet::PAGESTORE_NAME, store.encode()));
    }
    if let Some(ext) = &set.extents {
        files.push((ImageSet::EXTENTS_NAME, ext.encode()));
    }
    if let Some(parent) = &opts.parent {
        files.push((ImageSet::PARENT_LINK, parent.as_bytes().to_vec()));
    }
    let mut image_bytes = 0u64;
    for (name, data) in files {
        image_bytes += data.len() as u64;
        kernel.fs_write_file(&prebake_sim::fs::join_path(dir, name), data)?;
    }
    kernel.span_attr(write, "bytes", image_bytes.to_string());
    kernel.span_end(write);

    // Resume-or-kill, then detach.
    if opts.leave_running {
        kernel.ptrace_resume(tracer, target)?;
        kernel.ptrace_detach(tracer, target)?;
    } else {
        kernel.ptrace_detach(tracer, target)?;
        kernel.sys_exit(target, 0)?;
        kernel.reap(target)?;
    }
    kernel.span_end(span);

    let stored = set.pages.stored_pages();
    let unique = set.pagestore.as_ref().map_or(stored, |s| s.unique_pages());
    Ok(DumpStats {
        vmas: set.mm.vmas.len(),
        pages_total: set.pages.entries.len(),
        pages_stored: stored,
        zero_pages: set.pages.zero_pages(),
        parent_pages: set.pages.parent_pages(),
        pages_unique: unique,
        pages_duplicate: stored - unique,
        image_bytes,
        elapsed: kernel.now() - t0,
        frozen_for,
    })
}

/// Pre-dump (`criu pre-dump --track-mem`): copies the (running) target's
/// resident pages into `images_dir` and clears its soft-dirty bits,
/// without ever freezing it — the task keeps serving while its memory is
/// staged. A following incremental [`dump`] with
/// [`DumpOptions::parent`] pointing here only freezes for the dirty
/// residue.
///
/// # Errors
///
/// Propagates kernel/ptrace/filesystem errors.
pub fn pre_dump(kernel: &mut Kernel, tracer: Pid, opts: &DumpOptions) -> SysResult<DumpStats> {
    let t0 = kernel.now();
    let target = opts.target;

    let span = kernel.span_begin("criu_predump", target);
    kernel.ptrace_seize(tracer, target)?;
    // No freeze: pages are read via the live-task path (the real CRIU
    // uses process_vm_readv + soft-dirty to tolerate concurrent writes).
    kernel.charge(opts.costs.dump_prepare);
    let vmas: Vec<_> = {
        let proc = kernel.process(target)?;
        proc.mem
            .vmas()
            .filter(|v| v.kind != VmaKind::Parasite)
            .cloned()
            .collect()
    };
    let mut pages = PagesImage::default();
    for vma in &vmas {
        let present = kernel.proc_pagemap(target, vma.start)?;
        for page_index in present {
            let page = kernel.ptrace_peek_page(tracer, target, page_index)?;
            kernel.pipe_xfer(PAGE_SIZE as u64);
            pages.push(page_index, &page);
        }
    }
    kernel.proc_clear_soft_dirty(target)?;
    kernel.ptrace_detach(tracer, target)?;

    kernel.fs_create_dir_all(&opts.images_dir)?;
    let dir = &opts.images_dir;
    let files = [
        (ImageSet::PAGEMAP_NAME, pages.encode_pagemap()),
        (ImageSet::PAGES_NAME, pages.encode_pages()),
    ];
    let mut image_bytes = 0u64;
    for (name, data) in files {
        image_bytes += data.len() as u64;
        kernel.fs_write_file(&prebake_sim::fs::join_path(dir, name), data)?;
    }
    kernel.span_end(span);

    Ok(DumpStats {
        vmas: vmas.len(),
        pages_total: pages.entries.len(),
        pages_stored: pages.stored_pages(),
        zero_pages: pages.zero_pages(),
        parent_pages: 0,
        pages_unique: pages.stored_pages(),
        pages_duplicate: 0,
        image_bytes,
        elapsed: kernel.now() - t0,
        frozen_for: SimDuration::ZERO,
    })
}

/// Options for an offline [`repack`] pass over an existing image
/// directory.
#[derive(Debug, Clone)]
pub struct RepackOptions {
    /// Guest directory holding the images to rewrite in place.
    pub images_dir: String,
    /// Rewrite `pages.img` + the extent table so pages appear in the
    /// `ws.img` fault order — lazy/prefetch restores then stream the
    /// payload sequentially instead of seeking.
    pub fault_order: bool,
    /// Drop stored pages outside the recorded working set into the
    /// fallback layer (`--compact`): the hot image shrinks to what a
    /// cold start actually touches; faults past it fall through to the
    /// fallback at a charged penalty.
    pub compact: bool,
    /// Cost table.
    pub costs: CriuCosts,
}

impl RepackOptions {
    /// Fault-order repack of `images_dir`, no compaction.
    pub fn new(images_dir: impl Into<String>) -> RepackOptions {
        RepackOptions {
            images_dir: images_dir.into(),
            fault_order: true,
            compact: false,
            costs: CriuCosts::paper_calibrated(),
        }
    }
}

/// Statistics of a completed [`repack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepackStats {
    /// Stored pages before the pass (hot + fallback afterwards).
    pub pages_total: usize,
    /// Stored pages kept in the hot image.
    pub pages_hot: usize,
    /// Stored pages moved to the fallback layer (zero unless
    /// [`RepackOptions::compact`]).
    pub pages_compacted: usize,
    /// Critical-path image bytes before the pass.
    pub hot_bytes_before: u64,
    /// Critical-path image bytes after (smaller when compacting).
    pub hot_bytes_after: u64,
    /// Virtual time the pass took.
    pub elapsed: SimDuration,
}

/// Rewrites an existing image directory offline: fault-order layout
/// and/or hot-image compaction, driven by the recorded `ws.img`. Runs on
/// the builder machine after a record pass — never on a cold start's
/// critical path. The extent table and the page store are re-derived
/// from the rewritten pagemap; guest-visible memory is unchanged.
///
/// # Errors
///
/// [`Errno::Enoent`] when `images_dir` lacks a `ws.img` (nothing to
/// order/compact by), [`Errno::Einval`] for parent-linked (incremental)
/// images or corrupt files, plus filesystem errors.
pub fn repack(kernel: &mut Kernel, opts: &RepackOptions) -> SysResult<RepackStats> {
    let t0 = kernel.now();
    let dir = &opts.images_dir;
    if kernel.fs_exists(&prebake_sim::fs::join_path(dir, ImageSet::PARENT_LINK)) {
        // An incremental image splits payload across directories; repack
        // only handles self-contained snapshots.
        return Err(Errno::Einval);
    }
    if !kernel.fs_exists(&prebake_sim::fs::join_path(dir, ImageSet::WS_NAME)) {
        return Err(Errno::Enoent);
    }
    let set = read_images(kernel, dir)?;
    let ws = set.ws.as_ref().expect("ws.img existence checked above");

    let span = kernel.span_begin("criu_repack", set.core.pid);
    // Re-merge a previously compacted set so the pass is idempotent:
    // repacking twice (or compacting after a plain reorder) always works
    // from the full page population, in page-index order.
    let mut full = match &set.fallback {
        Some(fallback) => {
            let mut merged = set.pages.clone();
            merged.entries.extend(fallback.entries.iter().copied());
            merged.payload.extend_from_slice(&fallback.payload);
            merged.reordered(&{
                let mut idx: Vec<u64> = merged.entries.iter().map(|e| e.page_index).collect();
                idx.sort_unstable();
                idx
            })
        }
        None => set.pages.clone(),
    };
    if opts.fault_order {
        full = full.reordered(&ws.pages);
    }
    let (hot, fallback) = if opts.compact {
        let hot_set: std::collections::BTreeSet<u64> = ws.pages.iter().copied().collect();
        full.split_hot(&hot_set).ok_or(Errno::Einval)?
    } else {
        (full, PagesImage::default())
    };
    let pagestore = PageStoreImage::from_pages(&hot);
    let extents = ExtentsImage::from_pages(&hot);
    kernel.span_attr(span, "hot_pages", hot.stored_pages().to_string());
    kernel.span_attr(span, "fallback_pages", fallback.stored_pages().to_string());

    let mut files = vec![
        (ImageSet::PAGEMAP_NAME, hot.encode_pagemap()),
        (ImageSet::PAGES_NAME, hot.encode_pages()),
        (ImageSet::EXTENTS_NAME, extents.encode()),
    ];
    if let Some(store) = &pagestore {
        files.push((ImageSet::PAGESTORE_NAME, store.encode()));
    }
    if opts.compact {
        files.push((ImageSet::FALLBACK_PAGEMAP_NAME, fallback.encode_pagemap()));
        files.push((ImageSet::FALLBACK_PAGES_NAME, fallback.encode_pages()));
    } else {
        for name in [
            ImageSet::FALLBACK_PAGEMAP_NAME,
            ImageSet::FALLBACK_PAGES_NAME,
        ] {
            let path = prebake_sim::fs::join_path(dir, name);
            if kernel.fs_exists(&path) {
                kernel.fs_remove_file(&path)?;
            }
        }
    }
    for (name, data) in files {
        kernel.fs_write_file(&prebake_sim::fs::join_path(dir, name), data)?;
    }
    kernel.span_end(span);

    let after = ImageSet {
        pages: hot.clone(),
        pagestore,
        extents: Some(extents),
        fallback: opts.compact.then(|| fallback.clone()),
        ..set.clone()
    };
    Ok(RepackStats {
        pages_total: hot.stored_pages() + fallback.stored_pages(),
        pages_hot: hot.stored_pages(),
        pages_compacted: fallback.stored_pages(),
        hot_bytes_before: set.hot_bytes(),
        hot_bytes_after: after.hot_bytes(),
        elapsed: kernel.now() - t0,
    })
}

/// Reads an image set back from a guest directory (charged at fs rates —
/// warm if the images are page-cache-resident, as they are when the
/// snapshot ships inside the pre-pulled container image).
///
/// # Errors
///
/// [`Errno::Enoent`] for missing files, [`Errno::Einval`] for corrupt
/// images.
pub fn read_images(kernel: &mut Kernel, images_dir: &str) -> SysResult<ImageSet> {
    read_images_with(kernel, images_dir, false)
}

/// Reads an image set for a lazy-mode restore. Metadata images (`core`,
/// `mm`, `pagemap`, `files` and `ws` when present) are charged as normal
/// reads, but the page payload is *mapped*, not read — CRIU's
/// `--lazy-pages` serves `pages.img` over userfaultfd, so its bytes
/// travel only when faulted (or prefetched). Only `mmap` bookkeeping is
/// charged for the payload here; the per-page transfer is charged at
/// fault or prefetch time by the kernel.
///
/// # Errors
///
/// Same as [`read_images`].
pub fn read_images_lazy(kernel: &mut Kernel, images_dir: &str) -> SysResult<ImageSet> {
    read_images_with(kernel, images_dir, true)
}

fn read_images_with(kernel: &mut Kernel, images_dir: &str, lazy: bool) -> SysResult<ImageSet> {
    let read = |kernel: &mut Kernel, name: &str| -> SysResult<bytes::Bytes> {
        kernel.fs_read_file(&prebake_sim::fs::join_path(images_dir, name))
    };
    let read_payload = |kernel: &mut Kernel, path: &str| -> SysResult<bytes::Bytes> {
        if lazy {
            let cost = kernel.costs().mmap_base;
            kernel.charge(cost);
            let path = path.to_owned();
            kernel.uncharged(move |k| k.fs_read_file(&path))
        } else {
            kernel.fs_read_file(path)
        }
    };
    let core_bytes = read(kernel, ImageSet::CORE_NAME)?;
    let mm_bytes = read(kernel, ImageSet::MM_NAME)?;
    let pagemap_bytes = read(kernel, ImageSet::PAGEMAP_NAME)?;
    let pages_bytes = read_payload(
        kernel,
        &prebake_sim::fs::join_path(images_dir, ImageSet::PAGES_NAME),
    )?;
    let files_bytes = read(kernel, ImageSet::FILES_NAME)?;
    let ws_path = prebake_sim::fs::join_path(images_dir, ImageSet::WS_NAME);
    let ws = if kernel.fs_exists(&ws_path) {
        let ws_bytes = kernel.fs_read_file(&ws_path)?;
        Some(crate::image::WsImage::parse(&ws_bytes).map_err(|_| Errno::Einval)?)
    } else {
        None
    };
    let mut pages = PagesImage::parse(&pagemap_bytes, &pages_bytes).map_err(|_| Errno::Einval)?;

    // The page store on disk is metadata only — frame hashes plus the
    // reference table — so it reads at ordinary (small-file) cost in
    // every mode; the frame payload is rebuilt from the pages image just
    // loaded, never from a second on-disk copy.
    let pagestore_path = prebake_sim::fs::join_path(images_dir, ImageSet::PAGESTORE_NAME);
    let pagestore = if kernel.fs_exists(&pagestore_path) {
        let store_bytes = kernel.fs_read_file(&pagestore_path)?;
        Some(PageStoreImage::parse(&store_bytes, &pages).map_err(|_| Errno::Einval)?)
    } else {
        None
    };

    // Extent table: optional, so pre-extent snapshots keep restoring
    // (the vectored path recoalesces from the pagemap via `extent_view`).
    let extents_path = prebake_sim::fs::join_path(images_dir, ImageSet::EXTENTS_NAME);
    let mut extents = if kernel.fs_exists(&extents_path) {
        let ext_bytes = kernel.fs_read_file(&extents_path)?;
        Some(ExtentsImage::parse(&ext_bytes, &pages).map_err(|_| Errno::Einval)?)
    } else {
        None
    };

    // Compaction fallback layer: its payload is *never* read eagerly —
    // fallback pages are served by demand paging in every restore mode,
    // so only the mmap bookkeeping is charged here and the bytes travel
    // at fault time (the same model as a lazy pages.img).
    let fb_pagemap_path = prebake_sim::fs::join_path(images_dir, ImageSet::FALLBACK_PAGEMAP_NAME);
    let fb_pages_path = prebake_sim::fs::join_path(images_dir, ImageSet::FALLBACK_PAGES_NAME);
    let fallback = if kernel.fs_exists(&fb_pagemap_path) && kernel.fs_exists(&fb_pages_path) {
        let fb_pagemap = kernel.fs_read_file(&fb_pagemap_path)?;
        let cost = kernel.costs().mmap_base;
        kernel.charge(cost);
        let fb_payload = kernel.uncharged(move |k| k.fs_read_file(&fb_pages_path))?;
        Some(PagesImage::parse(&fb_pagemap, &fb_payload).map_err(|_| Errno::Einval)?)
    } else {
        None
    };

    // Incremental image: follow the parent link and resolve the deferred
    // pages so the returned set is self-contained. Parent payload is part
    // of the same mapped-image model in lazy mode.
    if pages.parent_pages() > 0 {
        let link_path = prebake_sim::fs::join_path(images_dir, ImageSet::PARENT_LINK);
        let link = kernel.fs_read_file(&link_path)?;
        let parent_dir = std::str::from_utf8(&link)
            .map_err(|_| Errno::Einval)?
            .to_owned();
        let parent_pagemap = kernel.fs_read_file(&prebake_sim::fs::join_path(
            &parent_dir,
            ImageSet::PAGEMAP_NAME,
        ))?;
        let parent_pages_bytes = read_payload(
            kernel,
            &prebake_sim::fs::join_path(&parent_dir, ImageSet::PAGES_NAME),
        )?;
        let parent =
            PagesImage::parse(&parent_pagemap, &parent_pages_bytes).map_err(|_| Errno::Einval)?;
        pages = pages.resolve_parent(&parent).map_err(|_| Errno::Einval)?;
        // The dumped runs coalesced the *incremental* pagemap; resolution
        // turned parent refs into stored pages, so recoalesce instead.
        extents = None;
    }

    Ok(ImageSet {
        core: CoreImage::parse(&core_bytes).map_err(|_| Errno::Einval)?,
        mm: MmImage::parse(&mm_bytes).map_err(|_| Errno::Einval)?,
        pages,
        files: FilesImage::parse(&files_bytes).map_err(|_| Errno::Einval)?,
        ws,
        pagestore,
        extents,
        fallback,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::Prot;
    use prebake_sim::proc::CapSet;

    fn setup() -> (Kernel, Pid, Pid) {
        let mut k = Kernel::free(3);
        let tracer = k.sys_clone(INIT_PID).unwrap(); // inherits full caps
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 8 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        // two data pages, one explicit zero page
        k.mem_write(target, addr, &[0xAA; 100]).unwrap();
        k.mem_write(target, addr.add(2 * PAGE_SIZE as u64), &[0u8; 50])
            .unwrap();
        k.mem_write(target, addr.add(4 * PAGE_SIZE as u64), &[0xBB; 4096])
            .unwrap();
        k.sys_listen(target, 8080).unwrap();
        (k, tracer, target)
    }

    #[test]
    fn dump_produces_images_and_kills_target() {
        let (mut k, tracer, target) = setup();
        let stats = dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        assert_eq!(stats.pages_total, 3);
        assert_eq!(stats.pages_stored, 2, "zero page deduplicated");
        assert_eq!(stats.zero_pages, 1);
        assert!(stats.image_bytes > 2 * PAGE_SIZE as u64);
        assert!(k.process(target).is_err(), "target reaped");
        assert_eq!(k.port_owner(8080), None, "port released with the target");
        for name in [
            ImageSet::CORE_NAME,
            ImageSet::MM_NAME,
            ImageSet::PAGEMAP_NAME,
            ImageSet::PAGES_NAME,
            ImageSet::FILES_NAME,
        ] {
            assert!(k.fs_exists(&format!("/img/{name}")), "missing {name}");
        }
    }

    #[test]
    fn leave_running_keeps_target() {
        let (mut k, tracer, target) = setup();
        let mut opts = DumpOptions::new(target, "/img");
        opts.leave_running = true;
        dump(&mut k, tracer, &opts).unwrap();
        let proc = k.process(target).unwrap();
        assert_eq!(proc.state, prebake_sim::proc::ProcState::Running);
        assert!(proc.traced_by.is_none());
        assert_eq!(k.port_owner(8080), Some(target));
        // parasite cured
        assert!(proc.mem.vmas().all(|v| v.kind != VmaKind::Parasite));
    }

    #[test]
    fn dump_requires_permission() {
        let (mut k, tracer, target) = setup();
        k.process_mut(tracer).unwrap().caps = CapSet::empty();
        assert_eq!(
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap_err(),
            Errno::Eperm
        );
    }

    #[test]
    fn images_roundtrip_through_fs() {
        let (mut k, tracer, target) = setup();
        let expected_fds: Vec<_> = k
            .process(target)
            .unwrap()
            .fds
            .iter()
            .map(|(fd, e)| (fd, e.clone()))
            .collect();
        let mut opts = DumpOptions::new(target, "/img");
        opts.leave_running = true;
        dump(&mut k, tracer, &opts).unwrap();
        let set = read_images(&mut k, "/img").unwrap();
        assert_eq!(set.core.pid, target);
        assert_eq!(set.files.fds, expected_fds);
        assert_eq!(set.pages.stored_pages(), 2);
        // dumped page content is faithful
        let first_payload = set
            .pages
            .iter_pages()
            .find_map(|(_, p)| match p {
                crate::image::PageSource::Bytes(b) => Some(b),
                _ => None,
            })
            .unwrap();
        assert_eq!(&first_payload[..100], &[0xAA; 100]);
    }

    #[test]
    fn dump_excludes_parasite_vma() {
        let (mut k, tracer, target) = setup();
        let vmas_before = k.process(target).unwrap().mem.vma_count();
        let mut opts = DumpOptions::new(target, "/img");
        opts.leave_running = true;
        dump(&mut k, tracer, &opts).unwrap();
        let set = read_images(&mut k, "/img").unwrap();
        assert_eq!(set.mm.vmas.len(), vmas_before);
        assert!(set.mm.vmas.iter().all(|v| v.kind != VmaKind::Parasite));
    }

    #[test]
    fn missing_images_dir_is_enoent() {
        let mut k = Kernel::free(9);
        assert_eq!(read_images(&mut k, "/nope").unwrap_err(), Errno::Enoent);
    }

    #[test]
    fn dump_emits_dedup_page_store() {
        let mut k = Kernel::free(4);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 8 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        // Three identical full pages and one distinct page.
        for i in [0u64, 1, 2] {
            k.mem_write(target, addr.add(i * PAGE_SIZE as u64), &[0xCC; PAGE_SIZE])
                .unwrap();
        }
        k.mem_write(target, addr.add(3 * PAGE_SIZE as u64), &[0xDD; PAGE_SIZE])
            .unwrap();

        let stats = dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        assert_eq!(stats.pages_stored, 4);
        assert_eq!(stats.pages_unique, 2, "0xCC and 0xDD frames");
        assert_eq!(stats.pages_duplicate, 2);
        assert!(k.fs_exists(&format!("/img/{}", ImageSet::PAGESTORE_NAME)));

        let set = read_images(&mut k, "/img").unwrap();
        let store = set.pagestore.expect("page store read back");
        assert_eq!(store.unique_pages(), 2);
        assert_eq!(store.total_refs(), 4);
        store.verify_against(&set.pages).unwrap();
    }

    #[test]
    fn incremental_dump_skips_page_store() {
        let (mut k, tracer, target) = setup();
        let mut pre = DumpOptions::new(target, "/pre");
        pre.leave_running = true;
        pre_dump(&mut k, tracer, &pre).unwrap();
        let mut opts = DumpOptions::new(target, "/img");
        opts.parent = Some("/pre".into());
        dump(&mut k, tracer, &opts).unwrap();
        assert!(
            !k.fs_exists(&format!("/img/{}", ImageSet::PAGESTORE_NAME)),
            "incremental dumps carry no dedup view"
        );
        // read_images resolves the parent; the set simply has no store.
        let set = read_images(&mut k, "/img").unwrap();
        assert!(set.pagestore.is_none());
    }
}
