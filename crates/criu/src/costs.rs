//! Checkpoint/restore cost table.
//!
//! Calibration (DESIGN.md §2): Table 1's PB-Warmup column regresses to a
//! restore cost of ≈45 ms base plus ≈0.3 ms per MiB of snapshot. The
//! per-MiB share is dominated by reading the (page-cache-resident) image
//! files — priced by the kernel's warm-read rate — plus a small per-page
//! install cost; the base covers the restorer's own start-up, image
//! parsing and resource re-creation.

use prebake_sim::time::SimDuration;

/// Cost table for the CRIU engine.
#[derive(Debug, Clone)]
pub struct CriuCosts {
    /// Injecting the parasite blob into the target (dump side).
    pub parasite_inject: SimDuration,
    /// Fixed dump preparation (collecting task state beyond what kernel
    /// calls already charge).
    pub dump_prepare: SimDuration,
    /// Fixed restore cost: restorer start-up, inventory parsing, namespace
    /// preparation.
    pub restore_base: SimDuration,
    /// Re-creating one VMA at restore.
    pub restore_per_vma: SimDuration,
    /// Installing one non-zero page at restore (map + copy from the image
    /// mapping; the image *read* is charged separately at fs rates).
    pub restore_per_page: SimDuration,
    /// Re-opening one file descriptor at restore.
    pub restore_per_fd: SimDuration,
    /// Registering the restored address space with the fault handler in a
    /// lazy-mode restore (`userfaultfd` open + `UFFDIO_REGISTER` ioctls,
    /// amortised over the whole space).
    pub lazy_register: SimDuration,
    /// Mapping one shared frame copy-on-write at restore: a PTE pointing
    /// at an existing physical page, write-protected. No payload copy —
    /// that is deferred to the first write (priced by the kernel's
    /// `cow_break`) — so this sits well below `restore_per_page`.
    pub restore_per_cow_page: SimDuration,
    /// The syscall-equivalent dispatch a *page-granular* restore pays for
    /// every single page it reinstates (one `pread`+`mmap`-slot update
    /// per 4 KiB page — the per-page overhead REAP and Tan et al. single
    /// out). The vectored extent path replaces this with one
    /// `extent_setup` charge per *run*, which is where its speed-up comes
    /// from; `restore_per_page` (the in-kernel install) is still paid by
    /// both paths.
    pub restore_page_op: SimDuration,
    /// Spawning (and later joining) one restorer worker thread in a
    /// sharded parallel restore: `clone(CLONE_VM)`, stack setup and the
    /// join-side futex wake. Paid once per shard on the critical path —
    /// overlapped page installation only wins while `shards ×
    /// shard_spawn` stays far below the serial install time it displaces,
    /// which is what caps useful shard counts on small snapshots.
    pub shard_spawn: SimDuration,
}

impl CriuCosts {
    /// The calibration used by every experiment in `EXPERIMENTS.md`.
    pub fn paper_calibrated() -> Self {
        CriuCosts {
            parasite_inject: SimDuration::from_micros(1200),
            dump_prepare: SimDuration::from_millis(2),
            restore_base: SimDuration::from_millis(44),
            restore_per_vma: SimDuration::from_micros(10),
            restore_per_page: SimDuration::from_nanos(150),
            restore_per_fd: SimDuration::from_micros(150),
            lazy_register: SimDuration::from_micros(300),
            restore_per_cow_page: SimDuration::from_nanos(40),
            restore_page_op: SimDuration::from_nanos(2500),
            shard_spawn: SimDuration::from_micros(15),
        }
    }

    /// A zero-cost table for state-only tests.
    pub fn free() -> Self {
        CriuCosts {
            parasite_inject: SimDuration::ZERO,
            dump_prepare: SimDuration::ZERO,
            restore_base: SimDuration::ZERO,
            restore_per_vma: SimDuration::ZERO,
            restore_per_page: SimDuration::ZERO,
            restore_per_fd: SimDuration::ZERO,
            lazy_register: SimDuration::ZERO,
            restore_per_cow_page: SimDuration::ZERO,
            restore_page_op: SimDuration::ZERO,
            shard_spawn: SimDuration::ZERO,
        }
    }
}

impl Default for CriuCosts {
    fn default() -> Self {
        CriuCosts::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_base_is_about_45ms() {
        let c = CriuCosts::paper_calibrated();
        let ms = c.restore_base.as_millis_f64();
        assert!((40.0..=50.0).contains(&ms), "restore base {ms}ms");
    }

    #[test]
    fn per_page_install_below_warm_read() {
        // The dominant per-MiB share must be the image read (0.3 ms/MiB
        // warm), not the install, to match Table 1's slope.
        let c = CriuCosts::paper_calibrated();
        let per_mib_install = c.restore_per_page.as_nanos() as f64 * 256.0 / 1e6;
        assert!(per_mib_install < 0.1, "install {per_mib_install} ms/MiB");
    }

    #[test]
    fn free_is_zero() {
        let c = CriuCosts::free();
        assert!(c.restore_base.is_zero());
        assert!(c.parasite_inject.is_zero());
        assert!(c.lazy_register.is_zero());
    }

    #[test]
    fn cow_mapping_cheaper_than_page_install() {
        // CoW restore only wins if pointing a PTE at a shared frame is
        // cheaper than installing a private copy of the page.
        let c = CriuCosts::paper_calibrated();
        assert!(c.restore_per_cow_page.as_nanos() < c.restore_per_page.as_nanos());
        assert!(c.restore_per_cow_page.as_nanos() > 0);
        assert!(CriuCosts::free().restore_per_cow_page.is_zero());
    }

    #[test]
    fn page_op_dwarfs_page_install() {
        // The per-page syscall dispatch is the overhead extents remove;
        // it must dominate the in-kernel install it wraps, or coalescing
        // runs would buy nothing (REAP's per-page-overhead observation).
        let c = CriuCosts::paper_calibrated();
        assert!(c.restore_page_op.as_nanos() > 10 * c.restore_per_page.as_nanos());
        assert!(CriuCosts::free().restore_page_op.is_zero());
    }

    #[test]
    fn shard_spawn_amortises_over_a_shard() {
        // Eight worker threads must cost a tiny fraction of the restore
        // base they shave time off — else parallel restore could never
        // pay for itself — yet one spawn must out-price a per-VMA
        // re-creation (spawning a thread is heavier than an mmap).
        let c = CriuCosts::paper_calibrated();
        assert!(c.shard_spawn.as_nanos() * 8 * 20 < c.restore_base.as_nanos());
        assert!(c.shard_spawn > c.restore_per_vma);
        assert!(CriuCosts::free().shard_spawn.is_zero());
    }

    #[test]
    fn lazy_register_far_below_restore_base() {
        // Lazy restore only pays off if registration is much cheaper than
        // the eager page reinstatement it displaces.
        let c = CriuCosts::paper_calibrated();
        assert!(c.lazy_register.as_nanos() * 10 < c.restore_base.as_nanos());
    }
}
