//! A `criu`-compatible command-line front-end.
//!
//! The paper's prototype (and its OpenFaaS templates) drive CRIU through
//! its CLI — `criu dump -t <pid> -D <dir> [--leave-running]` and
//! `criu restore -D <dir>`. This module parses exactly that surface so
//! platform templates can embed real-looking commands.

use std::fmt;

use prebake_sim::error::{Errno, SysResult};
use prebake_sim::kernel::Kernel;
use prebake_sim::proc::Pid;

use crate::costs::CriuCosts;
use crate::dump::{dump, repack, DumpOptions, DumpStats, RepackOptions, RepackStats};
use crate::restore::{restore, RestoreMode, RestoreOptions, RestorePid, RestoreStats};

/// Outcome of a CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliOutcome {
    /// A dump (or pre-dump) completed.
    Dumped(DumpStats),
    /// A restore completed.
    Restored(RestoreStats),
    /// An image check completed.
    Checked(crate::check::CheckReport),
    /// An offline image repack completed.
    Repacked(RepackStats),
}

/// A CLI usage error (bad flags), distinct from runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "usage error: {}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Errors from [`CriuCli::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The arguments did not parse.
    Usage(UsageError),
    /// The operation itself failed.
    Sys(Errno),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(u) => u.fmt(f),
            CliError::Sys(e) => write!(f, "criu failed: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<Errno> for CliError {
    fn from(e: Errno) -> Self {
        CliError::Sys(e)
    }
}

/// The CLI front-end: holds the identity the commands run as.
#[derive(Debug, Clone)]
pub struct CriuCli {
    caller: Pid,
    costs: CriuCosts,
}

impl CriuCli {
    /// Creates a CLI running as `caller` with paper-calibrated costs.
    pub fn new(caller: Pid) -> CriuCli {
        CriuCli {
            caller,
            costs: CriuCosts::paper_calibrated(),
        }
    }

    /// Overrides the cost table.
    pub fn with_costs(mut self, costs: CriuCosts) -> CriuCli {
        self.costs = costs;
        self
    }

    /// Runs one `criu ...` command line.
    ///
    /// Supported:
    /// - `dump -t <pid> -D <dir> [--leave-running]`
    /// - `restore -D <dir> [--same-pid] [--page-granular]
    ///   [--fault-around <pages>] [--threads <n>]` plus a memory-mode
    ///   flag (`--lazy-pages`, `--ws-record`, `--ws-prefetch`, `--cow`,
    ///   `--cow-prefetch`)
    /// - `repack -D <dir> [--no-fault-order] [--compact]` — rewrite the
    ///   image into recorded fault order and/or compact it to the hot
    ///   working set with a fallback layer
    ///
    /// (A leading literal `criu` argv\[0\] is accepted and skipped.)
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for malformed flags, [`CliError::Sys`] for
    /// operational failures.
    pub fn run(&self, kernel: &mut Kernel, argv: &[&str]) -> Result<CliOutcome, CliError> {
        let args: Vec<&str> = if argv.first() == Some(&"criu") {
            argv[1..].to_vec()
        } else {
            argv.to_vec()
        };
        let usage = |msg: &str| CliError::Usage(UsageError(msg.to_owned()));
        match args.first() {
            Some(&verb) if verb == "dump" || verb == "pre-dump" => {
                let mut target: Option<Pid> = None;
                let mut dir: Option<String> = None;
                let mut leave_running = verb == "pre-dump";
                let mut parent: Option<String> = None;
                let mut track_mem = false;
                let mut i = 1;
                while i < args.len() {
                    match args[i] {
                        "-t" | "--tree" => {
                            let v = args.get(i + 1).ok_or_else(|| usage("-t needs a pid"))?;
                            target = Some(Pid(v
                                .parse()
                                .map_err(|_| usage("-t pid must be a number"))?));
                            i += 2;
                        }
                        "-D" | "--images-dir" => {
                            dir = Some(
                                (*args.get(i + 1).ok_or_else(|| usage("-D needs a dir"))?)
                                    .to_owned(),
                            );
                            i += 2;
                        }
                        "--leave-running" | "-R" => {
                            leave_running = true;
                            i += 1;
                        }
                        "--track-mem" => {
                            track_mem = true;
                            i += 1;
                        }
                        "--prev-images-dir" => {
                            parent = Some(
                                (*args
                                    .get(i + 1)
                                    .ok_or_else(|| usage("--prev-images-dir needs a dir"))?)
                                .to_owned(),
                            );
                            i += 2;
                        }
                        other => return Err(usage(&format!("unknown {verb} flag {other}"))),
                    }
                }
                let target = target.ok_or_else(|| usage("dump requires -t <pid>"))?;
                let dir = dir.ok_or_else(|| usage("dump requires -D <dir>"))?;
                if parent.is_some() && !track_mem {
                    return Err(usage("--prev-images-dir requires --track-mem"));
                }
                let opts = DumpOptions {
                    target,
                    images_dir: dir,
                    leave_running,
                    parent,
                    costs: self.costs.clone(),
                };
                if verb == "pre-dump" {
                    Ok(CliOutcome::Dumped(crate::dump::pre_dump(
                        kernel,
                        self.caller,
                        &opts,
                    )?))
                } else {
                    Ok(CliOutcome::Dumped(dump(kernel, self.caller, &opts)?))
                }
            }
            Some(&"restore") => {
                let mut dir: Option<String> = None;
                let mut pid_policy = RestorePid::Fresh;
                let mut mode = RestoreMode::Eager;
                let mut vectored = true;
                let mut fault_around = 1usize;
                let mut threads = 1usize;
                let mut i = 1;
                while i < args.len() {
                    match args[i] {
                        "-D" | "--images-dir" => {
                            dir = Some(
                                (*args.get(i + 1).ok_or_else(|| usage("-D needs a dir"))?)
                                    .to_owned(),
                            );
                            i += 2;
                        }
                        "--same-pid" => {
                            pid_policy = RestorePid::Same;
                            i += 1;
                        }
                        "--page-granular" => {
                            vectored = false;
                            i += 1;
                        }
                        "--fault-around" => {
                            let v = args
                                .get(i + 1)
                                .ok_or_else(|| usage("--fault-around needs a window"))?;
                            fault_around = v
                                .parse()
                                .map_err(|_| usage("--fault-around window must be a number"))?;
                            i += 2;
                        }
                        "--threads" => {
                            let v = args
                                .get(i + 1)
                                .ok_or_else(|| usage("--threads needs a count"))?;
                            threads = v
                                .parse()
                                .map_err(|_| usage("--threads count must be a number"))?;
                            i += 2;
                        }
                        "--lazy-pages" => {
                            mode = RestoreMode::Lazy;
                            i += 1;
                        }
                        "--ws-record" => {
                            mode = RestoreMode::Record;
                            i += 1;
                        }
                        "--ws-prefetch" => {
                            mode = RestoreMode::Prefetch;
                            i += 1;
                        }
                        "--cow" => {
                            mode = RestoreMode::Cow;
                            i += 1;
                        }
                        "--cow-prefetch" => {
                            mode = RestoreMode::CowPrefetch;
                            i += 1;
                        }
                        other => return Err(usage(&format!("unknown restore flag {other}"))),
                    }
                }
                let dir = dir.ok_or_else(|| usage("restore requires -D <dir>"))?;
                let opts = RestoreOptions {
                    images_dir: dir,
                    pid: pid_policy,
                    mode,
                    costs: self.costs.clone(),
                    vectored,
                    fault_around,
                    threads,
                };
                Ok(CliOutcome::Restored(restore(kernel, self.caller, &opts)?))
            }
            Some(&"repack") => {
                let mut dir: Option<String> = None;
                let mut fault_order = true;
                let mut compact = false;
                let mut i = 1;
                while i < args.len() {
                    match args[i] {
                        "-D" | "--images-dir" => {
                            dir = Some(
                                (*args.get(i + 1).ok_or_else(|| usage("-D needs a dir"))?)
                                    .to_owned(),
                            );
                            i += 2;
                        }
                        "--no-fault-order" => {
                            fault_order = false;
                            i += 1;
                        }
                        "--compact" => {
                            compact = true;
                            i += 1;
                        }
                        other => return Err(usage(&format!("unknown repack flag {other}"))),
                    }
                }
                let dir = dir.ok_or_else(|| usage("repack requires -D <dir>"))?;
                let opts = RepackOptions {
                    images_dir: dir,
                    fault_order,
                    compact,
                    costs: self.costs.clone(),
                };
                Ok(CliOutcome::Repacked(repack(kernel, &opts)?))
            }
            Some(&"check") => {
                let mut dir: Option<String> = None;
                let mut i = 1;
                while i < args.len() {
                    match args[i] {
                        "-D" | "--images-dir" => {
                            dir = Some(
                                (*args.get(i + 1).ok_or_else(|| usage("-D needs a dir"))?)
                                    .to_owned(),
                            );
                            i += 2;
                        }
                        other => return Err(usage(&format!("unknown check flag {other}"))),
                    }
                }
                let dir = dir.ok_or_else(|| usage("check requires -D <dir>"))?;
                Ok(CliOutcome::Checked(crate::check::check(kernel, &dir)?))
            }
            Some(other) => Err(usage(&format!("unknown subcommand {other}"))),
            None => Err(usage("expected dump, pre-dump, restore, repack or check")),
        }
    }
}

/// Convenience: run a dump for `target` into `dir` as `caller`.
///
/// # Errors
///
/// As [`dump`].
pub fn criu_dump(kernel: &mut Kernel, caller: Pid, target: Pid, dir: &str) -> SysResult<DumpStats> {
    dump(kernel, caller, &DumpOptions::new(target, dir))
}

/// Convenience: run a restore from `dir` as `caller`.
///
/// # Errors
///
/// As [`restore`].
pub fn criu_restore(kernel: &mut Kernel, caller: Pid, dir: &str) -> SysResult<RestoreStats> {
    restore(kernel, caller, &RestoreOptions::new(dir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VmaKind, PAGE_SIZE};

    fn setup() -> (Kernel, Pid, Pid) {
        let mut k = Kernel::free(8);
        let caller = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(target, 2 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.mem_write(target, a, &[1u8; 64]).unwrap();
        (k, caller, target)
    }

    #[test]
    fn cli_dump_then_restore() {
        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        let out = cli
            .run(&mut k, &["criu", "dump", "-t", &pid_str, "-D", "/img"])
            .unwrap();
        assert!(matches!(out, CliOutcome::Dumped(s) if s.pages_stored == 1));
        let out = cli.run(&mut k, &["restore", "-D", "/img"]).unwrap();
        match out {
            CliOutcome::Restored(s) => {
                assert!(k.process(s.pid).is_ok());
            }
            other => panic!("expected restore, got {other:?}"),
        }
    }

    #[test]
    fn cli_usage_errors() {
        let (mut k, caller, _) = setup();
        let cli = CriuCli::new(caller);
        for argv in [
            &["frobnicate"][..],
            &["dump", "-D", "/img"][..],
            &["dump", "-t", "abc", "-D", "/img"][..],
            &["dump", "-t", "3"][..],
            &["restore"][..],
            &["dump", "--wat"][..],
            &[][..],
        ] {
            assert!(
                matches!(cli.run(&mut k, argv), Err(CliError::Usage(_))),
                "argv {argv:?} should be a usage error"
            );
        }
    }

    #[test]
    fn cli_surfaces_sys_errors() {
        let (mut k, caller, _) = setup();
        let cli = CriuCli::new(caller);
        let err = cli.run(&mut k, &["restore", "-D", "/missing"]).unwrap_err();
        assert_eq!(err, CliError::Sys(Errno::Enoent));
        assert!(err.to_string().contains("criu failed"));
    }

    #[test]
    fn leave_running_flag_parsed() {
        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        cli.run(
            &mut k,
            &["dump", "-t", &pid_str, "-D", "/img", "--leave-running"],
        )
        .unwrap();
        assert!(k.process(target).is_ok(), "target still alive");
    }

    #[test]
    fn cli_check_validates_images() {
        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        cli.run(&mut k, &["dump", "-t", &pid_str, "-D", "/img"])
            .unwrap();
        let out = cli.run(&mut k, &["check", "-D", "/img"]).unwrap();
        assert!(matches!(out, CliOutcome::Checked(r) if r.pages_stored == 1));
        assert!(matches!(
            cli.run(&mut k, &["check", "-D", "/ghost"]).unwrap_err(),
            CliError::Sys(Errno::Enoent)
        ));
        assert!(matches!(
            cli.run(&mut k, &["check"]).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn cow_flag_parsed() {
        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        cli.run(&mut k, &["dump", "-t", &pid_str, "-D", "/img"])
            .unwrap();
        let out = cli
            .run(&mut k, &["restore", "-D", "/img", "--cow"])
            .unwrap();
        match out {
            CliOutcome::Restored(s) => {
                assert_eq!(s.pages_cow, 1);
                assert_eq!(s.pages_installed, 0);
            }
            other => panic!("expected restore, got {other:?}"),
        }
        // --cow-prefetch without a recorded working set is an error the
        // CLI surfaces, not a parse failure.
        assert!(matches!(
            cli.run(&mut k, &["restore", "-D", "/img", "--cow-prefetch"])
                .unwrap_err(),
            CliError::Sys(Errno::Einval)
        ));
    }

    #[test]
    fn extent_flags_parsed() {
        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        cli.run(&mut k, &["dump", "-t", &pid_str, "-D", "/img"])
            .unwrap();
        let out = cli
            .run(&mut k, &["restore", "-D", "/img", "--page-granular"])
            .unwrap();
        match out {
            CliOutcome::Restored(s) => {
                assert_eq!(s.pages_installed, 1);
                assert_eq!(s.extents, 0, "page-granular path issues no extents");
            }
            other => panic!("expected restore, got {other:?}"),
        }
        let out = cli
            .run(
                &mut k,
                &[
                    "restore",
                    "-D",
                    "/img",
                    "--lazy-pages",
                    "--fault-around",
                    "8",
                ],
            )
            .unwrap();
        assert!(matches!(out, CliOutcome::Restored(s) if s.pages_lazy == 1));
        // A window needs a number.
        assert!(matches!(
            cli.run(&mut k, &["restore", "-D", "/img", "--fault-around"])
                .unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            cli.run(&mut k, &["restore", "-D", "/img", "--fault-around", "wide"])
                .unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn threads_flag_parsed() {
        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        cli.run(&mut k, &["dump", "-t", &pid_str, "-D", "/img"])
            .unwrap();
        let out = cli
            .run(&mut k, &["restore", "-D", "/img", "--threads", "4"])
            .unwrap();
        match out {
            CliOutcome::Restored(s) => {
                assert_eq!(s.pages_installed, 1);
                // One stored page = one extent = at most one shard.
                assert_eq!(s.shards, 1);
            }
            other => panic!("expected restore, got {other:?}"),
        }
        assert!(matches!(
            cli.run(&mut k, &["restore", "-D", "/img", "--threads", "many"])
                .unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn repack_verb_parsed() {
        use crate::image::WsImage;

        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        let page_index = {
            let vma = k
                .process(target)
                .unwrap()
                .mem
                .vmas()
                .next()
                .unwrap()
                .clone();
            vma.start.0 / PAGE_SIZE as u64
        };
        cli.run(&mut k, &["dump", "-t", &pid_str, "-D", "/img"])
            .unwrap();
        k.fs_write_file(
            "/img/ws.img",
            WsImage::from_fault_log(vec![page_index]).encode(),
        )
        .unwrap();
        let out = cli
            .run(&mut k, &["repack", "-D", "/img", "--compact"])
            .unwrap();
        match out {
            CliOutcome::Repacked(s) => {
                assert_eq!(s.pages_hot, 1);
                assert_eq!(s.pages_compacted, 0, "whole image is in the working set");
            }
            other => panic!("expected repack, got {other:?}"),
        }
        assert!(matches!(
            cli.run(&mut k, &["repack"]).unwrap_err(),
            CliError::Usage(_)
        ));
        assert!(matches!(
            cli.run(&mut k, &["repack", "-D", "/img", "--wat"])
                .unwrap_err(),
            CliError::Usage(_)
        ));
        // No recorded working set → nothing to order by.
        assert!(matches!(
            cli.run(&mut k, &["dump", "-t", "1", "-D", "/img2"]),
            Err(CliError::Sys(_)) | Ok(_)
        ));
    }

    #[test]
    fn same_pid_flag_parsed() {
        let (mut k, caller, target) = setup();
        let cli = CriuCli::new(caller).with_costs(CriuCosts::free());
        let pid_str = target.0.to_string();
        cli.run(&mut k, &["dump", "-t", &pid_str, "-D", "/img"])
            .unwrap();
        let out = cli
            .run(&mut k, &["restore", "-D", "/img", "--same-pid"])
            .unwrap();
        assert!(matches!(out, CliOutcome::Restored(s) if s.pid == target));
    }
}
