//! In-memory image cache — the paper's §7 future-work optimisation
//! ("experiment with in-memory optimization on CRIU to speed-up snapshot
//! restore", citing the fast in-memory CRIU work \[26\]).
//!
//! Keeping the parsed [`ImageSet`] resident skips the image-file reads at
//! restore time, which Table 1's calibration prices at ≈0.3 ms/MiB of
//! snapshot — a substantial share for large snapshots like the Image
//! Resizer's 99 MB. The `ablation_memcache` bench quantifies exactly this.
//!
//! The cache can be bounded: [`ImageCache::with_capacity`] sets a byte
//! budget, and inserts evict least-recently-used snapshots until the
//! charged size of everything resident — *including* recorded
//! working-set images (`ws.img`) — fits the bound.
//!
//! Accounting is dedup-aware. A snapshot carrying a page store
//! (`pagestore.img`) is charged its metadata plus each *distinct* page
//! frame once; frames shared between resident snapshots — two replicas
//! of one function, or different functions with identical runtime pages
//! — are charged once cache-wide, mirroring how a memfd-backed host
//! pool would hold them. Snapshots without a store (incremental dumps,
//! pre-dedup images) are charged their full encoded size.

use std::collections::{HashMap, HashSet};

use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;
use prebake_sim::mem::PAGE_SIZE;
use prebake_sim::proc::Pid;

use crate::dump::read_images;
use crate::image::ImageSet;
use crate::restore::{restore_set, RestoreOptions, RestoreStats};

/// A host-resident cache of checkpoint images, keyed by snapshot name.
#[derive(Debug, Default)]
pub struct ImageCache {
    sets: HashMap<String, ImageSet>,
    /// Names ordered least- to most-recently used.
    recency: Vec<String>,
    capacity_bytes: Option<u64>,
}

impl ImageCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ImageCache::default()
    }

    /// An empty cache bounded to `capacity_bytes` of encoded image data
    /// (pages, metadata and working-set images all count).
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        ImageCache {
            capacity_bytes: Some(capacity_bytes),
            ..ImageCache::default()
        }
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Raw encoded bytes of everything resident, `ws.img` and
    /// `pagestore.img` included — what the snapshots would occupy
    /// *without* cross-snapshot dedup. The byte budget is enforced
    /// against [`ImageCache::charged_bytes`] instead.
    pub fn total_bytes(&self) -> u64 {
        self.sets.values().map(ImageSet::total_bytes).sum()
    }

    /// Bytes actually charged against the budget: per-snapshot metadata
    /// (everything but page payload) plus one [`PAGE_SIZE`] charge per
    /// distinct page frame across all resident page stores. Snapshots
    /// without a store are charged their full encoded size.
    pub fn charged_bytes(&self) -> u64 {
        let mut frames: HashSet<u64> = HashSet::new();
        let mut total = 0u64;
        for set in self.sets.values() {
            match &set.pagestore {
                Some(store) => {
                    total += set.non_payload_bytes();
                    frames.extend(store.hashes.iter().copied());
                }
                None => total += set.total_bytes(),
            }
        }
        total + (frames.len() * PAGE_SIZE) as u64
    }

    /// What one snapshot would be charged standing alone: its dedup-aware
    /// footprint, before any cross-snapshot frame sharing.
    pub fn standalone_bytes(set: &ImageSet) -> u64 {
        match &set.pagestore {
            Some(store) => set.non_payload_bytes() + store.unique_bytes(),
            None => set.total_bytes(),
        }
    }

    /// The configured byte budget, if any.
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity_bytes
    }

    /// Inserts a snapshot under `name`, returning the names evicted to
    /// honour the byte budget (oldest first). A snapshot whose
    /// standalone (dedup-aware) footprint exceeds the whole budget is
    /// refused: it comes back as the sole "evicted" name without
    /// displacing anything resident.
    pub fn insert(&mut self, name: impl Into<String>, set: ImageSet) -> Vec<String> {
        let name = name.into();
        if let Some(cap) = self.capacity_bytes {
            if ImageCache::standalone_bytes(&set) > cap {
                return vec![name];
            }
        }
        self.touch(&name);
        self.sets.insert(name, set);
        self.enforce_capacity()
    }

    /// Loads image files from the guest filesystem into the cache
    /// (charged once; subsequent restores skip the read entirely).
    /// Returns the names evicted to honour the byte budget.
    ///
    /// # Errors
    ///
    /// Propagates image-read errors.
    pub fn preload(
        &mut self,
        kernel: &mut Kernel,
        name: impl Into<String>,
        images_dir: &str,
    ) -> SysResult<Vec<String>> {
        let span = kernel.span_begin("cache_preload", prebake_sim::kernel::INIT_PID);
        let set = read_images(kernel, images_dir);
        kernel.span_end(span);
        let evicted = self.insert(name, set?);
        kernel.span_attr(span, "evicted", evicted.len().to_string());
        Ok(evicted)
    }

    /// Looks up a cached snapshot (does not refresh its recency).
    pub fn get(&self, name: &str) -> Option<&ImageSet> {
        self.sets.get(name)
    }

    /// Restores directly from the cache, skipping all image-file I/O.
    /// The snapshot becomes the most recently used.
    ///
    /// # Errors
    ///
    /// [`prebake_sim::Errno::Enoent`] if the snapshot is not cached;
    /// otherwise as [`restore_set`].
    pub fn restore_cached(
        &mut self,
        kernel: &mut Kernel,
        requester: Pid,
        name: &str,
        opts: &RestoreOptions,
    ) -> SysResult<RestoreStats> {
        let span = kernel.span_begin("cache_lookup", requester);
        let Some(set) = self.sets.get(name) else {
            kernel.span_attr(span, "result", "miss");
            kernel.span_end(span);
            return Err(prebake_sim::Errno::Enoent);
        };
        kernel.span_attr(span, "result", "hit");
        let stats = restore_set(kernel, requester, set, opts);
        kernel.span_end(span);
        let stats = stats?;
        self.touch(name);
        Ok(stats)
    }

    /// Removes a snapshot, returning it if present.
    pub fn evict(&mut self, name: &str) -> Option<ImageSet> {
        self.recency.retain(|n| n != name);
        self.sets.remove(name)
    }

    fn touch(&mut self, name: &str) {
        self.recency.retain(|n| n != name);
        self.recency.push(name.to_owned());
    }

    fn enforce_capacity(&mut self) -> Vec<String> {
        let Some(cap) = self.capacity_bytes else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.charged_bytes() > cap && self.recency.len() > 1 {
            let victim = self.recency.remove(0);
            self.sets.remove(&victim);
            evicted.push(victim);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{dump, DumpOptions};
    use crate::image::WsImage;
    use prebake_sim::cost::CostModel;
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VmaKind, PAGE_SIZE};
    use prebake_sim::noise::Noise;

    fn kernel_with_snapshot() -> (Kernel, Pid) {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(
                target,
                512 * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        k.mem_write(target, a, &vec![3u8; 512 * PAGE_SIZE]).unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer)
    }

    #[test]
    fn cached_restore_is_faster_than_fs_restore() {
        let (mut k, tracer) = kernel_with_snapshot();
        let opts = RestoreOptions::new("/img");

        let t0 = k.now();
        let via_fs = crate::restore::restore(&mut k, tracer, &opts).unwrap();
        let fs_time = k.now() - t0;

        let mut cache = ImageCache::new();
        cache.preload(&mut k, "fn", "/img").unwrap();
        let t1 = k.now();
        let via_cache = cache.restore_cached(&mut k, tracer, "fn", &opts).unwrap();
        let cache_time = k.now() - t1;

        assert_eq!(via_fs.pages_installed, via_cache.pages_installed);
        assert!(cache_time < fs_time, "cache {cache_time} vs fs {fs_time}");
    }

    #[test]
    fn missing_snapshot_is_enoent() {
        let (mut k, tracer) = kernel_with_snapshot();
        let mut cache = ImageCache::new();
        assert!(cache.is_empty());
        assert_eq!(
            cache
                .restore_cached(&mut k, tracer, "nope", &RestoreOptions::new("/img"))
                .unwrap_err(),
            prebake_sim::Errno::Enoent
        );
    }

    #[test]
    fn evict_removes_entry() {
        let (mut k, _) = kernel_with_snapshot();
        let mut cache = ImageCache::new();
        cache.preload(&mut k, "fn", "/img").unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("fn").is_some());
        assert!(cache.evict("fn").is_some());
        assert!(cache.evict("fn").is_none());
        assert!(cache.is_empty());
    }

    /// Dumps a snapshot whose pages are all distinct from each other
    /// *and* from any other `tag`'s pages, so cross-snapshot dedup
    /// shares nothing between different tags.
    fn distinct_snapshot(k: &mut Kernel, tag: u8, pages: u64) -> ImageSet {
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let dir = format!("/img-{tag}");
        let a = k
            .sys_mmap(
                target,
                pages * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        for i in 0..pages {
            k.mem_write(target, a.add(i * PAGE_SIZE as u64), &[tag, i as u8, 1])
                .unwrap();
        }
        dump(k, tracer, &DumpOptions::new(target, &dir)).unwrap();
        read_images(k, &dir).unwrap()
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let sets: Vec<ImageSet> = (1u8..=3)
            .map(|t| distinct_snapshot(&mut k, t, 64))
            .collect();
        let one = ImageCache::standalone_bytes(&sets[0]);

        // Room for two unrelated snapshots, not three.
        let mut cache = ImageCache::with_capacity(2 * one + one / 2);
        assert!(cache.insert("a", sets[0].clone()).is_empty());
        assert!(cache.insert("b", sets[1].clone()).is_empty());
        assert_eq!(cache.charged_bytes(), 2 * one);

        // "a" is refreshed, so inserting "c" evicts "b".
        let _ = cache.get("a");
        cache.touch("a");
        let evicted = cache.insert("c", sets[2].clone());
        assert_eq!(evicted, vec!["b".to_owned()]);
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert!(cache.charged_bytes() <= cache.capacity_bytes().unwrap());
    }

    #[test]
    fn ws_image_bytes_count_toward_the_bound() {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let plain = distinct_snapshot(&mut k, 1, 64);
        let mut with_ws = distinct_snapshot(&mut k, 2, 64);
        with_ws.ws = Some(WsImage::from_fault_log((0..4096).collect()));
        assert!(
            ImageCache::standalone_bytes(&with_ws) > ImageCache::standalone_bytes(&plain),
            "ws.img bytes are charged"
        );

        // Bound fits two plain-size sets but not plain + ws-augmented:
        // the ws.img bytes must tip it over and evict the older entry.
        let cap = ImageCache::standalone_bytes(&plain) * 2 + 16;
        let mut cache = ImageCache::with_capacity(cap);
        assert!(cache.insert("plain", plain).is_empty());
        let evicted = cache.insert("with-ws", with_ws);
        assert_eq!(evicted, vec!["plain".to_owned()]);

        // A snapshot bigger than the whole budget is refused outright.
        let mut tiny = ImageCache::with_capacity(8);
        let huge = cache.evict("with-ws").unwrap();
        assert_eq!(tiny.insert("huge", huge), vec!["huge".to_owned()]);
        assert!(tiny.is_empty());
    }

    #[test]
    fn identical_snapshots_do_not_double_charge_the_cap() {
        // Regression: eviction accounting used raw per-set totals, so two
        // byte-identical snapshots charged twice and the second insert
        // evicted the first even though their frames are shared.
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let a = distinct_snapshot(&mut k, 1, 64);
        let b = a.clone();
        let one = ImageCache::standalone_bytes(&a);

        // The budget fits one-and-a-half standalone snapshots: under
        // additive accounting the pair would not fit.
        let mut cache = ImageCache::with_capacity(one + one / 2);
        assert!(cache.insert("a", a).is_empty());
        assert!(
            cache.insert("b", b).is_empty(),
            "identical twin shares every frame; nothing to evict"
        );
        assert_eq!(cache.len(), 2);

        // Charged: two metadata bases + ONE copy of the shared frames.
        let base = cache.get("a").unwrap().non_payload_bytes();
        let unique = cache
            .get("a")
            .unwrap()
            .pagestore
            .as_ref()
            .unwrap()
            .unique_bytes();
        assert_eq!(cache.charged_bytes(), 2 * base + unique);
        assert!(cache.charged_bytes() < 2 * one);
        assert!(
            cache.total_bytes() > cache.charged_bytes(),
            "raw total still reports the undeduped footprint"
        );
    }

    #[test]
    fn extent_table_charges_exactly_its_encoded_size() {
        // Regression: the extent table is restore metadata, so the cache
        // must charge it — but a coalesced image may never charge more
        // than its per-page twin plus the table's encoded bytes.
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let coalesced = distinct_snapshot(&mut k, 1, 64);
        assert!(coalesced.extents.is_some(), "dump emits the extent table");
        let mut per_page = coalesced.clone();
        per_page.extents = None;

        let table_bytes = coalesced.extents.as_ref().unwrap().encode().len() as u64;
        let with = ImageCache::standalone_bytes(&coalesced);
        let without = ImageCache::standalone_bytes(&per_page);
        assert!(with > without, "the table counts toward the budget");
        assert_eq!(with, without + table_bytes, "and no more than its size");

        // The cache-wide charge obeys the same bound.
        let mut cache = ImageCache::new();
        cache.insert("coalesced", coalesced);
        let mut twin = ImageCache::new();
        twin.insert("per-page", per_page);
        assert_eq!(cache.charged_bytes(), twin.charged_bytes() + table_bytes);
    }

    #[test]
    fn cow_restore_straight_from_the_cache() {
        use crate::restore::RestoreMode;
        let (mut k, tracer) = kernel_with_snapshot();
        let mut cache = ImageCache::new();
        cache.preload(&mut k, "fn", "/img").unwrap();
        let opts = RestoreOptions::with_mode("/img", RestoreMode::Cow);
        let s1 = cache.restore_cached(&mut k, tracer, "fn", &opts).unwrap();
        let s2 = cache.restore_cached(&mut k, tracer, "fn", &opts).unwrap();
        assert_eq!(s1.pages_cow, 512);
        assert_eq!(s2.pages_cow, 512);
        // 512 identical 3u8 pages dedup to ONE machine frame, mapped 1024
        // times across the two replicas.
        assert_eq!(k.page_store().frame_count(), 1);
        assert_eq!(k.page_store().external_refs(), 1024);
    }
}
