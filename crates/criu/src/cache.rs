//! In-memory image cache — the paper's §7 future-work optimisation
//! ("experiment with in-memory optimization on CRIU to speed-up snapshot
//! restore", citing the fast in-memory CRIU work \[26\]).
//!
//! Keeping the parsed [`ImageSet`] resident skips the image-file reads at
//! restore time, which Table 1's calibration prices at ≈0.3 ms/MiB of
//! snapshot — a substantial share for large snapshots like the Image
//! Resizer's 99 MB. The `ablation_memcache` bench quantifies exactly this.
//!
//! The cache can be bounded: [`ImageCache::with_capacity`] sets a byte
//! budget, and inserts evict least-recently-used snapshots until the
//! encoded size of everything resident — *including* recorded
//! working-set images (`ws.img`) — fits the bound.

use std::collections::HashMap;

use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;
use prebake_sim::proc::Pid;

use crate::dump::read_images;
use crate::image::ImageSet;
use crate::restore::{restore_set, RestoreOptions, RestoreStats};

/// A host-resident cache of checkpoint images, keyed by snapshot name.
#[derive(Debug, Default)]
pub struct ImageCache {
    sets: HashMap<String, ImageSet>,
    /// Names ordered least- to most-recently used.
    recency: Vec<String>,
    capacity_bytes: Option<u64>,
}

impl ImageCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        ImageCache::default()
    }

    /// An empty cache bounded to `capacity_bytes` of encoded image data
    /// (pages, metadata and working-set images all count).
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        ImageCache {
            capacity_bytes: Some(capacity_bytes),
            ..ImageCache::default()
        }
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Encoded bytes of everything resident, `ws.img` included.
    pub fn total_bytes(&self) -> u64 {
        self.sets.values().map(ImageSet::total_bytes).sum()
    }

    /// The configured byte budget, if any.
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity_bytes
    }

    /// Inserts a snapshot under `name`, returning the names evicted to
    /// honour the byte budget (oldest first). A snapshot larger than the
    /// whole budget is refused: it comes back as the sole "evicted" name
    /// without displacing anything resident.
    pub fn insert(&mut self, name: impl Into<String>, set: ImageSet) -> Vec<String> {
        let name = name.into();
        if let Some(cap) = self.capacity_bytes {
            if set.total_bytes() > cap {
                return vec![name];
            }
        }
        self.touch(&name);
        self.sets.insert(name, set);
        self.enforce_capacity()
    }

    /// Loads image files from the guest filesystem into the cache
    /// (charged once; subsequent restores skip the read entirely).
    /// Returns the names evicted to honour the byte budget.
    ///
    /// # Errors
    ///
    /// Propagates image-read errors.
    pub fn preload(
        &mut self,
        kernel: &mut Kernel,
        name: impl Into<String>,
        images_dir: &str,
    ) -> SysResult<Vec<String>> {
        let set = read_images(kernel, images_dir)?;
        Ok(self.insert(name, set))
    }

    /// Looks up a cached snapshot (does not refresh its recency).
    pub fn get(&self, name: &str) -> Option<&ImageSet> {
        self.sets.get(name)
    }

    /// Restores directly from the cache, skipping all image-file I/O.
    /// The snapshot becomes the most recently used.
    ///
    /// # Errors
    ///
    /// [`prebake_sim::Errno::Enoent`] if the snapshot is not cached;
    /// otherwise as [`restore_set`].
    pub fn restore_cached(
        &mut self,
        kernel: &mut Kernel,
        requester: Pid,
        name: &str,
        opts: &RestoreOptions,
    ) -> SysResult<RestoreStats> {
        let set = self.sets.get(name).ok_or(prebake_sim::Errno::Enoent)?;
        let stats = restore_set(kernel, requester, set, opts)?;
        self.touch(name);
        Ok(stats)
    }

    /// Removes a snapshot, returning it if present.
    pub fn evict(&mut self, name: &str) -> Option<ImageSet> {
        self.recency.retain(|n| n != name);
        self.sets.remove(name)
    }

    fn touch(&mut self, name: &str) {
        self.recency.retain(|n| n != name);
        self.recency.push(name.to_owned());
    }

    fn enforce_capacity(&mut self) -> Vec<String> {
        let Some(cap) = self.capacity_bytes else {
            return Vec::new();
        };
        let mut evicted = Vec::new();
        while self.total_bytes() > cap && self.recency.len() > 1 {
            let victim = self.recency.remove(0);
            self.sets.remove(&victim);
            evicted.push(victim);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{dump, DumpOptions};
    use crate::image::WsImage;
    use prebake_sim::cost::CostModel;
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VmaKind, PAGE_SIZE};
    use prebake_sim::noise::Noise;

    fn kernel_with_snapshot() -> (Kernel, Pid) {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(
                target,
                512 * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        k.mem_write(target, a, &vec![3u8; 512 * PAGE_SIZE]).unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer)
    }

    #[test]
    fn cached_restore_is_faster_than_fs_restore() {
        let (mut k, tracer) = kernel_with_snapshot();
        let opts = RestoreOptions::new("/img");

        let t0 = k.now();
        let via_fs = crate::restore::restore(&mut k, tracer, &opts).unwrap();
        let fs_time = k.now() - t0;

        let mut cache = ImageCache::new();
        cache.preload(&mut k, "fn", "/img").unwrap();
        let t1 = k.now();
        let via_cache = cache.restore_cached(&mut k, tracer, "fn", &opts).unwrap();
        let cache_time = k.now() - t1;

        assert_eq!(via_fs.pages_installed, via_cache.pages_installed);
        assert!(cache_time < fs_time, "cache {cache_time} vs fs {fs_time}");
    }

    #[test]
    fn missing_snapshot_is_enoent() {
        let (mut k, tracer) = kernel_with_snapshot();
        let mut cache = ImageCache::new();
        assert!(cache.is_empty());
        assert_eq!(
            cache
                .restore_cached(&mut k, tracer, "nope", &RestoreOptions::new("/img"))
                .unwrap_err(),
            prebake_sim::Errno::Enoent
        );
    }

    #[test]
    fn evict_removes_entry() {
        let (mut k, _) = kernel_with_snapshot();
        let mut cache = ImageCache::new();
        cache.preload(&mut k, "fn", "/img").unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("fn").is_some());
        assert!(cache.evict("fn").is_some());
        assert!(cache.evict("fn").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let (mut k, _) = kernel_with_snapshot();
        let set = read_images(&mut k, "/img").unwrap();
        let one = set.total_bytes() as u64;

        // Room for two snapshots, not three.
        let mut cache = ImageCache::with_capacity(2 * one + one / 2);
        assert!(cache.insert("a", set.clone()).is_empty());
        assert!(cache.insert("b", set.clone()).is_empty());
        assert_eq!(cache.total_bytes(), 2 * one);

        // "a" is refreshed, so inserting "c" evicts "b".
        let _ = cache.get("a");
        cache.touch("a");
        let evicted = cache.insert("c", set.clone());
        assert_eq!(evicted, vec!["b".to_owned()]);
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert!(cache.total_bytes() <= cache.capacity_bytes().unwrap());
    }

    #[test]
    fn ws_image_bytes_count_toward_the_bound() {
        let (mut k, _) = kernel_with_snapshot();
        let plain = read_images(&mut k, "/img").unwrap();
        let mut with_ws = plain.clone();
        with_ws.ws = Some(WsImage::from_fault_log((0..4096).collect()));
        assert!(with_ws.total_bytes() > plain.total_bytes());

        // Bound fits two plain sets but not plain + ws-augmented: the
        // ws.img bytes must tip it over and evict the older entry.
        let cap = plain.total_bytes() as u64 * 2 + 16;
        let mut cache = ImageCache::with_capacity(cap);
        assert!(cache.insert("plain", plain).is_empty());
        let evicted = cache.insert("with-ws", with_ws);
        assert_eq!(evicted, vec!["plain".to_owned()]);

        // A snapshot bigger than the whole budget is refused outright.
        let mut tiny = ImageCache::with_capacity(8);
        let huge = cache.evict("with-ws").unwrap();
        assert_eq!(tiny.insert("huge", huge), vec!["huge".to_owned()]);
        assert!(tiny.is_empty());
    }
}
