//! In-memory image cache — the paper's §7 future-work optimisation
//! ("experiment with in-memory optimization on CRIU to speed-up snapshot
//! restore", citing the fast in-memory CRIU work \[26\]).
//!
//! Keeping the parsed [`ImageSet`] resident skips the image-file reads at
//! restore time, which Table 1's calibration prices at ≈0.3 ms/MiB of
//! snapshot — a substantial share for large snapshots like the Image
//! Resizer's 99 MB. The `ablation_memcache` bench quantifies exactly this.

use std::collections::HashMap;

use prebake_sim::error::SysResult;
use prebake_sim::kernel::Kernel;
use prebake_sim::proc::Pid;

use crate::dump::read_images;
use crate::image::ImageSet;
use crate::restore::{restore_set, RestoreOptions, RestoreStats};

/// A host-resident cache of checkpoint images, keyed by snapshot name.
#[derive(Debug, Default)]
pub struct ImageCache {
    sets: HashMap<String, ImageSet>,
}

impl ImageCache {
    /// An empty cache.
    pub fn new() -> Self {
        ImageCache::default()
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Inserts a snapshot under `name`.
    pub fn insert(&mut self, name: impl Into<String>, set: ImageSet) {
        self.sets.insert(name.into(), set);
    }

    /// Loads image files from the guest filesystem into the cache
    /// (charged once; subsequent restores skip the read entirely).
    ///
    /// # Errors
    ///
    /// Propagates image-read errors.
    pub fn preload(
        &mut self,
        kernel: &mut Kernel,
        name: impl Into<String>,
        images_dir: &str,
    ) -> SysResult<()> {
        let set = read_images(kernel, images_dir)?;
        self.insert(name, set);
        Ok(())
    }

    /// Looks up a cached snapshot.
    pub fn get(&self, name: &str) -> Option<&ImageSet> {
        self.sets.get(name)
    }

    /// Restores directly from the cache, skipping all image-file I/O.
    ///
    /// # Errors
    ///
    /// [`prebake_sim::Errno::Enoent`] if the snapshot is not cached;
    /// otherwise as [`restore_set`].
    pub fn restore_cached(
        &self,
        kernel: &mut Kernel,
        requester: Pid,
        name: &str,
        opts: &RestoreOptions,
    ) -> SysResult<RestoreStats> {
        let set = self.sets.get(name).ok_or(prebake_sim::Errno::Enoent)?;
        restore_set(kernel, requester, set, opts)
    }

    /// Removes a snapshot, returning it if present.
    pub fn evict(&mut self, name: &str) -> Option<ImageSet> {
        self.sets.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{dump, DumpOptions};
    use prebake_sim::cost::CostModel;
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VmaKind, PAGE_SIZE};
    use prebake_sim::noise::Noise;

    fn kernel_with_snapshot() -> (Kernel, Pid) {
        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(target, 512 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        k.mem_write(target, a, &vec![3u8; 512 * PAGE_SIZE])
            .unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer)
    }

    #[test]
    fn cached_restore_is_faster_than_fs_restore() {
        let (mut k, tracer) = kernel_with_snapshot();
        let opts = RestoreOptions::new("/img");

        let t0 = k.now();
        let via_fs = crate::restore::restore(&mut k, tracer, &opts).unwrap();
        let fs_time = k.now() - t0;

        let mut cache = ImageCache::new();
        cache.preload(&mut k, "fn", "/img").unwrap();
        let t1 = k.now();
        let via_cache = cache.restore_cached(&mut k, tracer, "fn", &opts).unwrap();
        let cache_time = k.now() - t1;

        assert_eq!(via_fs.pages_installed, via_cache.pages_installed);
        assert!(
            cache_time < fs_time,
            "cache {cache_time} vs fs {fs_time}"
        );
    }

    #[test]
    fn missing_snapshot_is_enoent() {
        let (mut k, tracer) = kernel_with_snapshot();
        let cache = ImageCache::new();
        assert!(cache.is_empty());
        assert_eq!(
            cache
                .restore_cached(&mut k, tracer, "nope", &RestoreOptions::new("/img"))
                .unwrap_err(),
            prebake_sim::Errno::Enoent
        );
    }

    #[test]
    fn evict_removes_entry() {
        let (mut k, _) = kernel_with_snapshot();
        let mut cache = ImageCache::new();
        cache.preload(&mut k, "fn", "/img").unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("fn").is_some());
        assert!(cache.evict("fn").is_some());
        assert!(cache.evict("fn").is_none());
        assert!(cache.is_empty());
    }
}
