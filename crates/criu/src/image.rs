//! The checkpoint image format.
//!
//! A checkpoint is a directory of image files mirroring real CRIU's
//! layout: `core.img` (task identity, threads, registers, capabilities),
//! `mm.img` (the VMA list), `pagemap.img` (which pages travel and which
//! are zero), `pages.img` (raw page payload) and `files.img` (the
//! descriptor table). Each file is a checksummed TLV blob.

use std::fmt;

use prebake_sim::mem::{Page, Prot, VirtAddr, Vma, VmaKind, PAGE_SIZE};
use prebake_sim::proc::{FdEntry, Pid, Regs, Tid};

/// Magic prefix of every image file: `"CRIM"`.
pub const IMAGE_MAGIC: u32 = 0x4352_494D;
/// Image format version written by this build. Version 2 added the
/// fault-order `repack` layout and the compaction fallback layer
/// (`fallback-pagemap.img`/`fallback-pages.img`); the encoding of every
/// individual image is unchanged, so readers accept version 1 files —
/// legacy images restore exactly as before.
pub const IMAGE_VERSION: u16 = 2;
/// Oldest image format version readers still accept.
pub const IMAGE_VERSION_MIN: u16 = 1;

/// Errors produced while encoding/decoding images.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ImageError {
    /// Input ended before a declared structure.
    Truncated,
    /// Magic mismatch.
    BadMagic(u32),
    /// Unsupported version.
    BadVersion(u16),
    /// Wrong image kind tag for the file being parsed.
    WrongKind {
        /// Expected kind tag.
        expected: u8,
        /// Found kind tag.
        found: u8,
    },
    /// Checksum mismatch.
    BadChecksum,
    /// A string field was not UTF-8.
    BadString,
    /// An enum discriminant was out of range.
    BadTag(u8),
    /// Pages payload length is not a multiple of the page size, or does
    /// not match the pagemap.
    BadPages,
    /// Page-store image is internally inconsistent: payload size
    /// disagrees with the frame table, a frame's content hash does not
    /// match its declared hash, or a reference points past the frame
    /// table.
    BadPageStore,
    /// Extent table is internally inconsistent: a zero-length run, or
    /// runs that do not match the coalescing of the pagemap they claim
    /// to cover.
    BadExtents,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "image truncated"),
            ImageError::BadMagic(m) => write!(f, "bad image magic {m:#010x}"),
            ImageError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageError::WrongKind { expected, found } => {
                write!(f, "wrong image kind: expected {expected}, found {found}")
            }
            ImageError::BadChecksum => write!(f, "image checksum mismatch"),
            ImageError::BadString => write!(f, "image string is not utf-8"),
            ImageError::BadTag(t) => write!(f, "bad discriminant {t}"),
            ImageError::BadPages => write!(f, "pages payload inconsistent with pagemap"),
            ImageError::BadPageStore => {
                write!(f, "page-store image inconsistent with its frame table")
            }
            ImageError::BadExtents => {
                write!(f, "extent table inconsistent with its pagemap")
            }
        }
    }
}

impl std::error::Error for ImageError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Content hash of a page frame, as used by the dedup page store.
///
/// This is the key under which identical pages collapse to one frame —
/// both inside `pagestore.img` and in the machine-wide shared pool at
/// restore time. FNV-1a over the raw page bytes: cheap, deterministic,
/// and good enough for a simulator where collisions would require
/// adversarial inputs (real systems use memfd offsets or KSM's full
/// memcmp instead of trusting the hash).
pub fn page_content_hash(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

// ----------------------------------------------------------------- writer

#[derive(Debug, Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8) -> Writer {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&IMAGE_MAGIC.to_be_bytes());
        w.buf.extend_from_slice(&IMAGE_VERSION.to_be_bytes());
        w.buf.push(kind);
        w
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn string(&mut self, s: &str) {
        self.u16(s.len() as u16);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_be_bytes());
        self.buf
    }
}

// ----------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn open(bytes: &'a [u8], kind: u8) -> Result<Reader<'a>, ImageError> {
        if bytes.len() < 7 + 8 {
            return Err(ImageError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_be_bytes(tail.try_into().unwrap());
        if fnv1a(payload) != declared {
            return Err(ImageError::BadChecksum);
        }
        let magic = u32::from_be_bytes(payload[0..4].try_into().unwrap());
        if magic != IMAGE_MAGIC {
            return Err(ImageError::BadMagic(magic));
        }
        let version = u16::from_be_bytes(payload[4..6].try_into().unwrap());
        if !(IMAGE_VERSION_MIN..=IMAGE_VERSION).contains(&version) {
            return Err(ImageError::BadVersion(version));
        }
        let found = payload[6];
        if found != kind {
            return Err(ImageError::WrongKind {
                expected: kind,
                found,
            });
        }
        Ok(Reader {
            buf: payload,
            pos: 7,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.pos + n > self.buf.len() {
            return Err(ImageError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, ImageError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ImageError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| ImageError::BadString)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ImageError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn done(&self) -> Result<(), ImageError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ImageError::Truncated)
        }
    }
}

// ------------------------------------------------------------------ core

/// One thread's captured execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadImage {
    /// Thread id.
    pub tid: Tid,
    /// Captured registers.
    pub regs: Regs,
}

/// `core.img`: task identity and per-thread state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreImage {
    /// Pid at dump time (restore recreates it in the new namespace).
    pub pid: Pid,
    /// Command name.
    pub comm: String,
    /// Command line.
    pub cmdline: Vec<String>,
    /// Raw capability bits.
    pub cap_bits: u8,
    /// Threads.
    pub threads: Vec<ThreadImage>,
}

const KIND_CORE: u8 = 1;
const KIND_MM: u8 = 2;
const KIND_PAGEMAP: u8 = 3;
const KIND_PAGES: u8 = 4;
const KIND_FILES: u8 = 5;
const KIND_WS: u8 = 6;
const KIND_PAGESTORE: u8 = 7;
const KIND_EXTENTS: u8 = 8;

impl CoreImage {
    /// Serialises the core image.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_CORE);
        w.u32(self.pid.0);
        w.string(&self.comm);
        w.u16(self.cmdline.len() as u16);
        for arg in &self.cmdline {
            w.string(arg);
        }
        w.u8(self.cap_bits);
        w.u16(self.threads.len() as u16);
        for t in &self.threads {
            w.u32(t.tid.0);
            w.u64(t.regs.ip);
            w.u64(t.regs.sp);
        }
        w.finish()
    }

    /// Parses a core image.
    ///
    /// # Errors
    ///
    /// Any [`ImageError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<CoreImage, ImageError> {
        let mut r = Reader::open(bytes, KIND_CORE)?;
        let pid = Pid(r.u32()?);
        let comm = r.string()?;
        let argc = r.u16()?;
        let mut cmdline = Vec::with_capacity(argc as usize);
        for _ in 0..argc {
            cmdline.push(r.string()?);
        }
        let cap_bits = r.u8()?;
        let tcount = r.u16()?;
        let mut threads = Vec::with_capacity(tcount as usize);
        for _ in 0..tcount {
            threads.push(ThreadImage {
                tid: Tid(r.u32()?),
                regs: Regs {
                    ip: r.u64()?,
                    sp: r.u64()?,
                },
            });
        }
        r.done()?;
        Ok(CoreImage {
            pid,
            comm,
            cmdline,
            cap_bits,
            threads,
        })
    }
}

// -------------------------------------------------------------------- mm

fn encode_prot(p: Prot) -> u8 {
    (p.read as u8) | ((p.write as u8) << 1) | ((p.exec as u8) << 2)
}

fn decode_prot(b: u8) -> Prot {
    Prot {
        read: b & 1 != 0,
        write: b & 2 != 0,
        exec: b & 4 != 0,
    }
}

fn encode_kind(w: &mut Writer, k: &VmaKind) {
    match k {
        VmaKind::Anon => w.u8(0),
        VmaKind::Stack => w.u8(1),
        VmaKind::Binary { path } => {
            w.u8(2);
            w.string(path);
        }
        VmaKind::File { path, offset } => {
            w.u8(3);
            w.string(path);
            w.u64(*offset);
        }
        VmaKind::RuntimeHeap => w.u8(4),
        VmaKind::Metaspace => w.u8(5),
        VmaKind::CodeCache => w.u8(6),
        VmaKind::Parasite => w.u8(7),
    }
}

fn decode_kind(r: &mut Reader<'_>) -> Result<VmaKind, ImageError> {
    Ok(match r.u8()? {
        0 => VmaKind::Anon,
        1 => VmaKind::Stack,
        2 => VmaKind::Binary { path: r.string()? },
        3 => VmaKind::File {
            path: r.string()?,
            offset: r.u64()?,
        },
        4 => VmaKind::RuntimeHeap,
        5 => VmaKind::Metaspace,
        6 => VmaKind::CodeCache,
        7 => VmaKind::Parasite,
        t => return Err(ImageError::BadTag(t)),
    })
}

/// `mm.img`: the dumped VMA list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MmImage {
    /// Mappings in address order.
    pub vmas: Vec<Vma>,
}

impl MmImage {
    /// Serialises the mm image.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_MM);
        w.u32(self.vmas.len() as u32);
        for v in &self.vmas {
            w.u64(v.start.0);
            w.u64(v.len);
            w.u8(encode_prot(v.prot));
            encode_kind(&mut w, &v.kind);
        }
        w.finish()
    }

    /// Parses an mm image.
    ///
    /// # Errors
    ///
    /// Any [`ImageError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<MmImage, ImageError> {
        let mut r = Reader::open(bytes, KIND_MM)?;
        let count = r.u32()?;
        let mut vmas = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let start = VirtAddr(r.u64()?);
            let len = r.u64()?;
            let prot = decode_prot(r.u8()?);
            let kind = decode_kind(&mut r)?;
            vmas.push(Vma {
                start,
                len,
                prot,
                kind,
            });
        }
        r.done()?;
        Ok(MmImage { vmas })
    }
}

// ---------------------------------------------------------------- pagemap

/// One pagemap record: a present page, either zero (not stored), held by
/// the parent snapshot (incremental dump), or backed by payload in
/// `pages.img`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagemapEntry {
    /// Guest page index.
    pub page_index: u64,
    /// `true` if the page was all-zero at dump time (CRIU's zero-page
    /// deduplication: no payload stored).
    pub zero: bool,
    /// `true` if the page is unchanged since the pre-dump and its payload
    /// lives in the parent snapshot (CRIU's `--track-mem` incremental
    /// dump). Mutually exclusive with `zero`.
    pub in_parent: bool,
}

/// Where one page's contents come from at restore time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSource<'a> {
    /// Demand-zero page: nothing stored.
    Zero,
    /// Payload stored in this image.
    Bytes(&'a [u8]),
    /// Payload lives in the parent snapshot.
    Parent,
}

/// `pagemap.img` + `pages.img` as one logical unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PagesImage {
    /// Pagemap records in page-index order.
    pub entries: Vec<PagemapEntry>,
    /// Concatenated payload of non-zero pages, in entry order.
    pub payload: Vec<u8>,
}

impl PagesImage {
    /// Appends a page, storing payload only when it is non-zero.
    pub fn push(&mut self, page_index: u64, page: &Page) {
        if page.is_zero() {
            self.entries.push(PagemapEntry {
                page_index,
                zero: true,
                in_parent: false,
            });
        } else {
            self.entries.push(PagemapEntry {
                page_index,
                zero: false,
                in_parent: false,
            });
            self.payload.extend_from_slice(page.bytes());
        }
    }

    /// Appends a reference to a page whose payload lives in the parent
    /// snapshot (incremental dump).
    pub fn push_parent_ref(&mut self, page_index: u64) {
        self.entries.push(PagemapEntry {
            page_index,
            zero: false,
            in_parent: true,
        });
    }

    /// Number of pages whose payload is stored in *this* image.
    pub fn stored_pages(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.zero && !e.in_parent)
            .count()
    }

    /// Number of zero-deduplicated pages.
    pub fn zero_pages(&self) -> usize {
        self.entries.iter().filter(|e| e.zero).count()
    }

    /// Number of pages deferred to the parent snapshot.
    pub fn parent_pages(&self) -> usize {
        self.entries.iter().filter(|e| e.in_parent).count()
    }

    /// Iterates `(page_index, PageSource)` in entry order.
    pub fn iter_pages(&self) -> impl Iterator<Item = (u64, PageSource<'_>)> {
        let mut offset = 0usize;
        self.entries.iter().map(move |e| {
            if e.zero {
                (e.page_index, PageSource::Zero)
            } else if e.in_parent {
                (e.page_index, PageSource::Parent)
            } else {
                let slice = &self.payload[offset..offset + PAGE_SIZE];
                offset += PAGE_SIZE;
                (e.page_index, PageSource::Bytes(slice))
            }
        })
    }

    /// Serialises `pagemap.img`.
    pub fn encode_pagemap(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_PAGEMAP);
        w.u32(self.entries.len() as u32);
        for e in &self.entries {
            w.u64(e.page_index);
            w.u8((e.zero as u8) | ((e.in_parent as u8) << 1));
        }
        w.finish()
    }

    /// Serialises `pages.img`.
    pub fn encode_pages(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_PAGES);
        w.bytes(&self.payload);
        w.finish()
    }

    /// Parses the pagemap/pages pair back into one unit.
    ///
    /// # Errors
    ///
    /// [`ImageError::BadPages`] if the payload size disagrees with the
    /// pagemap (or an entry claims both zero and in-parent), or any codec
    /// error.
    pub fn parse(pagemap: &[u8], pages: &[u8]) -> Result<PagesImage, ImageError> {
        let mut r = Reader::open(pagemap, KIND_PAGEMAP)?;
        let count = r.u32()?;
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let page_index = r.u64()?;
            let flags = r.u8()?;
            let zero = flags & 1 != 0;
            let in_parent = flags & 2 != 0;
            if zero && in_parent {
                return Err(ImageError::BadPages);
            }
            entries.push(PagemapEntry {
                page_index,
                zero,
                in_parent,
            });
        }
        r.done()?;

        let mut r = Reader::open(pages, KIND_PAGES)?;
        let payload = r.bytes()?;
        r.done()?;

        let stored = entries.iter().filter(|e| !e.zero && !e.in_parent).count();
        if payload.len() != stored * PAGE_SIZE {
            return Err(ImageError::BadPages);
        }
        Ok(PagesImage { entries, payload })
    }

    /// Replaces every parent reference with the payload found in
    /// `parent`, producing a self-contained image.
    ///
    /// # Errors
    ///
    /// [`ImageError::BadPages`] if the parent lacks a referenced page or
    /// itself defers to a grandparent (only one level is supported, as in
    /// a single pre-dump round).
    pub fn resolve_parent(&self, parent: &PagesImage) -> Result<PagesImage, ImageError> {
        use std::collections::BTreeMap;
        let mut parent_pages: BTreeMap<u64, PageSource<'_>> = BTreeMap::new();
        for (idx, src) in parent.iter_pages() {
            parent_pages.insert(idx, src);
        }
        let mut resolved = PagesImage::default();
        for (idx, src) in self.iter_pages() {
            match src {
                PageSource::Zero => resolved.entries.push(PagemapEntry {
                    page_index: idx,
                    zero: true,
                    in_parent: false,
                }),
                PageSource::Bytes(bytes) => {
                    resolved.entries.push(PagemapEntry {
                        page_index: idx,
                        zero: false,
                        in_parent: false,
                    });
                    resolved.payload.extend_from_slice(bytes);
                }
                PageSource::Parent => match parent_pages.get(&idx) {
                    Some(PageSource::Bytes(bytes)) => {
                        resolved.entries.push(PagemapEntry {
                            page_index: idx,
                            zero: false,
                            in_parent: false,
                        });
                        resolved.payload.extend_from_slice(bytes);
                    }
                    Some(PageSource::Zero) => resolved.entries.push(PagemapEntry {
                        page_index: idx,
                        zero: true,
                        in_parent: false,
                    }),
                    _ => return Err(ImageError::BadPages),
                },
            }
        }
        Ok(resolved)
    }

    /// Rewrites the image so pages listed in `order` come first, in that
    /// order, followed by the remaining entries in their original order —
    /// the fault-order *repack* layout. Payload moves with its entry, so
    /// a restore that walks the entries front-to-back (lazy/prefetch
    /// loading the working set) now reads the payload file sequentially
    /// instead of seeking. Indices in `order` that the image does not
    /// hold (or that repeat) are ignored. Guest contents are unchanged:
    /// the same `(page_index, bytes)` pairs come back, permuted.
    pub fn reordered(&self, order: &[u64]) -> PagesImage {
        use std::collections::BTreeMap;
        let mut by_index: BTreeMap<u64, usize> = BTreeMap::new();
        for (slot, e) in self.entries.iter().enumerate() {
            by_index.insert(e.page_index, slot);
        }
        let mut picked = vec![false; self.entries.len()];
        let mut slots: Vec<usize> = Vec::with_capacity(self.entries.len());
        for idx in order {
            if let Some(&slot) = by_index.get(idx) {
                if !picked[slot] {
                    picked[slot] = true;
                    slots.push(slot);
                }
            }
        }
        slots.extend((0..self.entries.len()).filter(|&s| !picked[s]));

        // Payload offset of each entry slot, for slicing out of order.
        let mut offsets = Vec::with_capacity(self.entries.len());
        let mut offset = 0usize;
        for e in &self.entries {
            offsets.push(offset);
            if !e.zero && !e.in_parent {
                offset += PAGE_SIZE;
            }
        }
        let mut out = PagesImage::default();
        for slot in slots {
            let e = self.entries[slot];
            out.entries.push(e);
            if !e.zero && !e.in_parent {
                let at = offsets[slot];
                out.payload
                    .extend_from_slice(&self.payload[at..at + PAGE_SIZE]);
            }
        }
        out
    }

    /// Splits the image into a *hot* layer and a *fallback* layer for
    /// compaction: stored pages whose index is in `hot_set` — plus every
    /// zero entry, which costs no payload — stay in the hot image;
    /// stored pages outside the set move to the fallback image. Both
    /// halves preserve this image's entry order, so composing a split
    /// with [`PagesImage::reordered`] keeps the fault-order layout of
    /// the hot half. Returns `None` when the image defers payload to a
    /// parent snapshot (compaction needs a self-contained image).
    pub fn split_hot(
        &self,
        hot_set: &std::collections::BTreeSet<u64>,
    ) -> Option<(PagesImage, PagesImage)> {
        if self.parent_pages() > 0 {
            return None;
        }
        let mut hot = PagesImage::default();
        let mut fallback = PagesImage::default();
        let mut offset = 0usize;
        for e in &self.entries {
            if e.zero {
                hot.entries.push(*e);
                continue;
            }
            let bytes = &self.payload[offset..offset + PAGE_SIZE];
            offset += PAGE_SIZE;
            let target = if hot_set.contains(&e.page_index) {
                &mut hot
            } else {
                &mut fallback
            };
            target.entries.push(*e);
            target.payload.extend_from_slice(bytes);
        }
        Some((hot, fallback))
    }
}

// --------------------------------------------------------------------- ws

/// `ws.img`: the working set recorded during the first post-restore
/// invocation — page indices in the *order* they were demand-faulted.
///
/// A prefetch-mode restore bulk-loads exactly these pages before
/// resuming the task (REAP's "record-and-prefetch"); everything else
/// stays missing and is served on demand. Order is preserved so a
/// streaming loader could begin with the pages needed soonest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WsImage {
    /// Faulted page indices, first fault first. Entries are unique: a
    /// resolved page can never refault.
    pub pages: Vec<u64>,
}

impl WsImage {
    /// Builds a working-set image from an ordered fault log (as returned
    /// by the kernel's `uffd_take_log`).
    pub fn from_fault_log(log: Vec<u64>) -> WsImage {
        WsImage { pages: log }
    }

    /// Number of recorded pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no faults were recorded.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Bytes the working set spans in guest memory.
    pub fn span_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE as u64
    }

    /// Serialises the working-set image.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_WS);
        w.u32(self.pages.len() as u32);
        for &p in &self.pages {
            w.u64(p);
        }
        w.finish()
    }

    /// Parses a working-set image.
    ///
    /// # Errors
    ///
    /// Any [`ImageError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<WsImage, ImageError> {
        let mut r = Reader::open(bytes, KIND_WS)?;
        let count = r.u32()?;
        let mut pages = Vec::with_capacity(count as usize);
        for _ in 0..count {
            pages.push(r.u64()?);
        }
        r.done()?;
        Ok(WsImage { pages })
    }
}

// -------------------------------------------------------------- pagestore

/// `pagestore.img`: the content-addressed dedup view of a snapshot's
/// stored pages.
///
/// Where `pages.img` stores one payload slot per stored page,
/// this image stores each *distinct* page content exactly once (a frame)
/// and a reference list mapping every stored guest page to its frame.
/// Two consequences:
///
/// - the image cache can charge a snapshot for its unique bytes only,
///   and share frames *across* snapshots of the same function;
/// - a copy-on-write restore can map frames into the replica instead of
///   byte-copying them, deferring the copy to first write.
///
/// On disk the store is *metadata only* — frame hashes plus the
/// reference table. The frame payload already lives in `pages.img`, so
/// serialising it again would double the snapshot's footprint;
/// [`PageStoreImage::parse`] rebuilds the in-memory payload from the
/// pages image instead, verifying every page against its frame's
/// declared content hash along the way.
///
/// Incremental dumps (entries deferring to a parent snapshot) have no
/// page-store view: their payload is split across files, so
/// [`PageStoreImage::from_pages`] returns `None` for them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageStoreImage {
    /// Content hash of each unique frame, in payload order.
    pub hashes: Vec<u64>,
    /// Concatenated unique page payload, one [`PAGE_SIZE`] slot per
    /// hash. In-memory only: [`PageStoreImage::encode`] does not write
    /// it, [`PageStoreImage::parse`] reconstructs it from `pages.img`.
    pub payload: Vec<u8>,
    /// `(page_index, frame_index)` for every non-zero stored page, in
    /// pagemap order. `frame_index` indexes [`PageStoreImage::hashes`].
    pub refs: Vec<(u64, u32)>,
}

impl PageStoreImage {
    /// Builds the dedup view of a self-contained pages image. Returns
    /// `None` when `pages` defers any payload to a parent snapshot
    /// (incremental dumps carry no page store).
    pub fn from_pages(pages: &PagesImage) -> Option<PageStoreImage> {
        use std::collections::HashMap;
        if pages.parent_pages() > 0 {
            return None;
        }
        let mut store = PageStoreImage::default();
        let mut frame_of: HashMap<u64, u32> = HashMap::new();
        for (page_index, src) in pages.iter_pages() {
            let bytes = match src {
                PageSource::Bytes(b) => b,
                PageSource::Zero => continue,
                PageSource::Parent => unreachable!("parent pages ruled out above"),
            };
            let hash = page_content_hash(bytes);
            let frame_idx = *frame_of.entry(hash).or_insert_with(|| {
                store.hashes.push(hash);
                store.payload.extend_from_slice(bytes);
                (store.hashes.len() - 1) as u32
            });
            store.refs.push((page_index, frame_idx));
        }
        Some(store)
    }

    /// Number of unique frames.
    pub fn unique_pages(&self) -> usize {
        self.hashes.len()
    }

    /// Number of referencing guest pages (equals the pages image's
    /// stored-page count).
    pub fn total_refs(&self) -> usize {
        self.refs.len()
    }

    /// Stored pages whose payload another page already carries.
    pub fn duplicate_pages(&self) -> usize {
        self.refs.len() - self.hashes.len()
    }

    /// Bytes of unique page payload.
    pub fn unique_bytes(&self) -> u64 {
        self.payload.len() as u64
    }

    /// Payload slice of frame `frame_index`.
    pub fn frame_bytes(&self, frame_index: u32) -> &[u8] {
        let at = frame_index as usize * PAGE_SIZE;
        &self.payload[at..at + PAGE_SIZE]
    }

    /// Iterates `(page_index, frame_hash, frame_bytes)` over every
    /// reference, in pagemap order.
    pub fn iter_refs(&self) -> impl Iterator<Item = (u64, u64, &[u8])> {
        self.refs.iter().map(|&(page_index, frame_idx)| {
            (
                page_index,
                self.hashes[frame_idx as usize],
                self.frame_bytes(frame_idx),
            )
        })
    }

    /// Serialises the page-store image: frame hashes and the reference
    /// table, *not* the payload — that ships once, in `pages.img`.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_PAGESTORE);
        w.u32(self.hashes.len() as u32);
        for &h in &self.hashes {
            w.u64(h);
        }
        w.u32(self.refs.len() as u32);
        for &(page_index, frame_idx) in &self.refs {
            w.u64(page_index);
            w.u32(frame_idx);
        }
        w.finish()
    }

    /// Parses a page-store image against the pages image it mirrors,
    /// rebuilding the in-memory frame payload from the stored pages and
    /// verifying every page's content against its frame's declared hash.
    ///
    /// # Errors
    ///
    /// [`ImageError::BadPageStore`] when the reference table does not
    /// line up with `pages` (count, page order, or frame range), when a
    /// page's content does not hash to its frame's declared value, or
    /// when a frame is never referenced; or any codec error.
    pub fn parse(bytes: &[u8], pages: &PagesImage) -> Result<PageStoreImage, ImageError> {
        let mut r = Reader::open(bytes, KIND_PAGESTORE)?;
        let frame_count = r.u32()? as usize;
        let mut hashes = Vec::with_capacity(frame_count);
        for _ in 0..frame_count {
            hashes.push(r.u64()?);
        }
        let ref_count = r.u32()? as usize;
        let mut refs = Vec::with_capacity(ref_count);
        for _ in 0..ref_count {
            refs.push((r.u64()?, r.u32()?));
        }
        r.done()?;

        if ref_count != pages.stored_pages() {
            return Err(ImageError::BadPageStore);
        }
        let mut payload = vec![0u8; frame_count * PAGE_SIZE];
        let mut filled = vec![false; frame_count];
        let stored = pages.iter_pages().filter_map(|(idx, src)| match src {
            PageSource::Bytes(b) => Some((idx, b)),
            _ => None,
        });
        for (&(page_index, frame_idx), (idx, bytes)) in refs.iter().zip(stored) {
            let frame_idx = frame_idx as usize;
            if frame_idx >= frame_count
                || idx != page_index
                || page_content_hash(bytes) != hashes[frame_idx]
            {
                return Err(ImageError::BadPageStore);
            }
            if !filled[frame_idx] {
                payload[frame_idx * PAGE_SIZE..(frame_idx + 1) * PAGE_SIZE].copy_from_slice(bytes);
                filled[frame_idx] = true;
            }
        }
        if filled.iter().any(|&f| !f) {
            return Err(ImageError::BadPageStore);
        }
        Ok(PageStoreImage {
            hashes,
            payload,
            refs,
        })
    }

    /// Checks the store against the pages image it claims to mirror:
    /// same stored pages, identical payload per page.
    ///
    /// # Errors
    ///
    /// [`ImageError::BadPageStore`] when the views disagree.
    pub fn verify_against(&self, pages: &PagesImage) -> Result<(), ImageError> {
        let mut refs = self.iter_refs();
        for (page_index, src) in pages.iter_pages() {
            let bytes = match src {
                PageSource::Bytes(b) => b,
                PageSource::Zero => continue,
                PageSource::Parent => return Err(ImageError::BadPageStore),
            };
            match refs.next() {
                Some((idx, _, frame)) if idx == page_index && frame == bytes => {}
                _ => return Err(ImageError::BadPageStore),
            }
        }
        if refs.next().is_some() {
            return Err(ImageError::BadPageStore);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- extents

/// One coalesced pagemap run: `pages` consecutive guest pages starting
/// at `start_index`, all backed by payload stored contiguously in
/// `pages.img`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageExtent {
    /// First guest page index of the run.
    pub start_index: u64,
    /// Run length in pages (always ≥ 1).
    pub pages: u32,
}

impl PageExtent {
    /// One past the last page index of the run.
    pub fn end_index(&self) -> u64 {
        self.start_index + self.pages as u64
    }
}

/// `extents.img`: the coalesced view of the pagemap — maximal runs of
/// consecutive-index *stored* pages (zero and parent-deferred entries
/// break runs, since their payload is not in `pages.img`).
///
/// A vectored restore walks this table instead of the per-page pagemap:
/// each run becomes one scatter-gather operation (`copy_extent`,
/// `cow_map_extent`, vectored prefetch) — the `preadv`/iovec batching
/// real CRIU uses to amortise per-page syscall overhead. The table is
/// derivable from the pagemap, so the file is optional: old per-page
/// images parse unchanged and a restore can recompute the runs on the
/// fly via [`ExtentsImage::from_pages`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExtentsImage {
    /// Coalesced runs in ascending `start_index` order.
    pub extents: Vec<PageExtent>,
}

impl ExtentsImage {
    /// Coalesces a pages image into maximal stored-page runs.
    pub fn from_pages(pages: &PagesImage) -> ExtentsImage {
        let mut extents: Vec<PageExtent> = Vec::new();
        for (page_index, src) in pages.iter_pages() {
            if !matches!(src, PageSource::Bytes(_)) {
                continue;
            }
            match extents.last_mut() {
                Some(run) if run.end_index() == page_index => run.pages += 1,
                _ => extents.push(PageExtent {
                    start_index: page_index,
                    pages: 1,
                }),
            }
        }
        ExtentsImage { extents }
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Whether the table holds no runs.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Total pages covered by all runs (equals the pages image's
    /// stored-page count).
    pub fn covered_pages(&self) -> u64 {
        self.extents.iter().map(|e| e.pages as u64).sum()
    }

    /// Serialises the extent table.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_EXTENTS);
        w.u32(self.extents.len() as u32);
        for e in &self.extents {
            w.u64(e.start_index);
            w.u32(e.pages);
        }
        w.finish()
    }

    /// Parses an extent table and checks it against the pages image it
    /// claims to coalesce.
    ///
    /// # Errors
    ///
    /// [`ImageError::BadExtents`] when the runs do not exactly match the
    /// coalescing of `pages` (coverage, order, or adjacency), or any
    /// codec error.
    pub fn parse(bytes: &[u8], pages: &PagesImage) -> Result<ExtentsImage, ImageError> {
        let mut r = Reader::open(bytes, KIND_EXTENTS)?;
        let count = r.u32()?;
        let mut extents = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let start_index = r.u64()?;
            let pages = r.u32()?;
            if pages == 0 {
                return Err(ImageError::BadExtents);
            }
            extents.push(PageExtent { start_index, pages });
        }
        r.done()?;
        let parsed = ExtentsImage { extents };
        if parsed != ExtentsImage::from_pages(pages) {
            return Err(ImageError::BadExtents);
        }
        Ok(parsed)
    }
}

// ------------------------------------------------------------------ files

/// `files.img`: the dumped descriptor table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FilesImage {
    /// `(fd, entry)` pairs in descriptor order.
    pub fds: Vec<(i32, FdEntry)>,
}

impl FilesImage {
    /// Serialises the files image.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(KIND_FILES);
        w.u32(self.fds.len() as u32);
        for (fd, entry) in &self.fds {
            w.i32(*fd);
            match entry {
                FdEntry::File { path, offset } => {
                    w.u8(0);
                    w.string(path);
                    w.u64(*offset);
                }
                FdEntry::PipeRead { pipe } => {
                    w.u8(1);
                    w.u64(*pipe);
                }
                FdEntry::PipeWrite { pipe } => {
                    w.u8(2);
                    w.u64(*pipe);
                }
                FdEntry::Listener { port } => {
                    w.u8(3);
                    w.u16(*port);
                }
            }
        }
        w.finish()
    }

    /// Parses a files image.
    ///
    /// # Errors
    ///
    /// Any [`ImageError`] describing the malformation.
    pub fn parse(bytes: &[u8]) -> Result<FilesImage, ImageError> {
        let mut r = Reader::open(bytes, KIND_FILES)?;
        let count = r.u32()?;
        let mut fds = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let fd = r.i32()?;
            let entry = match r.u8()? {
                0 => FdEntry::File {
                    path: r.string()?,
                    offset: r.u64()?,
                },
                1 => FdEntry::PipeRead { pipe: r.u64()? },
                2 => FdEntry::PipeWrite { pipe: r.u64()? },
                3 => FdEntry::Listener { port: r.u16()? },
                t => return Err(ImageError::BadTag(t)),
            };
            fds.push((fd, entry));
        }
        r.done()?;
        Ok(FilesImage { fds })
    }
}

// -------------------------------------------------------------- image set

/// A complete checkpoint: every image of one dumped process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageSet {
    /// Task identity.
    pub core: CoreImage,
    /// Memory layout.
    pub mm: MmImage,
    /// Page contents.
    pub pages: PagesImage,
    /// Descriptor table.
    pub files: FilesImage,
    /// Recorded first-invocation working set, if a record-mode run has
    /// produced one (`ws.img` is optional: eager and plain-lazy restores
    /// work without it).
    pub ws: Option<WsImage>,
    /// Content-addressed dedup view of the stored pages
    /// (`pagestore.img`). Optional: pre-dedup snapshots and incremental
    /// dumps lack it, and every non-CoW restore path ignores it.
    pub pagestore: Option<PageStoreImage>,
    /// Coalesced pagemap runs (`extents.img`). Optional: old per-page
    /// images lack it and a vectored restore recomputes the runs from
    /// the pagemap instead.
    pub extents: Option<ExtentsImage>,
    /// Compaction fallback layer (`fallback-pagemap.img` +
    /// `fallback-pages.img`): the never-faulted stored pages a
    /// `--compact` repack dropped out of the hot image. Optional; when
    /// present, `pages` holds only the hot working set and a restore
    /// must register these pages for demand paging — each fault into
    /// them pays the kernel's `fault_fallback` penalty.
    pub fallback: Option<PagesImage>,
}

impl ImageSet {
    /// File names within an images directory, mirroring CRIU.
    pub const CORE_NAME: &'static str = "core.img";
    /// `mm.img`.
    pub const MM_NAME: &'static str = "mm.img";
    /// `pagemap.img`.
    pub const PAGEMAP_NAME: &'static str = "pagemap.img";
    /// `pages.img`.
    pub const PAGES_NAME: &'static str = "pages.img";
    /// `files.img`.
    pub const FILES_NAME: &'static str = "files.img";
    /// `ws.img` — the recorded working set (optional).
    pub const WS_NAME: &'static str = "ws.img";
    /// `pagestore.img` — the content-addressed dedup view (optional).
    pub const PAGESTORE_NAME: &'static str = "pagestore.img";
    /// `extents.img` — the coalesced pagemap runs (optional).
    pub const EXTENTS_NAME: &'static str = "extents.img";
    /// `fallback-pagemap.img` — pagemap of the compaction fallback layer
    /// (optional; only `--compact` repacks write it).
    pub const FALLBACK_PAGEMAP_NAME: &'static str = "fallback-pagemap.img";
    /// `fallback-pages.img` — payload of the compaction fallback layer
    /// (optional).
    pub const FALLBACK_PAGES_NAME: &'static str = "fallback-pages.img";
    /// The parent link file written by incremental dumps (CRIU uses a
    /// symlink named `parent`; we store the path as file contents).
    pub const PARENT_LINK: &'static str = "parent";

    /// Builds a set from named file contents (as exported from a builder
    /// machine or stored in a container image). Parent references must
    /// already be resolved — sets with a parent link cannot be
    /// reassembled host-side.
    ///
    /// # Errors
    ///
    /// [`ImageError::Truncated`] if a file is missing, or any codec error.
    pub fn parse_files(files: &[(String, impl AsRef<[u8]>)]) -> Result<ImageSet, ImageError> {
        let get = |name: &str| -> Result<&[u8], ImageError> {
            files
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| d.as_ref())
                .ok_or(ImageError::Truncated)
        };
        let ws = match get(ImageSet::WS_NAME) {
            Ok(bytes) => Some(WsImage::parse(bytes)?),
            Err(_) => None,
        };
        let pages = PagesImage::parse(get(ImageSet::PAGEMAP_NAME)?, get(ImageSet::PAGES_NAME)?)?;
        let pagestore = match get(ImageSet::PAGESTORE_NAME) {
            Ok(bytes) => Some(PageStoreImage::parse(bytes, &pages)?),
            Err(_) => None,
        };
        let extents = match get(ImageSet::EXTENTS_NAME) {
            Ok(bytes) => Some(ExtentsImage::parse(bytes, &pages)?),
            Err(_) => None,
        };
        let fallback = match (
            get(ImageSet::FALLBACK_PAGEMAP_NAME),
            get(ImageSet::FALLBACK_PAGES_NAME),
        ) {
            (Ok(pagemap), Ok(payload)) => Some(PagesImage::parse(pagemap, payload)?),
            _ => None,
        };
        Ok(ImageSet {
            core: CoreImage::parse(get(ImageSet::CORE_NAME)?)?,
            mm: MmImage::parse(get(ImageSet::MM_NAME)?)?,
            pages,
            files: FilesImage::parse(get(ImageSet::FILES_NAME)?)?,
            ws,
            pagestore,
            extents,
            fallback,
        })
    }

    /// Total serialised size across all image files — `ws.img`,
    /// `pagestore.img`, `extents.img` and the compaction fallback layer
    /// included.
    pub fn total_bytes(&self) -> u64 {
        self.hot_bytes()
            + self.fallback.as_ref().map_or(0, |f| {
                (f.encode_pagemap().len() + f.encode_pages().len()) as u64
            })
    }

    /// Bytes on a cold start's critical path: every image file *except*
    /// the compaction fallback layer, which is only opened when a fault
    /// misses the hot set. This is what `--compact` shrinks — and what a
    /// registry tier ships to a node ahead of a start. Equals
    /// [`ImageSet::total_bytes`] for uncompacted sets.
    pub fn hot_bytes(&self) -> u64 {
        (self.core.encode().len()
            + self.mm.encode().len()
            + self.pages.encode_pagemap().len()
            + self.pages.encode_pages().len()
            + self.files.encode().len()
            + self.ws.as_ref().map_or(0, |w| w.encode().len())
            + self.pagestore.as_ref().map_or(0, |p| p.encode().len())
            + self.extents.as_ref().map_or(0, |e| e.encode().len())) as u64
    }

    /// The extent view to restore by: the dumped table when present, a
    /// fresh coalescing of the pagemap otherwise (old per-page images).
    pub fn extent_view(&self) -> ExtentsImage {
        self.extents
            .clone()
            .unwrap_or_else(|| ExtentsImage::from_pages(&self.pages))
    }

    /// Bytes this set contributes *besides* page payload: metadata images
    /// plus the page-store's reference table and frame hashes (the store
    /// carries no payload on disk). A dedup-aware cache charges this base
    /// per snapshot and the unique frame payload once per distinct frame
    /// across all residents.
    pub fn non_payload_bytes(&self) -> u64 {
        let stored =
            self.pages.stored_pages() + self.fallback.as_ref().map_or(0, |f| f.stored_pages());
        self.total_bytes() - (stored * PAGE_SIZE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_core() -> CoreImage {
        CoreImage {
            pid: Pid(42),
            comm: "jlvm".into(),
            cmdline: vec!["jlvm".into(), "/app/fn.jlar".into()],
            cap_bits: 0b100,
            threads: vec![
                ThreadImage {
                    tid: Tid(42),
                    regs: Regs {
                        ip: 0x1234,
                        sp: 0x7FFF_0000,
                    },
                },
                ThreadImage {
                    tid: Tid(43),
                    regs: Regs {
                        ip: 0x9999,
                        sp: 0x7FFE_0000,
                    },
                },
            ],
        }
    }

    fn sample_mm() -> MmImage {
        MmImage {
            vmas: vec![
                Vma {
                    start: VirtAddr(0x1000_0000),
                    len: 0x10000,
                    prot: Prot::RX,
                    kind: VmaKind::Binary {
                        path: "/bin/jlvm".into(),
                    },
                },
                Vma {
                    start: VirtAddr(0x2000_0000),
                    len: 0x4000,
                    prot: Prot::RW,
                    kind: VmaKind::File {
                        path: "/app/fn.jlar".into(),
                        offset: 0,
                    },
                },
                Vma {
                    start: VirtAddr(0x3000_0000),
                    len: 0x2000,
                    prot: Prot::RWX,
                    kind: VmaKind::CodeCache,
                },
            ],
        }
    }

    #[test]
    fn core_roundtrip() {
        let c = sample_core();
        assert_eq!(CoreImage::parse(&c.encode()).unwrap(), c);
    }

    #[test]
    fn mm_roundtrip() {
        let m = sample_mm();
        assert_eq!(MmImage::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn pages_roundtrip_with_zero_dedup() {
        let mut p = PagesImage::default();
        let mut data = Page::zeroed();
        data.bytes_mut()[17] = 0xAB;
        p.push(100, &data);
        p.push(101, &Page::zeroed());
        p.push(102, &data);
        assert_eq!(p.stored_pages(), 2);
        assert_eq!(p.zero_pages(), 1);

        let back = PagesImage::parse(&p.encode_pagemap(), &p.encode_pages()).unwrap();
        assert_eq!(back, p);
        let collected: Vec<(u64, bool)> = back
            .iter_pages()
            .map(|(i, src)| (i, matches!(src, PageSource::Bytes(_))))
            .collect();
        assert_eq!(collected, vec![(100, true), (101, false), (102, true)]);
        let first = back.iter_pages().next().unwrap().1;
        match first {
            PageSource::Bytes(first) => assert_eq!(first[17], 0xAB),
            other => panic!("expected payload, got {other:?}"),
        };
    }

    #[test]
    fn parent_refs_roundtrip_and_resolve() {
        // Parent holds pages 10 (data) and 11 (zero).
        let mut parent = PagesImage::default();
        let mut data = Page::zeroed();
        data.bytes_mut().fill(0x77);
        parent.push(10, &data);
        parent.push(11, &Page::zeroed());

        // Child: page 10 unchanged (parent ref), 11 unchanged (parent
        // ref), 12 freshly written.
        let mut child = PagesImage::default();
        child.push_parent_ref(10);
        child.push_parent_ref(11);
        let mut fresh = Page::zeroed();
        fresh.bytes_mut().fill(0x33);
        child.push(12, &fresh);

        assert_eq!(child.parent_pages(), 2);
        assert_eq!(child.stored_pages(), 1);
        let back = PagesImage::parse(&child.encode_pagemap(), &child.encode_pages()).unwrap();
        assert_eq!(back, child);

        let resolved = back.resolve_parent(&parent).unwrap();
        assert_eq!(resolved.parent_pages(), 0);
        assert_eq!(resolved.stored_pages(), 2, "10 and 12 carry payload");
        assert_eq!(resolved.zero_pages(), 1, "11 stays zero");
        let bytes: Vec<(u64, bool)> = resolved
            .iter_pages()
            .map(|(i, s)| (i, matches!(s, PageSource::Bytes(_))))
            .collect();
        assert_eq!(bytes, vec![(10, true), (11, false), (12, true)]);
    }

    #[test]
    fn resolve_missing_parent_page_fails() {
        let mut child = PagesImage::default();
        child.push_parent_ref(99);
        let empty = PagesImage::default();
        assert_eq!(child.resolve_parent(&empty), Err(ImageError::BadPages));
    }

    #[test]
    fn pages_payload_mismatch_detected() {
        let mut p = PagesImage::default();
        let mut data = Page::zeroed();
        data.bytes_mut()[0] = 1;
        p.push(5, &data);
        let pagemap = p.encode_pagemap();
        // Claim the page but strip the payload.
        let empty = PagesImage::default().encode_pages();
        assert_eq!(
            PagesImage::parse(&pagemap, &empty),
            Err(ImageError::BadPages)
        );
    }

    #[test]
    fn files_roundtrip() {
        let f = FilesImage {
            fds: vec![
                (
                    3,
                    FdEntry::File {
                        path: "/app/fn.jlar".into(),
                        offset: 99,
                    },
                ),
                (4, FdEntry::Listener { port: 8080 }),
                (5, FdEntry::PipeRead { pipe: 7 }),
                (6, FdEntry::PipeWrite { pipe: 7 }),
            ],
        };
        assert_eq!(FilesImage::parse(&f.encode()).unwrap(), f);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample_core().encode();
        bytes[9] ^= 0xFF;
        assert_eq!(CoreImage::parse(&bytes), Err(ImageError::BadChecksum));
    }

    #[test]
    fn kind_confusion_detected() {
        let core_bytes = sample_core().encode();
        assert!(matches!(
            MmImage::parse(&core_bytes),
            Err(ImageError::WrongKind { .. })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_mm().encode();
        assert_eq!(MmImage::parse(&bytes[..5]), Err(ImageError::Truncated));
    }

    #[test]
    fn image_set_total_bytes_dominated_by_pages() {
        let mut pages = PagesImage::default();
        let mut page = Page::zeroed();
        page.bytes_mut().fill(0x5A);
        for i in 0..100 {
            pages.push(i, &page);
        }
        let set = ImageSet {
            core: sample_core(),
            mm: sample_mm(),
            pages,
            files: FilesImage::default(),
            ws: None,
            pagestore: None,
            extents: None,
            fallback: None,
        };
        let total = set.total_bytes();
        assert!(total > 100 * PAGE_SIZE as u64);
        assert!(total < 110 * PAGE_SIZE as u64);
        // A working set adds its serialised bytes to the total.
        let mut with_ws = set.clone();
        with_ws.ws = Some(WsImage::from_fault_log((0..50).collect()));
        assert_eq!(
            with_ws.total_bytes(),
            total + with_ws.ws.as_ref().unwrap().encode().len() as u64
        );
    }

    #[test]
    fn ws_roundtrip_preserves_order() {
        let ws = WsImage::from_fault_log(vec![900, 3, 77, 12]);
        assert_eq!(ws.len(), 4);
        assert!(!ws.is_empty());
        assert_eq!(ws.span_bytes(), 4 * PAGE_SIZE as u64);
        let back = WsImage::parse(&ws.encode()).unwrap();
        assert_eq!(back, ws);
        assert_eq!(back.pages, vec![900, 3, 77, 12], "fault order kept");

        let empty = WsImage::default();
        assert!(empty.is_empty());
        assert_eq!(WsImage::parse(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn ws_corruption_and_kind_confusion_detected() {
        let mut bytes = WsImage::from_fault_log(vec![1, 2, 3]).encode();
        bytes[9] ^= 0xFF;
        assert_eq!(WsImage::parse(&bytes), Err(ImageError::BadChecksum));
        assert!(matches!(
            WsImage::parse(&sample_core().encode()),
            Err(ImageError::WrongKind { .. })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ImageError::Truncated,
            ImageError::BadPages,
            ImageError::BadPageStore,
            ImageError::BadTag(9),
            ImageError::WrongKind {
                expected: 1,
                found: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    fn filled(fill: u8) -> Page {
        let mut p = Page::zeroed();
        p.bytes_mut().fill(fill);
        p
    }

    #[test]
    fn pagestore_dedups_identical_pages() {
        let mut pages = PagesImage::default();
        pages.push(10, &filled(0xAA));
        pages.push(11, &filled(0xBB));
        pages.push(12, &Page::zeroed());
        pages.push(13, &filled(0xAA));
        pages.push(14, &filled(0xAA));

        let store = PageStoreImage::from_pages(&pages).unwrap();
        assert_eq!(store.unique_pages(), 2, "0xAA and 0xBB frames");
        assert_eq!(store.total_refs(), 4, "zero page carries no ref");
        assert_eq!(store.duplicate_pages(), 2);
        assert_eq!(store.unique_bytes(), 2 * PAGE_SIZE as u64);
        store.verify_against(&pages).unwrap();

        let refs: Vec<(u64, u8)> = store
            .iter_refs()
            .map(|(idx, _, bytes)| (idx, bytes[0]))
            .collect();
        assert_eq!(refs, vec![(10, 0xAA), (11, 0xBB), (13, 0xAA), (14, 0xAA)]);
        let (_, h13, _) = store.iter_refs().nth(2).unwrap();
        let (_, h10, _) = store.iter_refs().next().unwrap();
        assert_eq!(h10, h13, "identical content shares one hash");
    }

    #[test]
    fn pagestore_roundtrip_and_validation() {
        let mut pages = PagesImage::default();
        pages.push(1, &filled(1));
        pages.push(2, &filled(2));
        pages.push(3, &filled(1));
        let store = PageStoreImage::from_pages(&pages).unwrap();
        // The encoding is metadata-only; parse rebuilds the payload from
        // the pages image and lands on the identical in-memory store.
        assert!(store.encode().len() < PAGE_SIZE, "no payload on disk");
        let back = PageStoreImage::parse(&store.encode(), &pages).unwrap();
        assert_eq!(back, store);

        // Flipping a page byte breaks its frame's declared content hash.
        let mut tampered = pages.clone();
        tampered.payload[100] ^= 0xFF;
        assert_eq!(
            PageStoreImage::parse(&store.encode(), &tampered),
            Err(ImageError::BadPageStore)
        );

        // A declared hash no page hashes to is rejected.
        let mut bad_hash = store.clone();
        bad_hash.hashes[0] ^= 1;
        assert_eq!(
            PageStoreImage::parse(&bad_hash.encode(), &pages),
            Err(ImageError::BadPageStore)
        );

        // A reference list that disagrees with the pagemap is rejected.
        let mut oob = store.clone();
        oob.refs.push((9, 99));
        assert_eq!(
            PageStoreImage::parse(&oob.encode(), &pages),
            Err(ImageError::BadPageStore)
        );

        // verify_against catches a store for the wrong pages image.
        let mut other = PagesImage::default();
        other.push(1, &filled(7));
        assert_eq!(store.verify_against(&other), Err(ImageError::BadPageStore));
    }

    #[test]
    fn pagestore_absent_for_incremental_dumps() {
        let mut pages = PagesImage::default();
        pages.push(1, &filled(1));
        pages.push_parent_ref(2);
        assert!(PageStoreImage::from_pages(&pages).is_none());
    }

    #[test]
    fn extents_coalesce_stored_runs_only() {
        let mut pages = PagesImage::default();
        pages.push(10, &filled(1));
        pages.push(11, &filled(2));
        pages.push(12, &Page::zeroed()); // zero breaks the run
        pages.push(13, &filled(3));
        pages.push(20, &filled(4)); // index gap breaks the run
        pages.push(21, &filled(5));
        let ext = ExtentsImage::from_pages(&pages);
        assert_eq!(
            ext.extents,
            vec![
                PageExtent {
                    start_index: 10,
                    pages: 2
                },
                PageExtent {
                    start_index: 13,
                    pages: 1
                },
                PageExtent {
                    start_index: 20,
                    pages: 2
                },
            ]
        );
        assert_eq!(ext.len(), 3);
        assert!(!ext.is_empty());
        assert_eq!(ext.covered_pages() as usize, pages.stored_pages());
        assert_eq!(ext.extents[0].end_index(), 12);
    }

    #[test]
    fn extents_break_at_parent_refs() {
        let mut pages = PagesImage::default();
        pages.push(5, &filled(1));
        pages.push_parent_ref(6);
        pages.push(7, &filled(2));
        let ext = ExtentsImage::from_pages(&pages);
        assert_eq!(ext.len(), 2, "parent-deferred page is not in pages.img");
        assert_eq!(ext.covered_pages(), 2);
    }

    #[test]
    fn extents_roundtrip_and_validation() {
        let mut pages = PagesImage::default();
        pages.push(1, &filled(1));
        pages.push(2, &filled(2));
        pages.push(9, &filled(3));
        let ext = ExtentsImage::from_pages(&pages);
        let back = ExtentsImage::parse(&ext.encode(), &pages).unwrap();
        assert_eq!(back, ext);

        // An empty table round-trips against an all-zero image.
        let mut zeros = PagesImage::default();
        zeros.push(1, &Page::zeroed());
        let empty = ExtentsImage::from_pages(&zeros);
        assert!(empty.is_empty());
        assert_eq!(ExtentsImage::parse(&empty.encode(), &zeros).unwrap(), empty);

        // A table that disagrees with the pagemap is rejected.
        assert_eq!(
            ExtentsImage::parse(&ext.encode(), &zeros),
            Err(ImageError::BadExtents)
        );
        let mut bad = ext.clone();
        bad.extents[0].pages = 0;
        assert_eq!(
            ExtentsImage::parse(&bad.encode(), &pages),
            Err(ImageError::BadExtents)
        );
        assert!(matches!(
            ExtentsImage::parse(&sample_core().encode(), &pages),
            Err(ImageError::WrongKind { .. })
        ));
    }

    #[test]
    fn image_set_extent_view_derives_when_absent() {
        let mut pages = PagesImage::default();
        pages.push(3, &filled(1));
        pages.push(4, &filled(2));
        let ext = ExtentsImage::from_pages(&pages);
        let mut set = ImageSet {
            core: sample_core(),
            mm: sample_mm(),
            pages,
            files: FilesImage::default(),
            ws: None,
            pagestore: None,
            extents: None,
            fallback: None,
        };
        let without = set.total_bytes();
        assert_eq!(set.extent_view(), ext, "derived from the pagemap");
        set.extents = Some(ext.clone());
        assert_eq!(set.extent_view(), ext, "dumped table preferred");
        assert_eq!(
            set.total_bytes(),
            without + ext.encode().len() as u64,
            "extent table counts toward the set's footprint"
        );
    }

    #[test]
    fn image_set_charges_pagestore_and_exposes_non_payload_base() {
        let mut pages = PagesImage::default();
        for i in 0..8 {
            pages.push(i, &filled(0x11)); // 8 refs, 1 unique frame
        }
        let store = PageStoreImage::from_pages(&pages).unwrap();
        let without = ImageSet {
            core: sample_core(),
            mm: sample_mm(),
            pages,
            files: FilesImage::default(),
            ws: None,
            pagestore: None,
            extents: None,
            fallback: None,
        };
        let mut with = without.clone();
        with.pagestore = Some(store.clone());

        assert_eq!(
            with.total_bytes(),
            without.total_bytes() + store.encode().len() as u64
        );
        // The store adds only its table to the total: payload still ships
        // once, in `pages.img`. The non-payload base grows by exactly the
        // table overhead — well under one page.
        let plain_base = without.total_bytes() - 8 * PAGE_SIZE as u64;
        let dedup_base = with.non_payload_bytes();
        assert_eq!(dedup_base, plain_base + store.encode().len() as u64);
        assert!(
            dedup_base < plain_base + PAGE_SIZE as u64,
            "table, not payload"
        );
    }
}
