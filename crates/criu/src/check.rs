//! Checkpoint-image validation (`criu check` / `crit` analogue).
//!
//! Platforms that ship snapshots inside container images (paper §5) want
//! to validate them at push time rather than discover corruption during
//! a production restore. [`check`] parses every image file and
//! cross-validates the set: pagemap entries must fall inside dumped
//! VMAs, descriptors and ports must be unique, parent links must
//! resolve.

use std::collections::BTreeSet;
use std::fmt;

use prebake_sim::error::{Errno, SysResult};
use prebake_sim::kernel::Kernel;
use prebake_sim::mem::PAGE_SIZE;
use prebake_sim::proc::FdEntry;

use crate::dump::read_images;
use crate::image::{ImageSet, PageSource};

/// Result of validating one images directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Dumped pid.
    pub pid: u32,
    /// Mappings in `mm.img`.
    pub vmas: usize,
    /// Pagemap entries.
    pub pages: usize,
    /// Pages with payload stored.
    pub pages_stored: usize,
    /// Zero-deduplicated pages.
    pub zero_pages: usize,
    /// Distinct page frames in `pagestore.img`, when the snapshot
    /// carries one (`None` for pre-dedup or incremental images).
    pub pages_unique: Option<usize>,
    /// Open descriptors recorded.
    pub fds: usize,
    /// Threads recorded.
    pub threads: usize,
    /// Non-fatal oddities worth surfacing.
    pub warnings: Vec<String>,
}

impl CheckReport {
    /// `true` when the images are usable and nothing looked odd.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "images ok: pid {}, {} vmas, {} pages ({} stored, {} zero), {} fds, {} threads",
            self.pid,
            self.vmas,
            self.pages,
            self.pages_stored,
            self.zero_pages,
            self.fds,
            self.threads
        )?;
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

/// Validates the checkpoint in `images_dir`.
///
/// # Errors
///
/// [`Errno::Enoent`] for missing files, [`Errno::Einval`] for corrupt or
/// structurally inconsistent images (a pagemap entry outside every VMA,
/// duplicate page indices, duplicate descriptors or listener ports, or
/// an empty thread set).
pub fn check(kernel: &mut Kernel, images_dir: &str) -> SysResult<CheckReport> {
    let set: ImageSet = read_images(kernel, images_dir)?;

    // Threads and identity.
    if set.core.threads.is_empty() {
        return Err(Errno::Einval);
    }
    let mut warnings = Vec::new();
    if set.core.comm.is_empty() {
        warnings.push("empty comm".to_owned());
    }

    // VMAs must not overlap (mirrors the kernel invariant).
    for (i, a) in set.mm.vmas.iter().enumerate() {
        for b in &set.mm.vmas[i + 1..] {
            if a.overlaps(b) {
                return Err(Errno::Einval);
            }
        }
    }

    // Every pagemap entry inside some VMA; no duplicates.
    let mut seen = BTreeSet::new();
    for (idx, _) in set.pages.iter_pages() {
        if !seen.insert(idx) {
            return Err(Errno::Einval);
        }
        let addr = prebake_sim::mem::VirtAddr(idx * PAGE_SIZE as u64);
        if !set.mm.vmas.iter().any(|v| v.contains(addr)) {
            return Err(Errno::Einval);
        }
    }
    // read_images resolves parents; an unresolved ref is a hard error.
    if set
        .pages
        .iter_pages()
        .any(|(_, s)| matches!(s, PageSource::Parent))
    {
        return Err(Errno::Einval);
    }

    // Descriptors: unique fd numbers and listener ports.
    let mut fds = BTreeSet::new();
    let mut ports = BTreeSet::new();
    for (fd, entry) in &set.files.fds {
        if !fds.insert(*fd) {
            return Err(Errno::Einval);
        }
        if let FdEntry::Listener { port } = entry {
            if !ports.insert(*port) {
                return Err(Errno::Einval);
            }
        }
    }
    if ports.is_empty() {
        warnings.push("no listener socket: restored replica cannot serve".to_owned());
    }
    if set.pages.stored_pages() == 0 {
        warnings.push("no page payload: snapshot is empty".to_owned());
    }

    // Page store (when present) must mirror the pages image exactly —
    // a divergent dedup view would CoW-restore the wrong bytes.
    let pages_unique = match &set.pagestore {
        Some(store) => {
            store
                .verify_against(&set.pages)
                .map_err(|_| Errno::Einval)?;
            Some(store.unique_pages())
        }
        None => {
            warnings.push("no page store: CoW restore unavailable".to_owned());
            None
        }
    };

    Ok(CheckReport {
        pid: set.core.pid.0,
        vmas: set.mm.vmas.len(),
        pages: set.pages.entries.len(),
        pages_stored: set.pages.stored_pages(),
        zero_pages: set.pages.zero_pages(),
        pages_unique,
        fds: set.files.fds.len(),
        threads: set.core.threads.len(),
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{dump, DumpOptions};
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VmaKind};

    fn checkpointed() -> (Kernel, String) {
        let mut k = Kernel::free(1);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 4 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        k.mem_write(target, addr, &[5u8; 100]).unwrap();
        k.sys_listen(target, 8080).unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, "/img".to_owned())
    }

    #[test]
    fn healthy_images_check_clean() {
        let (mut k, dir) = checkpointed();
        let report = check(&mut k, &dir).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.vmas, 1);
        assert_eq!(report.fds, 1);
        assert_eq!(report.pages_stored, 1);
        assert!(report.to_string().contains("images ok"));
    }

    #[test]
    fn missing_dir_is_enoent() {
        let mut k = Kernel::free(2);
        assert_eq!(check(&mut k, "/nope").unwrap_err(), Errno::Enoent);
    }

    #[test]
    fn corrupt_pagemap_detected() {
        let (mut k, dir) = checkpointed();
        let path = format!("{dir}/pagemap.img");
        let (data, _) = k.fs_mut().read_file(&path).unwrap();
        let mut bad = data.to_vec();
        let n = bad.len();
        bad[n / 2] ^= 0xF0;
        k.fs_mut().write_file(&path, bad).unwrap();
        assert_eq!(check(&mut k, &dir).unwrap_err(), Errno::Einval);
    }

    #[test]
    fn divergent_page_store_detected() {
        let (mut k, dir) = checkpointed();
        // Re-point the store at different (self-consistent) content: it
        // parses fine but no longer mirrors pages.img.
        let mut pages = crate::image::PagesImage::default();
        let mut page = prebake_sim::mem::Page::zeroed();
        page.bytes_mut().fill(0x99);
        pages.push(0, &page);
        let bogus = crate::image::PageStoreImage::from_pages(&pages).unwrap();
        k.fs_mut()
            .write_file(&format!("{dir}/pagestore.img"), bogus.encode())
            .unwrap();
        assert_eq!(check(&mut k, &dir).unwrap_err(), Errno::Einval);
    }

    #[test]
    fn missing_page_store_only_warns() {
        let (mut k, dir) = checkpointed();
        k.fs_remove_file(&format!("{dir}/pagestore.img")).unwrap();
        let report = check(&mut k, &dir).unwrap();
        assert_eq!(report.pages_unique, None);
        assert!(report.warnings.iter().any(|w| w.contains("no page store")));
    }

    #[test]
    fn snapshot_without_listener_warns() {
        let mut k = Kernel::free(3);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.mem_write(target, addr, &[1u8]).unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        let report = check(&mut k, "/img").unwrap();
        assert!(!report.is_clean());
        assert!(report.warnings[0].contains("no listener"), "{report}");
    }
}
