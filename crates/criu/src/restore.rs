//! The restore pipeline: image read → task re-creation → memory
//! reinstatement → descriptor re-opening → resume.
//!
//! Mirrors CRIU's restore as the paper describes it: "the CRIU tool
//! process transmutes itself into the checkpointed process — it reads the
//! dump files and restores the process's state, recreates all namespaces
//! and opened files, and finally the checkpointed memory is remapped."
//! Restore is a privileged operation (`CAP_CHECKPOINT_RESTORE`); the
//! OpenFaaS integration (paper §5) models `docker run --privileged` by
//! granting that capability to the watchdog.

use prebake_sim::cost::per_byte;
use prebake_sim::error::{Errno, SysResult};
use prebake_sim::kernel::Kernel;
use prebake_sim::mem::{AddressSpace, Page, PAGE_SIZE};
use prebake_sim::proc::{FdEntry, FdTable, Pid, ProcState, Thread, ThreadState};
use prebake_sim::time::SimDuration;

use prebake_sim::uffd::UffdBackend;

use crate::costs::CriuCosts;
use crate::dump::{read_images, read_images_lazy};
use crate::image::ImageSet;

/// How the restored process's pid is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestorePid {
    /// Re-create the exact dumped pid (CRIU's default; requires the pid to
    /// be free, as it is inside a fresh pid namespace).
    Same,
    /// Let the kernel pick a fresh pid (models pid-namespace translation
    /// when restoring many replicas on one host).
    #[default]
    Fresh,
}

/// How memory is reinstated at restore.
///
/// `Eager` is CRIU's default (`criu restore` copies every dumped page
/// before resuming). The other three model `--lazy-pages` as REAP
/// (ASPLOS '21) refined it: the address space is mapped with its payload
/// *withheld* behind the fault handler, so the process resumes after
/// only metadata work and pages arrive on first touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestoreMode {
    /// Install every dumped page before resume.
    #[default]
    Eager,
    /// Map everything missing; serve each page on first touch (pure
    /// demand paging — worst-case fault count, minimal restore latency).
    Lazy,
    /// As [`RestoreMode::Lazy`], additionally recording the ordered
    /// first-touch working set so it can be persisted as `ws.img`.
    Record,
    /// As [`RestoreMode::Lazy`], but first bulk-load the recorded
    /// working set (`ws.img`) in one batched copy; only residual pages
    /// outside the working set fault.
    Prefetch,
    /// Map every stored page copy-on-write from the machine's shared
    /// frame pool instead of byte-copying it. Replicas restored from the
    /// same snapshot (or any snapshot sharing page content) reference
    /// one physical frame per distinct page; the copy is deferred to
    /// first *write*. Requires `pagestore.img`.
    Cow,
    /// As [`RestoreMode::Cow`] for the recorded working set, with the
    /// residual stored pages left behind the fault handler as in
    /// [`RestoreMode::Prefetch`]. Requires `pagestore.img` and `ws.img`.
    CowPrefetch,
}

impl RestoreMode {
    /// Whether this mode defers page payload behind a mapping instead of
    /// reading it up front (every mode but eager: the image payload is
    /// mmapped, not copied, at restore).
    pub fn is_lazy(self) -> bool {
        !matches!(self, RestoreMode::Eager)
    }

    /// Whether this mode maps shared frames copy-on-write.
    pub fn is_cow(self) -> bool {
        matches!(self, RestoreMode::Cow | RestoreMode::CowPrefetch)
    }

    /// Whether this mode consumes a recorded working set (`ws.img`) —
    /// builders must run the record pass before shipping such images.
    pub fn needs_ws(self) -> bool {
        matches!(self, RestoreMode::Prefetch | RestoreMode::CowPrefetch)
    }

    /// Whether this mode registers a userfaultfd backend for pages left
    /// missing at resume.
    pub fn uses_uffd(self) -> bool {
        matches!(
            self,
            RestoreMode::Lazy
                | RestoreMode::Record
                | RestoreMode::Prefetch
                | RestoreMode::CowPrefetch
        )
    }
}

/// Options for a restore.
#[derive(Debug, Clone)]
pub struct RestoreOptions {
    /// Guest directory holding the image files.
    pub images_dir: String,
    /// Pid policy.
    pub pid: RestorePid,
    /// Memory reinstatement policy.
    pub mode: RestoreMode,
    /// Cost table.
    pub costs: CriuCosts,
    /// Reinstate memory run-at-a-time from the image's extent table
    /// (scatter-gather copies, run-granular CoW maps, vectored
    /// prefetch) instead of page-at-a-time. The page-granular path pays
    /// [`CriuCosts::restore_page_op`] per page where the vectored path
    /// pays one [`prebake_sim::cost::CostModel::extent_setup`] per run.
    pub vectored: bool,
    /// Fault-around window for uffd-backed modes: one trap services up
    /// to this many consecutive withheld pages in a single batch.
    /// Values below 1 behave as 1 (no fault-around).
    pub fault_around: usize,
    /// Restorer worker threads for the sharded parallel install. The
    /// extent table is partitioned into contiguous shards over disjoint
    /// page ranges; each worker streams and installs its own shard, so
    /// the wall cost is the slowest shard plus a
    /// [`CriuCosts::shard_spawn`] tax per worker instead of the serial
    /// sum. Values below 2 take the serial path bit-for-bit.
    pub threads: usize,
}

impl RestoreOptions {
    /// Paper-calibrated options with fresh-pid policy, eager memory and
    /// the vectored extent path on.
    pub fn new(images_dir: impl Into<String>) -> RestoreOptions {
        RestoreOptions {
            images_dir: images_dir.into(),
            pid: RestorePid::Fresh,
            mode: RestoreMode::Eager,
            costs: CriuCosts::paper_calibrated(),
            vectored: true,
            fault_around: 1,
            threads: 1,
        }
    }

    /// Same, with an explicit memory mode.
    pub fn with_mode(images_dir: impl Into<String>, mode: RestoreMode) -> RestoreOptions {
        RestoreOptions {
            mode,
            ..RestoreOptions::new(images_dir)
        }
    }
}

/// Statistics of a completed restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreStats {
    /// Pid of the restored process.
    pub pid: Pid,
    /// Mappings re-created.
    pub vmas: usize,
    /// Non-zero pages installed.
    pub pages_installed: usize,
    /// Zero pages satisfied by demand-zero mappings.
    pub zero_pages: usize,
    /// Pages left withheld behind the fault handler at resume (lazy
    /// modes; zero for eager).
    pub pages_lazy: usize,
    /// Working-set pages bulk-loaded before resume
    /// ([`RestoreMode::Prefetch`] only).
    pub pages_prefetched: usize,
    /// Pages mapped copy-on-write from the shared frame pool
    /// ([`RestoreMode::Cow`]/[`RestoreMode::CowPrefetch`] only).
    pub pages_cow: usize,
    /// Extent runs vectored in during restore (eager scatter-gather
    /// copies and run-granular CoW maps; zero on the page-granular
    /// path). Working-set prefetch runs surface as
    /// [`prebake_sim::probe::ProbeKind::ExtentCopy`] events instead.
    pub extents: usize,
    /// File descriptors re-opened.
    pub fds: usize,
    /// Parallel shards the memory install ran as (1 on the serial path
    /// and in modes with no install work to shard).
    pub shards: usize,
    /// Payload bytes the prefetch loader streamed sequentially instead
    /// of seeking for — non-zero only under [`RestoreMode::Prefetch`],
    /// and maximised by a fault-order (`criu repack`) image layout.
    pub seek_bytes_avoided: u64,
    /// Pages served from the compaction fallback layer's image rather
    /// than the hot working-set image (zero without `repack --compact`).
    pub pages_compacted: usize,
    /// Virtual time the restore took.
    pub elapsed: SimDuration,
}

/// Restores a process from image files on the guest filesystem (the
/// `criu restore` entry point).
///
/// # Errors
///
/// [`Errno::Eperm`] if `requester` lacks a checkpoint-capable capability,
/// [`Errno::Eexist`] if [`RestorePid::Same`] finds the pid taken,
/// [`Errno::Eaddrinuse`] if a dumped listener's port is bound, plus image
/// errors as [`Errno::Einval`].
pub fn restore(
    kernel: &mut Kernel,
    requester: Pid,
    opts: &RestoreOptions,
) -> SysResult<RestoreStats> {
    let t0 = kernel.now();
    let span = kernel.span_begin("criu_restore", requester);
    let parse = kernel.span_begin("image_parse", requester);
    // A sharded eager restore streams the payload from inside its
    // workers (each shard prices its own slice of the read), so it maps
    // the image like the lazy modes do instead of paying one serial
    // up-front read.
    let set = if opts.mode.is_lazy() || opts.threads > 1 {
        read_images_lazy(kernel, &opts.images_dir)
    } else {
        read_images(kernel, &opts.images_dir)
    };
    kernel.span_end(parse);
    let result = set.and_then(|set| restore_set(kernel, requester, &set, opts));
    kernel.span_end(span);
    let mut stats = result?;
    // Account the image read too: `elapsed` is the full `criu restore`
    // wall time, which is what lazy modes shrink by deferring the
    // payload read.
    stats.elapsed = kernel.now() - t0;
    Ok(stats)
}

/// Restores a process from an already-loaded [`ImageSet`] (the in-memory
/// cache path — the paper's §7 future-work optimisation).
///
/// # Errors
///
/// As [`restore`], minus the filesystem reads.
pub fn restore_set(
    kernel: &mut Kernel,
    requester: Pid,
    set: &ImageSet,
    opts: &RestoreOptions,
) -> SysResult<RestoreStats> {
    let t0 = kernel.now();
    if !kernel.process(requester)?.caps.can_checkpoint() {
        return Err(Errno::Eperm);
    }
    let span = kernel.span_begin("criu_restore_set", requester);
    kernel.charge(opts.costs.restore_base);

    // Task re-creation.
    let pid = match opts.pid {
        RestorePid::Same => kernel.sys_clone_with_pid(requester, set.core.pid)?,
        RestorePid::Fresh => kernel.sys_clone(requester)?,
    };

    // Memory: rebuild the address space exactly as dumped.
    let vma_span = kernel.span_begin("restore_vmas", pid);
    kernel.span_attr(vma_span, "vmas", set.mm.vmas.len().to_string());
    kernel.charge(opts.costs.restore_per_vma * set.mm.vmas.len() as u64);
    {
        let proc = kernel.process_mut(pid)?;
        proc.mem = AddressSpace::new();
        for vma in &set.mm.vmas {
            proc.mem
                .mmap_fixed(vma.start, vma.len, vma.prot, vma.kind.clone())?;
        }
    }
    kernel.span_end(vma_span);
    let mut installed = 0usize;
    let mut pages_lazy = 0usize;
    let mut pages_prefetched = 0usize;
    let mut pages_cow = 0usize;
    let mut extents = 0usize;
    let mut shards = 1usize;
    let mut seek_bytes_avoided = 0u64;

    // Compaction fallback layer (`criu repack --compact`): pages outside
    // the recorded hot set ride in a separate image pair that every mode
    // parks behind the fault handler. A touch outside the working set
    // falls through to the full image at the kernel's `fault_fallback`
    // penalty instead of restoring a hole.
    let fallback_pages: Vec<(u64, Page)> = match &set.fallback {
        Some(fb) => {
            let mut pages = Vec::with_capacity(fb.stored_pages());
            for (page_index, source) in fb.iter_pages() {
                match source {
                    crate::image::PageSource::Bytes(bytes) => pages.push((
                        page_index,
                        Page::from_bytes(bytes.try_into().map_err(|_| Errno::Einval)?),
                    )),
                    crate::image::PageSource::Zero => {}
                    crate::image::PageSource::Parent => return Err(Errno::Einval),
                }
            }
            pages
        }
        None => Vec::new(),
    };
    let pages_compacted = fallback_pages.len();
    match opts.mode {
        RestoreMode::Cow | RestoreMode::CowPrefetch => {
            // Map stored pages copy-on-write from the machine's shared
            // frame pool: one PTE per page, no payload copy. The dedup
            // view tells us each page's content hash, which keys the
            // pool — replicas of the same snapshot resolve to the same
            // physical frames. Zero pages stay demand-zero.
            let store = set.pagestore.as_ref().ok_or(Errno::Einval)?;
            let mode_span = kernel.span_begin("restore_cow_map", pid);
            let ws_filter: Option<std::collections::BTreeSet<u64>> =
                if opts.mode == RestoreMode::CowPrefetch {
                    let ws = set.ws.as_ref().ok_or(Errno::Einval)?;
                    Some(ws.pages.iter().copied().collect())
                } else {
                    None
                };
            let mut backend = UffdBackend::new();
            if opts.vectored && opts.threads > 1 {
                // Sharded CoW map: coalesce in-set refs into runs, then
                // split the run list into contiguous shards mapped by
                // concurrent workers. Frame decoding happens on real
                // host threads; the per-shard mapping charges are
                // measured serially and overlapped below.
                // (start page index, per-page (content hash, payload)).
                type CowRun<'a> = (u64, Vec<(u64, &'a [u8])>);
                let mut runs: Vec<CowRun<'_>> = Vec::new();
                for (page_index, hash, bytes) in store.iter_refs() {
                    if bytes.len() != PAGE_SIZE {
                        return Err(Errno::Einval);
                    }
                    let in_ws = ws_filter.as_ref().is_none_or(|ws| ws.contains(&page_index));
                    if !in_ws {
                        let frame: &[u8; PAGE_SIZE] =
                            bytes.try_into().map_err(|_| Errno::Einval)?;
                        backend.insert_page(page_index, Page::from_bytes(frame));
                        continue;
                    }
                    match runs.last_mut() {
                        Some((start, run)) if *start + run.len() as u64 == page_index => {
                            run.push((hash, bytes));
                        }
                        _ => runs.push((page_index, vec![(hash, bytes)])),
                    }
                    pages_cow += 1;
                }
                let weights: Vec<usize> = runs.iter().map(|(_, r)| r.len()).collect();
                let ranges = partition_by_weight(&weights, opts.threads);
                let decoded = decode_shards(&runs, &ranges, |(start, run)| {
                    let frames: Vec<(u64, Page)> = run
                        .iter()
                        .map(|(hash, bytes)| {
                            (
                                *hash,
                                Page::from_bytes((*bytes).try_into().expect("page-sized")),
                            )
                        })
                        .collect();
                    (*start, frames)
                });
                shards = decoded.len().max(1);
                let mut waves = Vec::with_capacity(decoded.len());
                for (shard_id, shard) in decoded.iter().enumerate() {
                    let (shard_pages, cost) = kernel.uncharged(|k| {
                        let before = k.now();
                        let mut shard_pages = 0usize;
                        for (start, frames) in shard {
                            k.cow_map_extent(pid, *start, frames)?;
                            shard_pages += frames.len();
                        }
                        k.charge(opts.costs.restore_per_cow_page * shard_pages as u64);
                        Ok((shard_pages, k.now() - before))
                    })?;
                    extents += shard.len();
                    waves.push((shard_id, shard_pages, cost));
                }
                charge_overlapped_shards(kernel, pid, &opts.costs, waves);
            } else {
                // Run accumulator for the vectored path: consecutive
                // in-set refs map as one scatter-gather CoW operation.
                let mut run_start = 0u64;
                let mut run: Vec<(u64, Page)> = Vec::new();
                for (page_index, hash, bytes) in store.iter_refs() {
                    let frame: &[u8; PAGE_SIZE] = bytes.try_into().map_err(|_| Errno::Einval)?;
                    let in_working_set =
                        ws_filter.as_ref().is_none_or(|ws| ws.contains(&page_index));
                    if in_working_set {
                        if opts.vectored {
                            if !run.is_empty() && run_start + run.len() as u64 != page_index {
                                kernel.cow_map_extent(pid, run_start, &run)?;
                                extents += 1;
                                run.clear();
                            }
                            if run.is_empty() {
                                run_start = page_index;
                            }
                            run.push((hash, Page::from_bytes(frame)));
                        } else {
                            kernel.cow_map(pid, page_index, hash, || Page::from_bytes(frame))?;
                        }
                        pages_cow += 1;
                    } else {
                        backend.insert_page(page_index, Page::from_bytes(frame));
                    }
                }
                if !run.is_empty() {
                    kernel.cow_map_extent(pid, run_start, &run)?;
                    extents += 1;
                }
                kernel.charge(opts.costs.restore_per_cow_page * pages_cow as u64);
                if !opts.vectored {
                    // The page-granular path dispatches one mapping
                    // operation per page.
                    kernel.charge(opts.costs.restore_page_op * pages_cow as u64);
                }
            }
            for (page_index, page) in fallback_pages {
                backend.insert_fallback_page(page_index, page);
            }
            if opts.mode == RestoreMode::CowPrefetch || backend.fallback_len() > 0 {
                // Residual pages outside the working set (and any
                // compaction fallback layer) are served on demand,
                // exactly as a prefetch-mode restore leaves them.
                pages_lazy = backend.len();
                backend.set_fault_around(opts.fault_around);
                kernel.charge(opts.costs.lazy_register);
                kernel.uffd_register(pid, backend)?;
            }
            kernel.span_attr(mode_span, "pages_cow", pages_cow.to_string());
            kernel.span_attr(mode_span, "pages_lazy", pages_lazy.to_string());
            kernel.span_attr(mode_span, "extents", extents.to_string());
            kernel.span_end(mode_span);
        }
        RestoreMode::Lazy | RestoreMode::Record | RestoreMode::Prefetch => {
            // Defer the payload behind the fault handler: collect every
            // non-zero page into a backend, register it, and let first
            // touches (or an up-front prefetch of the recorded working
            // set) pull pages in. Zero pages stay demand-zero either way.
            let mode_span = kernel.span_begin("restore_lazy_register", pid);
            let mut backend = UffdBackend::new();
            for (page_index, source) in set.pages.iter_pages() {
                match source {
                    crate::image::PageSource::Bytes(bytes) => {
                        let page = Page::from_bytes(bytes.try_into().map_err(|_| Errno::Einval)?);
                        backend.insert_page(page_index, page);
                    }
                    crate::image::PageSource::Zero => {}
                    crate::image::PageSource::Parent => return Err(Errno::Einval),
                }
            }
            for (page_index, page) in fallback_pages {
                backend.insert_fallback_page(page_index, page);
            }
            pages_lazy = backend.len();
            backend.set_fault_around(opts.fault_around);
            kernel.charge(opts.costs.lazy_register);
            kernel.uffd_register(pid, backend)?;
            match opts.mode {
                RestoreMode::Record => kernel.uffd_set_record(pid, true)?,
                RestoreMode::Prefetch => {
                    let ws = set.ws.as_ref().ok_or(Errno::Einval)?;
                    // Seek-vs-sequential read split: the prefetch loader
                    // streams `pages.img` in working-set order, paying
                    // one `fs_seek` whenever the next page's image
                    // position is not the successor of the previous
                    // one. A fault-order image (`criu repack`) lays the
                    // working set out contiguously, collapsing this to
                    // a single seek; a dump-order image pays one per
                    // address-contiguous run.
                    let mut position = std::collections::HashMap::new();
                    let mut next_pos = 0u64;
                    for (page_index, source) in set.pages.iter_pages() {
                        if matches!(source, crate::image::PageSource::Bytes(_)) {
                            position.insert(page_index, next_pos);
                            next_pos += 1;
                        }
                    }
                    let mut seeks = 0u64;
                    let mut streamed = 0u64;
                    let mut prev: Option<u64> = None;
                    for page_index in &ws.pages {
                        if let Some(&pos) = position.get(page_index) {
                            streamed += 1;
                            if prev.is_none_or(|p| p + 1 != pos) {
                                seeks += 1;
                            }
                            prev = Some(pos);
                        }
                    }
                    seek_bytes_avoided = streamed.saturating_sub(seeks) * PAGE_SIZE as u64;
                    let seek = kernel.costs().fs_seek;
                    kernel.charge(seek * seeks);
                    pages_prefetched = if opts.vectored {
                        // Push the working set run-at-a-time: one setup
                        // charge per coalesced extent.
                        kernel.uffd_prefetch_vectored(pid, &ws.pages)? as usize
                    } else {
                        let n = kernel.uffd_prefetch(pid, &ws.pages)? as usize;
                        kernel.charge(opts.costs.restore_page_op * n as u64);
                        n
                    };
                    pages_lazy -= pages_prefetched;
                }
                _ => {}
            }
            kernel.span_attr(mode_span, "pages_lazy", pages_lazy.to_string());
            kernel.span_attr(mode_span, "pages_prefetched", pages_prefetched.to_string());
            kernel.span_end(mode_span);
        }
        RestoreMode::Eager => {
            // Install payload pages; zero pages stay demand-zero.
            // Unresolved parent references mean the caller skipped
            // `read_images`'s parent resolution — refuse rather than
            // restore holes.
            let mode_span = kernel.span_begin("restore_eager_copy", pid);
            if opts.threads > 1 {
                if set.pages.parent_pages() > 0 {
                    return Err(Errno::Einval);
                }
                // Sharded parallel install. Partition the install units
                // — coalesced extents on the vectored path, single
                // pages on the page-granular one — into contiguous
                // shards over disjoint page ranges. Each worker streams
                // its own slice of the payload (the caller mapped the
                // image without charging the read, so every shard
                // prices one seek to its offset plus a sequential
                // warm-rate scan of its bytes) and installs its units.
                // Wall cost is the slowest shard plus the spawn tax.
                let mut units: Vec<(u64, Vec<&[u8]>)> = Vec::new();
                if opts.vectored {
                    let table = set.extent_view();
                    let mut stored = set.pages.iter_pages().filter_map(|(i, s)| match s {
                        crate::image::PageSource::Bytes(bytes) => Some((i, bytes)),
                        _ => None,
                    });
                    for extent in &table.extents {
                        let mut bufs = Vec::with_capacity(extent.pages as usize);
                        for _ in 0..extent.pages {
                            let (_, bytes) = stored.next().ok_or(Errno::Einval)?;
                            if bytes.len() != PAGE_SIZE {
                                return Err(Errno::Einval);
                            }
                            bufs.push(bytes);
                        }
                        units.push((extent.start_index, bufs));
                    }
                } else {
                    for (page_index, source) in set.pages.iter_pages() {
                        if let crate::image::PageSource::Bytes(bytes) = source {
                            if bytes.len() != PAGE_SIZE {
                                return Err(Errno::Einval);
                            }
                            units.push((page_index, vec![bytes]));
                        }
                    }
                }
                let weights: Vec<usize> = units.iter().map(|(_, b)| b.len()).collect();
                let ranges = partition_by_weight(&weights, opts.threads);
                let decoded = decode_shards(&units, &ranges, |(start, bufs)| {
                    let pages: Vec<Page> = bufs
                        .iter()
                        .map(|b| Page::from_bytes((*b).try_into().expect("page-sized")))
                        .collect();
                    (*start, pages)
                });
                shards = decoded.len().max(1);
                let warm = kernel.costs().fs_read_warm_ns_per_byte;
                let seek = kernel.costs().fs_seek;
                let mut waves = Vec::with_capacity(decoded.len());
                for (shard_id, shard) in decoded.iter().enumerate() {
                    let (shard_pages, cost) = kernel.uncharged(|k| {
                        let before = k.now();
                        let shard_pages: usize = shard.iter().map(|(_, p)| p.len()).sum();
                        k.charge(seek + per_byte((shard_pages * PAGE_SIZE) as u64, warm));
                        for (start, pages) in shard {
                            k.copy_extent(pid, *start, pages)?;
                        }
                        if !opts.vectored {
                            // One page-granular dispatch per page — the
                            // cost the vectored path amortises into one
                            // `extent_setup` per run.
                            k.charge(opts.costs.restore_page_op * shard_pages as u64);
                        }
                        k.charge(opts.costs.restore_per_page * shard_pages as u64);
                        Ok((shard_pages, k.now() - before))
                    })?;
                    installed += shard_pages;
                    if opts.vectored {
                        extents += shard.len();
                    }
                    waves.push((shard_id, shard_pages, cost));
                }
                charge_overlapped_shards(kernel, pid, &opts.costs, waves);
            } else if opts.vectored {
                if set.pages.parent_pages() > 0 {
                    return Err(Errno::Einval);
                }
                // Walk the extent table, gathering each run's payload
                // pages (stored entries appear in pagemap order, so the
                // runs consume them sequentially) and installing the
                // run with one scatter-gather copy.
                let table = set.extent_view();
                let mut stored = set.pages.iter_pages().filter_map(|(i, s)| match s {
                    crate::image::PageSource::Bytes(bytes) => Some((i, bytes)),
                    _ => None,
                });
                for extent in &table.extents {
                    let mut buf = Vec::with_capacity(extent.pages as usize);
                    for _ in 0..extent.pages {
                        let (_, bytes) = stored.next().ok_or(Errno::Einval)?;
                        buf.push(Page::from_bytes(
                            bytes.try_into().map_err(|_| Errno::Einval)?,
                        ));
                    }
                    kernel.copy_extent(pid, extent.start_index, &buf)?;
                    installed += buf.len();
                    extents += 1;
                }
                kernel.charge(opts.costs.restore_per_page * installed as u64);
            } else {
                let proc = kernel.process_mut(pid)?;
                for (page_index, source) in set.pages.iter_pages() {
                    match source {
                        crate::image::PageSource::Bytes(bytes) => {
                            let page =
                                Page::from_bytes(bytes.try_into().map_err(|_| Errno::Einval)?);
                            proc.mem.install_page(page_index, page)?;
                            installed += 1;
                        }
                        crate::image::PageSource::Zero => {}
                        crate::image::PageSource::Parent => return Err(Errno::Einval),
                    }
                }
                // One page-granular dispatch per installed page — the
                // cost the vectored path amortises into one
                // `extent_setup` per run.
                kernel.charge(opts.costs.restore_page_op * installed as u64);
                kernel.charge(opts.costs.restore_per_page * installed as u64);
            }
            if !fallback_pages.is_empty() {
                // Faults outside the compacted hot set fall through to
                // the full image behind the fault handler.
                let mut backend = UffdBackend::new();
                for (page_index, page) in fallback_pages {
                    backend.insert_fallback_page(page_index, page);
                }
                pages_lazy = backend.len();
                backend.set_fault_around(opts.fault_around);
                kernel.charge(opts.costs.lazy_register);
                kernel.uffd_register(pid, backend)?;
            }
            kernel.span_attr(mode_span, "pages", installed.to_string());
            kernel.span_attr(mode_span, "extents", extents.to_string());
            kernel.span_end(mode_span);
        }
    }

    // Descriptors.
    let fd_span = kernel.span_begin("restore_fds", pid);
    kernel.span_attr(fd_span, "fds", set.files.fds.len().to_string());
    kernel.charge(opts.costs.restore_per_fd * set.files.fds.len() as u64);
    {
        let proc = kernel.process_mut(pid)?;
        proc.fds = FdTable::new();
    }
    for (fd, entry) in &set.files.fds {
        match entry {
            FdEntry::Listener { port } => {
                kernel.sys_listen_at(pid, *fd, *port)?;
            }
            other => {
                kernel.process_mut(pid)?.fds.insert_at(*fd, other.clone())?;
            }
        }
    }
    kernel.span_end(fd_span);

    // Identity, threads, resume.
    {
        let proc = kernel.process_mut(pid)?;
        proc.comm = set.core.comm.clone();
        proc.cmdline = set.core.cmdline.clone();
        proc.threads = set
            .core
            .threads
            .iter()
            .map(|t| Thread {
                tid: t.tid,
                state: ThreadState::Running,
                regs: t.regs,
            })
            .collect();
        proc.state = ProcState::Running;
    }
    let resume = kernel.costs().sched_resume;
    kernel.charge(resume);
    kernel.span_end(span);

    Ok(RestoreStats {
        pid,
        vmas: set.mm.vmas.len(),
        pages_installed: installed,
        zero_pages: set.pages.zero_pages(),
        pages_lazy,
        pages_prefetched,
        pages_cow,
        extents,
        fds: set.files.fds.len(),
        shards,
        seek_bytes_avoided,
        pages_compacted,
        elapsed: kernel.now() - t0,
    })
}

/// Splits `weights` (pages per install unit) into at most `threads`
/// contiguous non-empty ranges balanced by total weight. Units are
/// whole extents on the vectored path, so a scatter-gather run is never
/// split across workers and shards cover disjoint page ranges.
fn partition_by_weight(weights: &[usize], threads: usize) -> Vec<std::ops::Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let total: usize = weights.iter().sum();
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    let mut cum = 0usize;
    for (i, w) in weights.iter().enumerate() {
        cum += w;
        let closed = ranges.len();
        if closed + 1 < threads {
            let units_left = n - (i + 1);
            let shards_left = threads - closed - 1;
            let target = (total * (closed + 1)).div_ceil(threads);
            // Close the shard at its even share of the total, or when
            // the remaining units are only just enough to keep every
            // remaining shard non-empty.
            if (cum >= target && units_left >= shards_left) || units_left == shards_left {
                ranges.push(start..i + 1);
                start = i + 1;
            }
        }
    }
    ranges.push(start..n);
    ranges
}

/// Fans per-shard decoding (image bytes → page buffers, the host-side
/// share of a sharded restore) out across real worker threads. Results
/// land in pre-allocated per-shard slots, so the merge order — and with
/// it the downstream charge sequence — is deterministic regardless of
/// thread interleaving.
fn decode_shards<U, T, F>(items: &[U], ranges: &[std::ops::Range<usize>], decode: F) -> Vec<Vec<T>>
where
    U: Sync,
    T: Send,
    F: Fn(&U) -> T + Sync,
{
    let mut decoded: Vec<Vec<T>> = Vec::new();
    decoded.resize_with(ranges.len(), Vec::new);
    crossbeam::thread::scope(|scope| {
        for (slot, range) in decoded.iter_mut().zip(ranges) {
            let work = &items[range.clone()];
            let decode = &decode;
            scope.spawn(move |_| *slot = work.iter().map(decode).collect());
        }
    })
    .expect("restore shard decode worker panicked");
    decoded
}

/// Charges independently-measured shard costs as *overlapped* virtual
/// time: a [`CriuCosts::shard_spawn`] tax per worker, then the clock
/// advances to the slowest shard's completion. Shards are emitted as a
/// completion wave of sibling `restore_shard` spans — sorted by cost,
/// each span covering its shard's marginal critical-path contribution —
/// because the tracer nests strictly and cannot represent true sibling
/// overlap. Each span carries its shard's full cost and page count as
/// attributes.
fn charge_overlapped_shards(
    kernel: &mut Kernel,
    pid: Pid,
    costs: &CriuCosts,
    mut waves: Vec<(usize, usize, SimDuration)>,
) {
    if waves.is_empty() {
        return;
    }
    kernel.charge(costs.shard_spawn * waves.len() as u64);
    let t0 = kernel.now();
    waves.sort_by_key(|&(shard, _, cost)| (cost, shard));
    for (shard, pages, cost) in waves {
        let span = kernel.span_begin("restore_shard", pid);
        kernel.span_attr(span, "shard", shard.to_string());
        kernel.span_attr(span, "pages", pages.to_string());
        kernel.span_attr(span, "cost_ns", cost.as_nanos().to_string());
        kernel.advance_to(t0 + cost);
        kernel.span_end(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{dump, DumpOptions};
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VirtAddr, VmaKind, PAGE_SIZE};
    use prebake_sim::proc::CapSet;

    fn checkpointed_kernel() -> (Kernel, Pid, Vec<u8>) {
        let mut k = Kernel::free(5);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 4 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 250 + 1) as u8).collect();
        k.mem_write(target, addr, &payload).unwrap();
        k.sys_listen(target, 9090).unwrap();
        k.sys_open(target, "/data").ok(); // no file: ignore
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer, payload)
    }

    #[test]
    fn restore_reinstates_memory_and_fds() {
        let (mut k, tracer, payload) = checkpointed_kernel();
        let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        assert_eq!(stats.vmas, 1);
        assert_eq!(stats.pages_installed, 2, "5000 bytes = 2 pages");
        assert_eq!(stats.fds, 1);

        let pid = stats.pid;
        let proc = k.process(pid).unwrap();
        assert_eq!(proc.state, ProcState::Running);
        let vma = proc.mem.vmas().next().unwrap().clone();
        let bytes = k.mem_read(pid, vma.start, payload.len() as u64).unwrap();
        assert_eq!(bytes, payload);
        assert_eq!(k.port_owner(9090), Some(pid), "listener re-bound");
    }

    #[test]
    fn restore_same_pid_policy() {
        let (mut k, tracer, _) = checkpointed_kernel();
        let set = read_images(&mut k, "/img").unwrap();
        let dumped_pid = set.core.pid;
        let mut opts = RestoreOptions::new("/img");
        opts.pid = RestorePid::Same;
        let stats = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(stats.pid, dumped_pid);

        // Doing it again: pid now taken.
        k.process_mut(stats.pid).unwrap().fds = FdTable::new(); // free port
        let mut k2 = k;
        k2.sys_close(stats.pid, 3).ok();
        assert!(matches!(
            restore(&mut k2, tracer, &opts).unwrap_err(),
            Errno::Eexist | Errno::Eaddrinuse
        ));
    }

    #[test]
    fn restore_requires_capability() {
        let (mut k, tracer, _) = checkpointed_kernel();
        k.process_mut(tracer).unwrap().caps = CapSet::empty();
        assert_eq!(
            restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap_err(),
            Errno::Eperm
        );
    }

    #[test]
    fn restore_fails_if_port_taken() {
        let (mut k, tracer, _) = checkpointed_kernel();
        let squatter = k.sys_clone(INIT_PID).unwrap();
        k.sys_listen(squatter, 9090).unwrap();
        assert_eq!(
            restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap_err(),
            Errno::Eaddrinuse
        );
    }

    #[test]
    fn restored_memory_is_observably_equal() {
        // Dump with leave_running, restore fresh, compare spaces.
        let mut k = Kernel::free(6);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(target, 16 * PAGE_SIZE as u64, Prot::RW, VmaKind::Metaspace)
            .unwrap();
        for i in 0..10u64 {
            let data = vec![(i as u8) + 1; 300];
            k.mem_write(target, a.add(i * PAGE_SIZE as u64), &data)
                .unwrap();
        }
        let mut dopts = DumpOptions::new(target, "/img");
        dopts.leave_running = true;
        dump(&mut k, tracer, &dopts).unwrap();
        let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        let original = k.process(target).unwrap().mem.clone();
        let restored = &k.process(stats.pid).unwrap().mem;
        assert!(original.observably_equal(restored));
    }

    #[test]
    fn zero_pages_restore_as_demand_zero() {
        let mut k = Kernel::free(7);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(target, 2 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.mem_write(target, a, &[0u8; PAGE_SIZE]).unwrap(); // zero page, materialised
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        assert_eq!(stats.pages_installed, 0);
        assert_eq!(stats.zero_pages, 1);
        // Still reads as zeros without being materialised.
        let proc = k.process(stats.pid).unwrap();
        assert_eq!(proc.mem.resident_pages(), 0);
        let bytes = k.mem_read(stats.pid, VirtAddr(a.0), 64).unwrap();
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn lazy_restore_defers_pages_and_faults_on_touch() {
        let (mut k, tracer, payload) = checkpointed_kernel();
        let stats = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Lazy),
        )
        .unwrap();
        assert_eq!(stats.pages_installed, 0, "nothing installed eagerly");
        assert_eq!(stats.pages_lazy, 2, "5000 bytes = 2 withheld pages");
        assert_eq!(stats.pages_prefetched, 0);

        let pid = stats.pid;
        assert!(k.uffd_registered(pid));
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 2);

        // First touch resolves through the fault handler and the content
        // matches the checkpoint byte-for-byte.
        let vma = k.process(pid).unwrap().mem.vmas().next().unwrap().clone();
        let bytes = k.mem_read(pid, vma.start, payload.len() as u64).unwrap();
        assert_eq!(bytes, payload);
        let (major, _) = k.uffd_fault_counts(pid);
        assert_eq!(major, 2);
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 0);
    }

    #[test]
    fn record_then_prefetch_round_trip() {
        use crate::image::WsImage;

        let (mut k, tracer, payload) = checkpointed_kernel();

        // Record pass: restore lazily, drive one "invocation" (read the
        // payload), harvest the ordered working set.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        let vma = k
            .process(rec.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        k.mem_read(rec.pid, vma.start, payload.len() as u64)
            .unwrap();
        let log = k.uffd_take_log(rec.pid).unwrap();
        assert_eq!(log.len(), 2);
        let ws = WsImage::from_fault_log(log);
        k.fs_write_file("/img/ws.img", ws.encode()).unwrap();
        k.sys_exit(rec.pid, 0).unwrap(); // retire the record replica, freeing the port

        // Prefetch pass: the whole working set arrives before resume, so
        // touching it again faults zero times.
        let pre = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Prefetch),
        )
        .unwrap();
        assert_eq!(pre.pages_prefetched, 2);
        assert_eq!(pre.pages_lazy, 0);
        let bytes = k
            .mem_read(pre.pid, vma.start, payload.len() as u64)
            .unwrap();
        assert_eq!(bytes, payload);
        assert_eq!(k.uffd_fault_counts(pre.pid), (0, 0));
    }

    #[test]
    fn prefetch_without_recorded_working_set_is_einval() {
        let (mut k, tracer, _) = checkpointed_kernel();
        assert_eq!(
            restore(
                &mut k,
                tracer,
                &RestoreOptions::with_mode("/img", RestoreMode::Prefetch),
            )
            .unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn lazy_restore_resumes_faster_than_eager() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for mode in [RestoreMode::Eager, RestoreMode::Lazy] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let pages = 512u64;
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![3u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let stats = restore(&mut k, tracer, &RestoreOptions::with_mode("/img", mode)).unwrap();
            elapsed.push(stats.elapsed);
        }
        assert!(
            elapsed[1] < elapsed[0],
            "lazy resume beats eager: {elapsed:?}"
        );
    }

    /// Dump a listener-free target (so many replicas can restore from
    /// one snapshot without port clashes).
    fn checkpointed_portless(seed: u64) -> (Kernel, Pid, Vec<u8>) {
        let mut k = Kernel::free(seed);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 4 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 250 + 1) as u8).collect();
        k.mem_write(target, addr, &payload).unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer, payload)
    }

    #[test]
    fn cow_restore_shares_frames_and_isolates_writes() {
        let (mut k, tracer, payload) = checkpointed_portless(11);
        let opts = RestoreOptions::with_mode("/img", RestoreMode::Cow);
        let a = restore(&mut k, tracer, &opts).unwrap();
        let b = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(a.pages_cow, 2, "5000 bytes = 2 shared pages");
        assert_eq!(a.pages_installed, 0);
        assert_eq!(a.pages_lazy, 0);
        assert!(!k.uffd_registered(a.pid), "pure CoW needs no fault handler");

        // One physical frame per distinct page, two mappings each.
        assert_eq!(k.page_store().frame_count(), 2);
        assert_eq!(k.page_store().external_refs(), 4);

        // Both replicas read the checkpointed bytes.
        let vma = k.process(a.pid).unwrap().mem.vmas().next().unwrap().clone();
        for pid in [a.pid, b.pid] {
            assert_eq!(
                k.mem_read(pid, vma.start, payload.len() as u64).unwrap(),
                payload
            );
        }

        // A write in one replica breaks only its own mapping.
        k.mem_write(a.pid, vma.start, &[0xEE; 8]).unwrap();
        assert_eq!(
            k.mem_read(b.pid, vma.start, payload.len() as u64).unwrap(),
            payload,
            "replica b unaffected by a's write"
        );
        assert_eq!(k.page_store().external_refs(), 3, "a dropped one frame ref");
        let broken = k.mem_read(a.pid, vma.start, 8).unwrap();
        assert_eq!(broken, [0xEE; 8]);
    }

    #[test]
    fn cow_restore_without_pagestore_is_einval() {
        let (mut k, tracer, _) = checkpointed_portless(12);
        k.fs_remove_file(&format!("/img/{}", ImageSet::PAGESTORE_NAME))
            .unwrap();
        assert_eq!(
            restore(
                &mut k,
                tracer,
                &RestoreOptions::with_mode("/img", RestoreMode::Cow),
            )
            .unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn cow_prefetch_maps_ws_and_defers_residue() {
        use crate::image::WsImage;
        let (mut k, tracer, payload) = checkpointed_portless(13);

        // Record a working set covering only the first page.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        let vma = k
            .process(rec.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        k.mem_read(rec.pid, vma.start, 64).unwrap();
        let log = k.uffd_take_log(rec.pid).unwrap();
        assert_eq!(log.len(), 1);
        k.fs_write_file("/img/ws.img", WsImage::from_fault_log(log).encode())
            .unwrap();
        k.sys_exit(rec.pid, 0).unwrap();

        let stats = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::CowPrefetch),
        )
        .unwrap();
        assert_eq!(stats.pages_cow, 1, "ws page mapped CoW");
        assert_eq!(stats.pages_lazy, 1, "residual page behind the handler");
        assert!(k.uffd_registered(stats.pid));

        // The whole payload still reads back; the residue major-faults.
        let bytes = k
            .mem_read(stats.pid, vma.start, payload.len() as u64)
            .unwrap();
        assert_eq!(bytes, payload);
        let (major, _) = k.uffd_fault_counts(stats.pid);
        assert_eq!(major, 1);
    }

    #[test]
    fn cow_restore_resumes_no_slower_than_eager() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for mode in [RestoreMode::Eager, RestoreMode::Cow] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let pages = 512u64;
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![3u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let stats = restore(&mut k, tracer, &RestoreOptions::with_mode("/img", mode)).unwrap();
            elapsed.push(stats.elapsed);
        }
        assert!(
            elapsed[1] < elapsed[0],
            "CoW resume beats eager: {elapsed:?}"
        );
    }

    #[test]
    fn vectored_eager_restore_matches_per_page_state() {
        let (mut k, tracer, payload) = checkpointed_portless(21);
        let mut per_page = RestoreOptions::new("/img");
        per_page.vectored = false;
        let a = restore(&mut k, tracer, &per_page).unwrap();
        let b = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        assert_eq!(a.pages_installed, b.pages_installed);
        assert_eq!(a.extents, 0, "page-granular path issues no extents");
        assert_eq!(b.extents, 1, "two contiguous stored pages = one run");
        let mem_a = k.process(a.pid).unwrap().mem.clone();
        let mem_b = &k.process(b.pid).unwrap().mem;
        assert!(mem_a.observably_equal(mem_b));
        let vma = k.process(a.pid).unwrap().mem.vmas().next().unwrap().clone();
        for pid in [a.pid, b.pid] {
            assert_eq!(
                k.mem_read(pid, vma.start, payload.len() as u64).unwrap(),
                payload
            );
        }
    }

    #[test]
    fn vectored_eager_restore_is_cheaper_than_per_page() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for vectored in [false, true] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let pages = 512u64;
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![3u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let mut opts = RestoreOptions::new("/img");
            opts.vectored = vectored;
            elapsed.push(restore(&mut k, tracer, &opts).unwrap().elapsed);
        }
        assert!(
            elapsed[1] < elapsed[0],
            "one extent copy beats 512 page dispatches: {elapsed:?}"
        );
    }

    #[test]
    fn fault_around_batches_lazy_fault_servicing() {
        let (mut k, tracer, payload) = checkpointed_portless(22);
        let mut opts = RestoreOptions::with_mode("/img", RestoreMode::Lazy);
        opts.fault_around = 4;
        let stats = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(stats.pages_lazy, 2);
        let vma = k
            .process(stats.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        let bytes = k
            .mem_read(stats.pid, vma.start, payload.len() as u64)
            .unwrap();
        assert_eq!(bytes, payload);
        let (major, minor) = k.uffd_fault_counts(stats.pid);
        assert_eq!(
            (major, minor),
            (1, 0),
            "one trap pulls both withheld pages in"
        );
        assert_eq!(k.process(stats.pid).unwrap().mem.missing_pages(), 0);
    }

    #[test]
    fn vectored_cow_restore_shares_frames_like_per_page() {
        let (mut k, tracer, payload) = checkpointed_portless(23);
        let mut per_page = RestoreOptions::with_mode("/img", RestoreMode::Cow);
        per_page.vectored = false;
        let a = restore(&mut k, tracer, &per_page).unwrap();
        let b = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Cow),
        )
        .unwrap();
        assert_eq!(a.pages_cow, 2);
        assert_eq!(b.pages_cow, 2);
        assert_eq!(a.extents, 0);
        assert_eq!(b.extents, 1, "two consecutive shared frames = one run");
        assert_eq!(
            k.page_store().frame_count(),
            2,
            "both paths intern the same frames"
        );
        assert_eq!(k.page_store().external_refs(), 4);
        let vma = k.process(a.pid).unwrap().mem.vmas().next().unwrap().clone();
        for pid in [a.pid, b.pid] {
            assert_eq!(
                k.mem_read(pid, vma.start, payload.len() as u64).unwrap(),
                payload
            );
        }
    }

    #[test]
    fn prefetch_paths_agree_and_vectored_is_cheaper() {
        use crate::image::WsImage;
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let pages = 64u64;
        let a = k
            .sys_mmap(
                target,
                pages * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        k.mem_write(target, a, &vec![9u8; (pages * PAGE_SIZE as u64) as usize])
            .unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();

        // Record the full working set.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        let vma = k
            .process(rec.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        k.mem_read(rec.pid, vma.start, pages * PAGE_SIZE as u64)
            .unwrap();
        let log = k.uffd_take_log(rec.pid).unwrap();
        k.fs_write_file("/img/ws.img", WsImage::from_fault_log(log).encode())
            .unwrap();
        k.sys_exit(rec.pid, 0).unwrap();

        let mut elapsed = Vec::new();
        for vectored in [false, true] {
            let mut opts = RestoreOptions::with_mode("/img", RestoreMode::Prefetch);
            opts.vectored = vectored;
            let stats = restore(&mut k, tracer, &opts).unwrap();
            assert_eq!(stats.pages_prefetched, pages as usize);
            assert_eq!(stats.pages_lazy, 0);
            assert_eq!(k.uffd_fault_counts(stats.pid), (0, 0));
            assert_eq!(k.mem_read(stats.pid, vma.start, 64).unwrap(), vec![9u8; 64]);
            elapsed.push(stats.elapsed);
            k.sys_exit(stats.pid, 0).unwrap();
        }
        assert!(
            elapsed[1] < elapsed[0],
            "vectored prefetch beats per-page: {elapsed:?}"
        );
    }

    /// Checkpoint a target whose dumped pages form `runs` address runs
    /// of `pages_per_run` pages with a one-page hole between runs, so
    /// the extent table has `runs` entries for the shard partitioner to
    /// split.
    fn checkpointed_runs(mut k: Kernel, runs: u64, pages_per_run: u64) -> (Kernel, Pid, VirtAddr) {
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let span = runs * (pages_per_run + 1);
        let a = k
            .sys_mmap(
                target,
                span * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        for r in 0..runs {
            let data = vec![(r as u8) + 1; (pages_per_run * PAGE_SIZE as u64) as usize];
            k.mem_write(
                target,
                a.add(r * (pages_per_run + 1) * PAGE_SIZE as u64),
                &data,
            )
            .unwrap();
        }
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer, a)
    }

    #[test]
    fn parallel_sharded_restore_matches_serial_state() {
        for vectored in [true, false] {
            let (mut k, tracer, a) = checkpointed_runs(Kernel::free(31), 8, 8);
            let mut serial = RestoreOptions::new("/img");
            serial.vectored = vectored;
            let mut parallel = serial.clone();
            parallel.threads = 4;
            let s = restore(&mut k, tracer, &serial).unwrap();
            let p = restore(&mut k, tracer, &parallel).unwrap();
            assert_eq!(s.pages_installed, p.pages_installed);
            assert_eq!(s.shards, 1);
            assert_eq!(p.shards, 4, "vectored={vectored}");
            let mem_s = k.process(s.pid).unwrap().mem.clone();
            let mem_p = &k.process(p.pid).unwrap().mem;
            assert!(mem_s.observably_equal(mem_p));
            let want = vec![1u8; 64];
            for pid in [s.pid, p.pid] {
                assert_eq!(k.mem_read(pid, a, 64).unwrap(), want);
            }
        }
    }

    #[test]
    fn threads_one_is_bit_identical_to_serial() {
        // `threads: 1` must take the exact serial code path: same charge
        // sequence, same jitter draws, bit-identical clock.
        let run = |threads: usize| {
            let (mut k, tracer, _) = checkpointed_runs(Kernel::new(77), 4, 8);
            let mut opts = RestoreOptions::new("/img");
            opts.threads = threads;
            let stats = restore(&mut k, tracer, &opts).unwrap();
            (stats, k.now())
        };
        let (s1, t1) = run(1);
        let (s2, t2) = run(0); // below 1 normalises to serial too
        assert_eq!(s1, s2);
        assert_eq!(t1, t2, "serial path is bit-reproducible");
    }

    #[test]
    fn parallel_restore_is_deterministic_under_noise() {
        let run = || {
            let (mut k, tracer, _) = checkpointed_runs(Kernel::new(99), 8, 64);
            let mut opts = RestoreOptions::new("/img");
            opts.threads = 4;
            let stats = restore(&mut k, tracer, &opts).unwrap();
            (stats, k.now())
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1, s2);
        assert_eq!(t1, t2, "same seed, same wall clock");
    }

    #[test]
    fn parallel_restore_overlaps_install_time() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        // Big enough that the sharded payload stream dwarfs the spawn
        // tax: 8 runs x 512 pages = 16 MiB.
        let elapsed_for = |threads: usize| {
            let k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let (mut k, tracer, _) = checkpointed_runs(k, 8, 512);
            let mut opts = RestoreOptions::new("/img");
            opts.threads = threads;
            restore(&mut k, tracer, &opts).unwrap().elapsed
        };
        let serial = elapsed_for(1);
        let two = elapsed_for(2);
        let four = elapsed_for(4);
        assert!(two < serial, "2 shards beat serial: {two:?} vs {serial:?}");
        assert!(four < two, "4 shards beat 2: {four:?} vs {two:?}");
    }

    #[test]
    fn repack_fault_order_cuts_prefetch_seeks() {
        use crate::dump::{repack, RepackOptions};
        use crate::image::WsImage;
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let pages = 64u64;
        let a = k
            .sys_mmap(
                target,
                pages * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        k.mem_write(target, a, &vec![5u8; (pages * PAGE_SIZE as u64) as usize])
            .unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();

        // Record a working set that strides the image: every touch is a
        // position jump in the dump-order layout.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        for p in (0..pages).step_by(2).chain((1..pages).step_by(2)) {
            k.mem_read(rec.pid, a.add(p * PAGE_SIZE as u64), 8).unwrap();
        }
        let log = k.uffd_take_log(rec.pid).unwrap();
        assert_eq!(log.len(), pages as usize);
        k.fs_write_file("/img/ws.img", WsImage::from_fault_log(log).encode())
            .unwrap();
        k.sys_exit(rec.pid, 0).unwrap();

        let opts = RestoreOptions::with_mode("/img", RestoreMode::Prefetch);
        let dump_order = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(
            dump_order.seek_bytes_avoided, 0,
            "strided working set seeks for every page of a dump-order image"
        );
        k.sys_exit(dump_order.pid, 0).unwrap();

        repack(&mut k, &RepackOptions::new("/img")).unwrap();
        let fault_order = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(fault_order.pages_prefetched, pages as usize);
        assert_eq!(
            fault_order.seek_bytes_avoided,
            (pages - 1) * PAGE_SIZE as u64,
            "fault-order layout streams all but the first page"
        );
        assert!(
            fault_order.elapsed < dump_order.elapsed,
            "fewer seeks, faster prefetch: {:?} vs {:?}",
            fault_order.elapsed,
            dump_order.elapsed
        );
        assert_eq!(
            k.mem_read(fault_order.pid, a, 64).unwrap(),
            vec![5u8; 64],
            "reordered payload restores the same bytes"
        );
    }

    #[test]
    fn compacted_image_restores_identically_with_fallback_faults() {
        use crate::dump::{repack, RepackOptions};
        use crate::image::WsImage;

        let mut k = Kernel::free(33);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let pages = 6u64;
        let a = k
            .sys_mmap(
                target,
                pages * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        let mut payload = Vec::new();
        for p in 0..pages {
            payload.extend_from_slice(&vec![(p as u8) + 10; PAGE_SIZE]);
        }
        k.mem_write(target, a, &payload).unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();

        // Working set = first three pages only.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        k.mem_read(rec.pid, a, 3 * PAGE_SIZE as u64).unwrap();
        let log = k.uffd_take_log(rec.pid).unwrap();
        k.fs_write_file("/img/ws.img", WsImage::from_fault_log(log).encode())
            .unwrap();
        k.sys_exit(rec.pid, 0).unwrap();

        let mut ropts = RepackOptions::new("/img");
        ropts.compact = true;
        let rstats = repack(&mut k, &ropts).unwrap();
        assert_eq!(rstats.pages_hot, 3);
        assert_eq!(rstats.pages_compacted, 3);
        assert!(
            rstats.hot_bytes_after < rstats.hot_bytes_before,
            "compaction shrinks the critical-path image: {} vs {}",
            rstats.hot_bytes_after,
            rstats.hot_bytes_before
        );

        // Eager restore of the compacted image: hot pages install, the
        // fallback layer sits behind the fault handler, and the full
        // payload still reads back byte-for-byte.
        let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        assert_eq!(stats.pages_installed, 3);
        assert_eq!(stats.pages_compacted, 3);
        assert_eq!(stats.pages_lazy, 3, "fallback pages withheld");
        assert!(k.uffd_registered(stats.pid));
        assert_eq!(
            k.mem_read(stats.pid, a, payload.len() as u64).unwrap(),
            payload
        );
        assert_eq!(
            k.uffd_fallback_faults(stats.pid),
            3,
            "touches outside the hot set fell through to the fallback layer"
        );

        // The lazy modes carry the fallback layer too.
        let lazy = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Lazy),
        )
        .unwrap();
        assert_eq!(lazy.pages_lazy, 6, "hot withheld + fallback withheld");
        assert_eq!(lazy.pages_compacted, 3);
        assert_eq!(
            k.mem_read(lazy.pid, a, payload.len() as u64).unwrap(),
            payload
        );
    }

    #[test]
    fn restore_charges_scale_with_snapshot_size() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for pages in [8u64, 64] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![7u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
            elapsed.push(stats.elapsed);
        }
        assert!(
            elapsed[1] > elapsed[0],
            "bigger snapshot restores slower: {elapsed:?}"
        );
    }
}
