//! The restore pipeline: image read → task re-creation → memory
//! reinstatement → descriptor re-opening → resume.
//!
//! Mirrors CRIU's restore as the paper describes it: "the CRIU tool
//! process transmutes itself into the checkpointed process — it reads the
//! dump files and restores the process's state, recreates all namespaces
//! and opened files, and finally the checkpointed memory is remapped."
//! Restore is a privileged operation (`CAP_CHECKPOINT_RESTORE`); the
//! OpenFaaS integration (paper §5) models `docker run --privileged` by
//! granting that capability to the watchdog.

use prebake_sim::error::{Errno, SysResult};
use prebake_sim::kernel::Kernel;
use prebake_sim::mem::{AddressSpace, Page};
use prebake_sim::proc::{FdEntry, FdTable, Pid, ProcState, Thread, ThreadState};
use prebake_sim::time::SimDuration;

use prebake_sim::uffd::UffdBackend;

use crate::costs::CriuCosts;
use crate::dump::{read_images, read_images_lazy};
use crate::image::ImageSet;

/// How the restored process's pid is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestorePid {
    /// Re-create the exact dumped pid (CRIU's default; requires the pid to
    /// be free, as it is inside a fresh pid namespace).
    Same,
    /// Let the kernel pick a fresh pid (models pid-namespace translation
    /// when restoring many replicas on one host).
    #[default]
    Fresh,
}

/// How memory is reinstated at restore.
///
/// `Eager` is CRIU's default (`criu restore` copies every dumped page
/// before resuming). The other three model `--lazy-pages` as REAP
/// (ASPLOS '21) refined it: the address space is mapped with its payload
/// *withheld* behind the fault handler, so the process resumes after
/// only metadata work and pages arrive on first touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestoreMode {
    /// Install every dumped page before resume.
    #[default]
    Eager,
    /// Map everything missing; serve each page on first touch (pure
    /// demand paging — worst-case fault count, minimal restore latency).
    Lazy,
    /// As [`RestoreMode::Lazy`], additionally recording the ordered
    /// first-touch working set so it can be persisted as `ws.img`.
    Record,
    /// As [`RestoreMode::Lazy`], but first bulk-load the recorded
    /// working set (`ws.img`) in one batched copy; only residual pages
    /// outside the working set fault.
    Prefetch,
    /// Map every stored page copy-on-write from the machine's shared
    /// frame pool instead of byte-copying it. Replicas restored from the
    /// same snapshot (or any snapshot sharing page content) reference
    /// one physical frame per distinct page; the copy is deferred to
    /// first *write*. Requires `pagestore.img`.
    Cow,
    /// As [`RestoreMode::Cow`] for the recorded working set, with the
    /// residual stored pages left behind the fault handler as in
    /// [`RestoreMode::Prefetch`]. Requires `pagestore.img` and `ws.img`.
    CowPrefetch,
}

impl RestoreMode {
    /// Whether this mode defers page payload behind a mapping instead of
    /// reading it up front (every mode but eager: the image payload is
    /// mmapped, not copied, at restore).
    pub fn is_lazy(self) -> bool {
        !matches!(self, RestoreMode::Eager)
    }

    /// Whether this mode maps shared frames copy-on-write.
    pub fn is_cow(self) -> bool {
        matches!(self, RestoreMode::Cow | RestoreMode::CowPrefetch)
    }

    /// Whether this mode consumes a recorded working set (`ws.img`) —
    /// builders must run the record pass before shipping such images.
    pub fn needs_ws(self) -> bool {
        matches!(self, RestoreMode::Prefetch | RestoreMode::CowPrefetch)
    }

    /// Whether this mode registers a userfaultfd backend for pages left
    /// missing at resume.
    pub fn uses_uffd(self) -> bool {
        matches!(
            self,
            RestoreMode::Lazy
                | RestoreMode::Record
                | RestoreMode::Prefetch
                | RestoreMode::CowPrefetch
        )
    }
}

/// Options for a restore.
#[derive(Debug, Clone)]
pub struct RestoreOptions {
    /// Guest directory holding the image files.
    pub images_dir: String,
    /// Pid policy.
    pub pid: RestorePid,
    /// Memory reinstatement policy.
    pub mode: RestoreMode,
    /// Cost table.
    pub costs: CriuCosts,
    /// Reinstate memory run-at-a-time from the image's extent table
    /// (scatter-gather copies, run-granular CoW maps, vectored
    /// prefetch) instead of page-at-a-time. The page-granular path pays
    /// [`CriuCosts::restore_page_op`] per page where the vectored path
    /// pays one [`prebake_sim::cost::CostModel::extent_setup`] per run.
    pub vectored: bool,
    /// Fault-around window for uffd-backed modes: one trap services up
    /// to this many consecutive withheld pages in a single batch.
    /// Values below 1 behave as 1 (no fault-around).
    pub fault_around: usize,
}

impl RestoreOptions {
    /// Paper-calibrated options with fresh-pid policy, eager memory and
    /// the vectored extent path on.
    pub fn new(images_dir: impl Into<String>) -> RestoreOptions {
        RestoreOptions {
            images_dir: images_dir.into(),
            pid: RestorePid::Fresh,
            mode: RestoreMode::Eager,
            costs: CriuCosts::paper_calibrated(),
            vectored: true,
            fault_around: 1,
        }
    }

    /// Same, with an explicit memory mode.
    pub fn with_mode(images_dir: impl Into<String>, mode: RestoreMode) -> RestoreOptions {
        RestoreOptions {
            mode,
            ..RestoreOptions::new(images_dir)
        }
    }
}

/// Statistics of a completed restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreStats {
    /// Pid of the restored process.
    pub pid: Pid,
    /// Mappings re-created.
    pub vmas: usize,
    /// Non-zero pages installed.
    pub pages_installed: usize,
    /// Zero pages satisfied by demand-zero mappings.
    pub zero_pages: usize,
    /// Pages left withheld behind the fault handler at resume (lazy
    /// modes; zero for eager).
    pub pages_lazy: usize,
    /// Working-set pages bulk-loaded before resume
    /// ([`RestoreMode::Prefetch`] only).
    pub pages_prefetched: usize,
    /// Pages mapped copy-on-write from the shared frame pool
    /// ([`RestoreMode::Cow`]/[`RestoreMode::CowPrefetch`] only).
    pub pages_cow: usize,
    /// Extent runs vectored in during restore (eager scatter-gather
    /// copies and run-granular CoW maps; zero on the page-granular
    /// path). Working-set prefetch runs surface as
    /// [`prebake_sim::probe::ProbeKind::ExtentCopy`] events instead.
    pub extents: usize,
    /// File descriptors re-opened.
    pub fds: usize,
    /// Virtual time the restore took.
    pub elapsed: SimDuration,
}

/// Restores a process from image files on the guest filesystem (the
/// `criu restore` entry point).
///
/// # Errors
///
/// [`Errno::Eperm`] if `requester` lacks a checkpoint-capable capability,
/// [`Errno::Eexist`] if [`RestorePid::Same`] finds the pid taken,
/// [`Errno::Eaddrinuse`] if a dumped listener's port is bound, plus image
/// errors as [`Errno::Einval`].
pub fn restore(
    kernel: &mut Kernel,
    requester: Pid,
    opts: &RestoreOptions,
) -> SysResult<RestoreStats> {
    let t0 = kernel.now();
    let span = kernel.span_begin("criu_restore", requester);
    let parse = kernel.span_begin("image_parse", requester);
    let set = if opts.mode.is_lazy() {
        read_images_lazy(kernel, &opts.images_dir)
    } else {
        read_images(kernel, &opts.images_dir)
    };
    kernel.span_end(parse);
    let result = set.and_then(|set| restore_set(kernel, requester, &set, opts));
    kernel.span_end(span);
    let mut stats = result?;
    // Account the image read too: `elapsed` is the full `criu restore`
    // wall time, which is what lazy modes shrink by deferring the
    // payload read.
    stats.elapsed = kernel.now() - t0;
    Ok(stats)
}

/// Restores a process from an already-loaded [`ImageSet`] (the in-memory
/// cache path — the paper's §7 future-work optimisation).
///
/// # Errors
///
/// As [`restore`], minus the filesystem reads.
pub fn restore_set(
    kernel: &mut Kernel,
    requester: Pid,
    set: &ImageSet,
    opts: &RestoreOptions,
) -> SysResult<RestoreStats> {
    let t0 = kernel.now();
    if !kernel.process(requester)?.caps.can_checkpoint() {
        return Err(Errno::Eperm);
    }
    let span = kernel.span_begin("criu_restore_set", requester);
    kernel.charge(opts.costs.restore_base);

    // Task re-creation.
    let pid = match opts.pid {
        RestorePid::Same => kernel.sys_clone_with_pid(requester, set.core.pid)?,
        RestorePid::Fresh => kernel.sys_clone(requester)?,
    };

    // Memory: rebuild the address space exactly as dumped.
    let vma_span = kernel.span_begin("restore_vmas", pid);
    kernel.span_attr(vma_span, "vmas", set.mm.vmas.len().to_string());
    kernel.charge(opts.costs.restore_per_vma * set.mm.vmas.len() as u64);
    {
        let proc = kernel.process_mut(pid)?;
        proc.mem = AddressSpace::new();
        for vma in &set.mm.vmas {
            proc.mem
                .mmap_fixed(vma.start, vma.len, vma.prot, vma.kind.clone())?;
        }
    }
    kernel.span_end(vma_span);
    let mut installed = 0usize;
    let mut pages_lazy = 0usize;
    let mut pages_prefetched = 0usize;
    let mut pages_cow = 0usize;
    let mut extents = 0usize;
    match opts.mode {
        RestoreMode::Cow | RestoreMode::CowPrefetch => {
            // Map stored pages copy-on-write from the machine's shared
            // frame pool: one PTE per page, no payload copy. The dedup
            // view tells us each page's content hash, which keys the
            // pool — replicas of the same snapshot resolve to the same
            // physical frames. Zero pages stay demand-zero.
            let store = set.pagestore.as_ref().ok_or(Errno::Einval)?;
            let mode_span = kernel.span_begin("restore_cow_map", pid);
            let ws_filter: Option<std::collections::BTreeSet<u64>> =
                if opts.mode == RestoreMode::CowPrefetch {
                    let ws = set.ws.as_ref().ok_or(Errno::Einval)?;
                    Some(ws.pages.iter().copied().collect())
                } else {
                    None
                };
            let mut backend = UffdBackend::new();
            // Run accumulator for the vectored path: consecutive in-set
            // refs map as one scatter-gather CoW operation.
            let mut run_start = 0u64;
            let mut run: Vec<(u64, Page)> = Vec::new();
            for (page_index, hash, bytes) in store.iter_refs() {
                let frame: &[u8; prebake_sim::mem::PAGE_SIZE] =
                    bytes.try_into().map_err(|_| Errno::Einval)?;
                let in_working_set = ws_filter.as_ref().is_none_or(|ws| ws.contains(&page_index));
                if in_working_set {
                    if opts.vectored {
                        if !run.is_empty() && run_start + run.len() as u64 != page_index {
                            kernel.cow_map_extent(pid, run_start, &run)?;
                            extents += 1;
                            run.clear();
                        }
                        if run.is_empty() {
                            run_start = page_index;
                        }
                        run.push((hash, Page::from_bytes(frame)));
                    } else {
                        kernel.cow_map(pid, page_index, hash, || Page::from_bytes(frame))?;
                    }
                    pages_cow += 1;
                } else {
                    backend.insert_page(page_index, Page::from_bytes(frame));
                }
            }
            if !run.is_empty() {
                kernel.cow_map_extent(pid, run_start, &run)?;
                extents += 1;
            }
            kernel.charge(opts.costs.restore_per_cow_page * pages_cow as u64);
            if !opts.vectored {
                // The page-granular path dispatches one mapping
                // operation per page.
                kernel.charge(opts.costs.restore_page_op * pages_cow as u64);
            }
            if opts.mode == RestoreMode::CowPrefetch {
                // Residual pages outside the working set are served on
                // demand, exactly as a prefetch-mode restore leaves them.
                pages_lazy = backend.len();
                backend.set_fault_around(opts.fault_around);
                kernel.charge(opts.costs.lazy_register);
                kernel.uffd_register(pid, backend)?;
            }
            kernel.span_attr(mode_span, "pages_cow", pages_cow.to_string());
            kernel.span_attr(mode_span, "pages_lazy", pages_lazy.to_string());
            kernel.span_attr(mode_span, "extents", extents.to_string());
            kernel.span_end(mode_span);
        }
        RestoreMode::Lazy | RestoreMode::Record | RestoreMode::Prefetch => {
            // Defer the payload behind the fault handler: collect every
            // non-zero page into a backend, register it, and let first
            // touches (or an up-front prefetch of the recorded working
            // set) pull pages in. Zero pages stay demand-zero either way.
            let mode_span = kernel.span_begin("restore_lazy_register", pid);
            let mut backend = UffdBackend::new();
            for (page_index, source) in set.pages.iter_pages() {
                match source {
                    crate::image::PageSource::Bytes(bytes) => {
                        let page = Page::from_bytes(bytes.try_into().map_err(|_| Errno::Einval)?);
                        backend.insert_page(page_index, page);
                    }
                    crate::image::PageSource::Zero => {}
                    crate::image::PageSource::Parent => return Err(Errno::Einval),
                }
            }
            pages_lazy = backend.len();
            backend.set_fault_around(opts.fault_around);
            kernel.charge(opts.costs.lazy_register);
            kernel.uffd_register(pid, backend)?;
            match opts.mode {
                RestoreMode::Record => kernel.uffd_set_record(pid, true)?,
                RestoreMode::Prefetch => {
                    let ws = set.ws.as_ref().ok_or(Errno::Einval)?;
                    pages_prefetched = if opts.vectored {
                        // Push the working set run-at-a-time: one setup
                        // charge per coalesced extent.
                        kernel.uffd_prefetch_vectored(pid, &ws.pages)? as usize
                    } else {
                        let n = kernel.uffd_prefetch(pid, &ws.pages)? as usize;
                        kernel.charge(opts.costs.restore_page_op * n as u64);
                        n
                    };
                    pages_lazy -= pages_prefetched;
                }
                _ => {}
            }
            kernel.span_attr(mode_span, "pages_lazy", pages_lazy.to_string());
            kernel.span_attr(mode_span, "pages_prefetched", pages_prefetched.to_string());
            kernel.span_end(mode_span);
        }
        RestoreMode::Eager => {
            // Install payload pages; zero pages stay demand-zero.
            // Unresolved parent references mean the caller skipped
            // `read_images`'s parent resolution — refuse rather than
            // restore holes.
            let mode_span = kernel.span_begin("restore_eager_copy", pid);
            if opts.vectored {
                if set.pages.parent_pages() > 0 {
                    return Err(Errno::Einval);
                }
                // Walk the extent table, gathering each run's payload
                // pages (stored entries appear in pagemap order, so the
                // runs consume them sequentially) and installing the
                // run with one scatter-gather copy.
                let table = set.extent_view();
                let mut stored = set.pages.iter_pages().filter_map(|(i, s)| match s {
                    crate::image::PageSource::Bytes(bytes) => Some((i, bytes)),
                    _ => None,
                });
                for extent in &table.extents {
                    let mut buf = Vec::with_capacity(extent.pages as usize);
                    for _ in 0..extent.pages {
                        let (_, bytes) = stored.next().ok_or(Errno::Einval)?;
                        buf.push(Page::from_bytes(
                            bytes.try_into().map_err(|_| Errno::Einval)?,
                        ));
                    }
                    kernel.copy_extent(pid, extent.start_index, &buf)?;
                    installed += buf.len();
                    extents += 1;
                }
            } else {
                let proc = kernel.process_mut(pid)?;
                for (page_index, source) in set.pages.iter_pages() {
                    match source {
                        crate::image::PageSource::Bytes(bytes) => {
                            let page =
                                Page::from_bytes(bytes.try_into().map_err(|_| Errno::Einval)?);
                            proc.mem.install_page(page_index, page)?;
                            installed += 1;
                        }
                        crate::image::PageSource::Zero => {}
                        crate::image::PageSource::Parent => return Err(Errno::Einval),
                    }
                }
                // One page-granular dispatch per installed page — the
                // cost the vectored path amortises into one
                // `extent_setup` per run.
                kernel.charge(opts.costs.restore_page_op * installed as u64);
            }
            kernel.charge(opts.costs.restore_per_page * installed as u64);
            kernel.span_attr(mode_span, "pages", installed.to_string());
            kernel.span_attr(mode_span, "extents", extents.to_string());
            kernel.span_end(mode_span);
        }
    }

    // Descriptors.
    let fd_span = kernel.span_begin("restore_fds", pid);
    kernel.span_attr(fd_span, "fds", set.files.fds.len().to_string());
    kernel.charge(opts.costs.restore_per_fd * set.files.fds.len() as u64);
    {
        let proc = kernel.process_mut(pid)?;
        proc.fds = FdTable::new();
    }
    for (fd, entry) in &set.files.fds {
        match entry {
            FdEntry::Listener { port } => {
                kernel.sys_listen_at(pid, *fd, *port)?;
            }
            other => {
                kernel.process_mut(pid)?.fds.insert_at(*fd, other.clone())?;
            }
        }
    }
    kernel.span_end(fd_span);

    // Identity, threads, resume.
    {
        let proc = kernel.process_mut(pid)?;
        proc.comm = set.core.comm.clone();
        proc.cmdline = set.core.cmdline.clone();
        proc.threads = set
            .core
            .threads
            .iter()
            .map(|t| Thread {
                tid: t.tid,
                state: ThreadState::Running,
                regs: t.regs,
            })
            .collect();
        proc.state = ProcState::Running;
    }
    let resume = kernel.costs().sched_resume;
    kernel.charge(resume);
    kernel.span_end(span);

    Ok(RestoreStats {
        pid,
        vmas: set.mm.vmas.len(),
        pages_installed: installed,
        zero_pages: set.pages.zero_pages(),
        pages_lazy,
        pages_prefetched,
        pages_cow,
        extents,
        fds: set.files.fds.len(),
        elapsed: kernel.now() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{dump, DumpOptions};
    use prebake_sim::kernel::INIT_PID;
    use prebake_sim::mem::{Prot, VirtAddr, VmaKind, PAGE_SIZE};
    use prebake_sim::proc::CapSet;

    fn checkpointed_kernel() -> (Kernel, Pid, Vec<u8>) {
        let mut k = Kernel::free(5);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 4 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 250 + 1) as u8).collect();
        k.mem_write(target, addr, &payload).unwrap();
        k.sys_listen(target, 9090).unwrap();
        k.sys_open(target, "/data").ok(); // no file: ignore
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer, payload)
    }

    #[test]
    fn restore_reinstates_memory_and_fds() {
        let (mut k, tracer, payload) = checkpointed_kernel();
        let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        assert_eq!(stats.vmas, 1);
        assert_eq!(stats.pages_installed, 2, "5000 bytes = 2 pages");
        assert_eq!(stats.fds, 1);

        let pid = stats.pid;
        let proc = k.process(pid).unwrap();
        assert_eq!(proc.state, ProcState::Running);
        let vma = proc.mem.vmas().next().unwrap().clone();
        let bytes = k.mem_read(pid, vma.start, payload.len() as u64).unwrap();
        assert_eq!(bytes, payload);
        assert_eq!(k.port_owner(9090), Some(pid), "listener re-bound");
    }

    #[test]
    fn restore_same_pid_policy() {
        let (mut k, tracer, _) = checkpointed_kernel();
        let set = read_images(&mut k, "/img").unwrap();
        let dumped_pid = set.core.pid;
        let mut opts = RestoreOptions::new("/img");
        opts.pid = RestorePid::Same;
        let stats = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(stats.pid, dumped_pid);

        // Doing it again: pid now taken.
        k.process_mut(stats.pid).unwrap().fds = FdTable::new(); // free port
        let mut k2 = k;
        k2.sys_close(stats.pid, 3).ok();
        assert!(matches!(
            restore(&mut k2, tracer, &opts).unwrap_err(),
            Errno::Eexist | Errno::Eaddrinuse
        ));
    }

    #[test]
    fn restore_requires_capability() {
        let (mut k, tracer, _) = checkpointed_kernel();
        k.process_mut(tracer).unwrap().caps = CapSet::empty();
        assert_eq!(
            restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap_err(),
            Errno::Eperm
        );
    }

    #[test]
    fn restore_fails_if_port_taken() {
        let (mut k, tracer, _) = checkpointed_kernel();
        let squatter = k.sys_clone(INIT_PID).unwrap();
        k.sys_listen(squatter, 9090).unwrap();
        assert_eq!(
            restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap_err(),
            Errno::Eaddrinuse
        );
    }

    #[test]
    fn restored_memory_is_observably_equal() {
        // Dump with leave_running, restore fresh, compare spaces.
        let mut k = Kernel::free(6);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(target, 16 * PAGE_SIZE as u64, Prot::RW, VmaKind::Metaspace)
            .unwrap();
        for i in 0..10u64 {
            let data = vec![(i as u8) + 1; 300];
            k.mem_write(target, a.add(i * PAGE_SIZE as u64), &data)
                .unwrap();
        }
        let mut dopts = DumpOptions::new(target, "/img");
        dopts.leave_running = true;
        dump(&mut k, tracer, &dopts).unwrap();
        let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        let original = k.process(target).unwrap().mem.clone();
        let restored = &k.process(stats.pid).unwrap().mem;
        assert!(original.observably_equal(restored));
    }

    #[test]
    fn zero_pages_restore_as_demand_zero() {
        let mut k = Kernel::free(7);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let a = k
            .sys_mmap(target, 2 * PAGE_SIZE as u64, Prot::RW, VmaKind::Anon)
            .unwrap();
        k.mem_write(target, a, &[0u8; PAGE_SIZE]).unwrap(); // zero page, materialised
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        assert_eq!(stats.pages_installed, 0);
        assert_eq!(stats.zero_pages, 1);
        // Still reads as zeros without being materialised.
        let proc = k.process(stats.pid).unwrap();
        assert_eq!(proc.mem.resident_pages(), 0);
        let bytes = k.mem_read(stats.pid, VirtAddr(a.0), 64).unwrap();
        assert!(bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn lazy_restore_defers_pages_and_faults_on_touch() {
        let (mut k, tracer, payload) = checkpointed_kernel();
        let stats = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Lazy),
        )
        .unwrap();
        assert_eq!(stats.pages_installed, 0, "nothing installed eagerly");
        assert_eq!(stats.pages_lazy, 2, "5000 bytes = 2 withheld pages");
        assert_eq!(stats.pages_prefetched, 0);

        let pid = stats.pid;
        assert!(k.uffd_registered(pid));
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 2);

        // First touch resolves through the fault handler and the content
        // matches the checkpoint byte-for-byte.
        let vma = k.process(pid).unwrap().mem.vmas().next().unwrap().clone();
        let bytes = k.mem_read(pid, vma.start, payload.len() as u64).unwrap();
        assert_eq!(bytes, payload);
        let (major, _) = k.uffd_fault_counts(pid);
        assert_eq!(major, 2);
        assert_eq!(k.process(pid).unwrap().mem.missing_pages(), 0);
    }

    #[test]
    fn record_then_prefetch_round_trip() {
        use crate::image::WsImage;

        let (mut k, tracer, payload) = checkpointed_kernel();

        // Record pass: restore lazily, drive one "invocation" (read the
        // payload), harvest the ordered working set.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        let vma = k
            .process(rec.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        k.mem_read(rec.pid, vma.start, payload.len() as u64)
            .unwrap();
        let log = k.uffd_take_log(rec.pid).unwrap();
        assert_eq!(log.len(), 2);
        let ws = WsImage::from_fault_log(log);
        k.fs_write_file("/img/ws.img", ws.encode()).unwrap();
        k.sys_exit(rec.pid, 0).unwrap(); // retire the record replica, freeing the port

        // Prefetch pass: the whole working set arrives before resume, so
        // touching it again faults zero times.
        let pre = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Prefetch),
        )
        .unwrap();
        assert_eq!(pre.pages_prefetched, 2);
        assert_eq!(pre.pages_lazy, 0);
        let bytes = k
            .mem_read(pre.pid, vma.start, payload.len() as u64)
            .unwrap();
        assert_eq!(bytes, payload);
        assert_eq!(k.uffd_fault_counts(pre.pid), (0, 0));
    }

    #[test]
    fn prefetch_without_recorded_working_set_is_einval() {
        let (mut k, tracer, _) = checkpointed_kernel();
        assert_eq!(
            restore(
                &mut k,
                tracer,
                &RestoreOptions::with_mode("/img", RestoreMode::Prefetch),
            )
            .unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn lazy_restore_resumes_faster_than_eager() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for mode in [RestoreMode::Eager, RestoreMode::Lazy] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let pages = 512u64;
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![3u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let stats = restore(&mut k, tracer, &RestoreOptions::with_mode("/img", mode)).unwrap();
            elapsed.push(stats.elapsed);
        }
        assert!(
            elapsed[1] < elapsed[0],
            "lazy resume beats eager: {elapsed:?}"
        );
    }

    /// Dump a listener-free target (so many replicas can restore from
    /// one snapshot without port clashes).
    fn checkpointed_portless(seed: u64) -> (Kernel, Pid, Vec<u8>) {
        let mut k = Kernel::free(seed);
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let addr = k
            .sys_mmap(target, 4 * PAGE_SIZE as u64, Prot::RW, VmaKind::RuntimeHeap)
            .unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 250 + 1) as u8).collect();
        k.mem_write(target, addr, &payload).unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
        (k, tracer, payload)
    }

    #[test]
    fn cow_restore_shares_frames_and_isolates_writes() {
        let (mut k, tracer, payload) = checkpointed_portless(11);
        let opts = RestoreOptions::with_mode("/img", RestoreMode::Cow);
        let a = restore(&mut k, tracer, &opts).unwrap();
        let b = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(a.pages_cow, 2, "5000 bytes = 2 shared pages");
        assert_eq!(a.pages_installed, 0);
        assert_eq!(a.pages_lazy, 0);
        assert!(!k.uffd_registered(a.pid), "pure CoW needs no fault handler");

        // One physical frame per distinct page, two mappings each.
        assert_eq!(k.page_store().frame_count(), 2);
        assert_eq!(k.page_store().external_refs(), 4);

        // Both replicas read the checkpointed bytes.
        let vma = k.process(a.pid).unwrap().mem.vmas().next().unwrap().clone();
        for pid in [a.pid, b.pid] {
            assert_eq!(
                k.mem_read(pid, vma.start, payload.len() as u64).unwrap(),
                payload
            );
        }

        // A write in one replica breaks only its own mapping.
        k.mem_write(a.pid, vma.start, &[0xEE; 8]).unwrap();
        assert_eq!(
            k.mem_read(b.pid, vma.start, payload.len() as u64).unwrap(),
            payload,
            "replica b unaffected by a's write"
        );
        assert_eq!(k.page_store().external_refs(), 3, "a dropped one frame ref");
        let broken = k.mem_read(a.pid, vma.start, 8).unwrap();
        assert_eq!(broken, [0xEE; 8]);
    }

    #[test]
    fn cow_restore_without_pagestore_is_einval() {
        let (mut k, tracer, _) = checkpointed_portless(12);
        k.fs_remove_file(&format!("/img/{}", ImageSet::PAGESTORE_NAME))
            .unwrap();
        assert_eq!(
            restore(
                &mut k,
                tracer,
                &RestoreOptions::with_mode("/img", RestoreMode::Cow),
            )
            .unwrap_err(),
            Errno::Einval
        );
    }

    #[test]
    fn cow_prefetch_maps_ws_and_defers_residue() {
        use crate::image::WsImage;
        let (mut k, tracer, payload) = checkpointed_portless(13);

        // Record a working set covering only the first page.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        let vma = k
            .process(rec.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        k.mem_read(rec.pid, vma.start, 64).unwrap();
        let log = k.uffd_take_log(rec.pid).unwrap();
        assert_eq!(log.len(), 1);
        k.fs_write_file("/img/ws.img", WsImage::from_fault_log(log).encode())
            .unwrap();
        k.sys_exit(rec.pid, 0).unwrap();

        let stats = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::CowPrefetch),
        )
        .unwrap();
        assert_eq!(stats.pages_cow, 1, "ws page mapped CoW");
        assert_eq!(stats.pages_lazy, 1, "residual page behind the handler");
        assert!(k.uffd_registered(stats.pid));

        // The whole payload still reads back; the residue major-faults.
        let bytes = k
            .mem_read(stats.pid, vma.start, payload.len() as u64)
            .unwrap();
        assert_eq!(bytes, payload);
        let (major, _) = k.uffd_fault_counts(stats.pid);
        assert_eq!(major, 1);
    }

    #[test]
    fn cow_restore_resumes_no_slower_than_eager() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for mode in [RestoreMode::Eager, RestoreMode::Cow] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let pages = 512u64;
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![3u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let stats = restore(&mut k, tracer, &RestoreOptions::with_mode("/img", mode)).unwrap();
            elapsed.push(stats.elapsed);
        }
        assert!(
            elapsed[1] < elapsed[0],
            "CoW resume beats eager: {elapsed:?}"
        );
    }

    #[test]
    fn vectored_eager_restore_matches_per_page_state() {
        let (mut k, tracer, payload) = checkpointed_portless(21);
        let mut per_page = RestoreOptions::new("/img");
        per_page.vectored = false;
        let a = restore(&mut k, tracer, &per_page).unwrap();
        let b = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
        assert_eq!(a.pages_installed, b.pages_installed);
        assert_eq!(a.extents, 0, "page-granular path issues no extents");
        assert_eq!(b.extents, 1, "two contiguous stored pages = one run");
        let mem_a = k.process(a.pid).unwrap().mem.clone();
        let mem_b = &k.process(b.pid).unwrap().mem;
        assert!(mem_a.observably_equal(mem_b));
        let vma = k.process(a.pid).unwrap().mem.vmas().next().unwrap().clone();
        for pid in [a.pid, b.pid] {
            assert_eq!(
                k.mem_read(pid, vma.start, payload.len() as u64).unwrap(),
                payload
            );
        }
    }

    #[test]
    fn vectored_eager_restore_is_cheaper_than_per_page() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for vectored in [false, true] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let pages = 512u64;
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![3u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let mut opts = RestoreOptions::new("/img");
            opts.vectored = vectored;
            elapsed.push(restore(&mut k, tracer, &opts).unwrap().elapsed);
        }
        assert!(
            elapsed[1] < elapsed[0],
            "one extent copy beats 512 page dispatches: {elapsed:?}"
        );
    }

    #[test]
    fn fault_around_batches_lazy_fault_servicing() {
        let (mut k, tracer, payload) = checkpointed_portless(22);
        let mut opts = RestoreOptions::with_mode("/img", RestoreMode::Lazy);
        opts.fault_around = 4;
        let stats = restore(&mut k, tracer, &opts).unwrap();
        assert_eq!(stats.pages_lazy, 2);
        let vma = k
            .process(stats.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        let bytes = k
            .mem_read(stats.pid, vma.start, payload.len() as u64)
            .unwrap();
        assert_eq!(bytes, payload);
        let (major, minor) = k.uffd_fault_counts(stats.pid);
        assert_eq!(
            (major, minor),
            (1, 0),
            "one trap pulls both withheld pages in"
        );
        assert_eq!(k.process(stats.pid).unwrap().mem.missing_pages(), 0);
    }

    #[test]
    fn vectored_cow_restore_shares_frames_like_per_page() {
        let (mut k, tracer, payload) = checkpointed_portless(23);
        let mut per_page = RestoreOptions::with_mode("/img", RestoreMode::Cow);
        per_page.vectored = false;
        let a = restore(&mut k, tracer, &per_page).unwrap();
        let b = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Cow),
        )
        .unwrap();
        assert_eq!(a.pages_cow, 2);
        assert_eq!(b.pages_cow, 2);
        assert_eq!(a.extents, 0);
        assert_eq!(b.extents, 1, "two consecutive shared frames = one run");
        assert_eq!(
            k.page_store().frame_count(),
            2,
            "both paths intern the same frames"
        );
        assert_eq!(k.page_store().external_refs(), 4);
        let vma = k.process(a.pid).unwrap().mem.vmas().next().unwrap().clone();
        for pid in [a.pid, b.pid] {
            assert_eq!(
                k.mem_read(pid, vma.start, payload.len() as u64).unwrap(),
                payload
            );
        }
    }

    #[test]
    fn prefetch_paths_agree_and_vectored_is_cheaper() {
        use crate::image::WsImage;
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
        let tracer = k.sys_clone(INIT_PID).unwrap();
        let target = k.sys_clone(INIT_PID).unwrap();
        let pages = 64u64;
        let a = k
            .sys_mmap(
                target,
                pages * PAGE_SIZE as u64,
                Prot::RW,
                VmaKind::RuntimeHeap,
            )
            .unwrap();
        k.mem_write(target, a, &vec![9u8; (pages * PAGE_SIZE as u64) as usize])
            .unwrap();
        dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();

        // Record the full working set.
        let rec = restore(
            &mut k,
            tracer,
            &RestoreOptions::with_mode("/img", RestoreMode::Record),
        )
        .unwrap();
        let vma = k
            .process(rec.pid)
            .unwrap()
            .mem
            .vmas()
            .next()
            .unwrap()
            .clone();
        k.mem_read(rec.pid, vma.start, pages * PAGE_SIZE as u64)
            .unwrap();
        let log = k.uffd_take_log(rec.pid).unwrap();
        k.fs_write_file("/img/ws.img", WsImage::from_fault_log(log).encode())
            .unwrap();
        k.sys_exit(rec.pid, 0).unwrap();

        let mut elapsed = Vec::new();
        for vectored in [false, true] {
            let mut opts = RestoreOptions::with_mode("/img", RestoreMode::Prefetch);
            opts.vectored = vectored;
            let stats = restore(&mut k, tracer, &opts).unwrap();
            assert_eq!(stats.pages_prefetched, pages as usize);
            assert_eq!(stats.pages_lazy, 0);
            assert_eq!(k.uffd_fault_counts(stats.pid), (0, 0));
            assert_eq!(k.mem_read(stats.pid, vma.start, 64).unwrap(), vec![9u8; 64]);
            elapsed.push(stats.elapsed);
            k.sys_exit(stats.pid, 0).unwrap();
        }
        assert!(
            elapsed[1] < elapsed[0],
            "vectored prefetch beats per-page: {elapsed:?}"
        );
    }

    #[test]
    fn restore_charges_scale_with_snapshot_size() {
        use prebake_sim::cost::CostModel;
        use prebake_sim::noise::Noise;

        let mut elapsed = Vec::new();
        for pages in [8u64, 64] {
            let mut k = Kernel::with_config(CostModel::paper_calibrated(), Noise::disabled());
            let tracer = k.sys_clone(INIT_PID).unwrap();
            let target = k.sys_clone(INIT_PID).unwrap();
            let a = k
                .sys_mmap(
                    target,
                    pages * PAGE_SIZE as u64,
                    Prot::RW,
                    VmaKind::RuntimeHeap,
                )
                .unwrap();
            k.mem_write(target, a, &vec![7u8; (pages * PAGE_SIZE as u64) as usize])
                .unwrap();
            dump(&mut k, tracer, &DumpOptions::new(target, "/img")).unwrap();
            let stats = restore(&mut k, tracer, &RestoreOptions::new("/img")).unwrap();
            elapsed.push(stats.elapsed);
        }
        assert!(
            elapsed[1] > elapsed[0],
            "bigger snapshot restores slower: {elapsed:?}"
        );
    }
}
